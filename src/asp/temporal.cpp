#include "asp/temporal.hpp"

#include <set>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace cprisk::asp {

namespace {

constexpr std::string_view kPrevPrefix = "prev_";

class UnrollError : public Error {
public:
    using Error::Error;
};

class Unroller {
public:
    Unroller(const ProgramParts& parts, const UnrollOptions& options)
        : parts_(parts), options_(options) {
        require(options.horizon >= 0, "unroll: horizon must be non-negative");
        classify_predicates();
    }

    Program run() {
        Program out;
        for (const Program* part : parts_) {
            for (const auto& [name, value] : part->consts()) out.set_const(name, value);
        }

        // Time domain facts: __t(0..horizon).
        Rule time_fact;
        time_fact.head = Head::make_atom(Atom{
            options_.time_predicate,
            {Term::compound("..", {Term::integer(0), Term::integer(options_.horizon)})}});
        out.add_rule(std::move(time_fact));

        for (const Program* part : parts_) {
            for (const auto& sectioned : part->rules()) {
                switch (sectioned.section) {
                    case SectionKind::Base: out.add_rule(sectioned.rule); break;
                    case SectionKind::Initial:
                        out.add_rule(instantiate(sectioned.rule, 0, SectionKind::Initial));
                        break;
                    case SectionKind::Final:
                        out.add_rule(
                            instantiate(sectioned.rule, options_.horizon, SectionKind::Final));
                        break;
                    case SectionKind::Always:
                        for (int t = 0; t <= options_.horizon; ++t) {
                            out.add_rule(instantiate(sectioned.rule, t, SectionKind::Always));
                        }
                        break;
                    case SectionKind::Dynamic:
                        for (int t = 1; t <= options_.horizon; ++t) {
                            out.add_rule(instantiate(sectioned.rule, t, SectionKind::Dynamic));
                        }
                        break;
                }
            }
            for (const auto& sectioned : part->weaks()) {
                switch (sectioned.section) {
                    case SectionKind::Base: out.add_weak(sectioned.weak); break;
                    case SectionKind::Initial:
                        out.add_weak(instantiate(sectioned.weak, 0));
                        break;
                    case SectionKind::Final:
                        out.add_weak(instantiate(sectioned.weak, options_.horizon));
                        break;
                    case SectionKind::Always:
                        for (int t = 0; t <= options_.horizon; ++t) {
                            out.add_weak(instantiate(sectioned.weak, t));
                        }
                        break;
                    case SectionKind::Dynamic:
                        for (int t = 1; t <= options_.horizon; ++t) {
                            out.add_weak(instantiate(sectioned.weak, t));
                        }
                        break;
                }
            }
            for (const Signature& show : part->shows()) {
                if (temporal_.count(show.predicate) > 0) {
                    out.add_show(Signature{show.predicate, show.arity + 1});
                } else {
                    out.add_show(show);
                }
            }
        }
        return out;
    }

private:
    static std::string strip_prev(const std::string& predicate) {
        return predicate.substr(kPrevPrefix.size());
    }
    static bool has_prev(const std::string& predicate) {
        return starts_with(predicate, kPrevPrefix);
    }

    void note_head_atom(const Atom& atom, SectionKind section) {
        if (section == SectionKind::Base) {
            static_defined_.insert(atom.predicate);
        } else {
            if (has_prev(atom.predicate)) {
                throw UnrollError("unroll: '" + atom.predicate +
                                  "' — prev_ atoms cannot appear in rule heads");
            }
            temporal_.insert(atom.predicate);
        }
    }

    void note_body_literal(const Literal& lit) {
        if (lit.kind == Literal::Kind::Aggregate) {
            for (const auto& element : lit.elements) {
                for (const auto& condition : element.condition) note_body_literal(condition);
            }
            return;
        }
        if (lit.kind != Literal::Kind::Atom) return;
        if (has_prev(lit.atom.predicate)) temporal_.insert(strip_prev(lit.atom.predicate));
    }

    void classify_predicates() {
        for (const Program* part : parts_) {
            for (const auto& sectioned : part->rules()) {
                const Rule& rule = sectioned.rule;
                switch (rule.head.kind) {
                    case Head::Kind::Atom:
                        note_head_atom(rule.head.atom, sectioned.section);
                        break;
                    case Head::Kind::Constraint: break;
                    case Head::Kind::Choice:
                        for (const auto& element : rule.head.elements) {
                            note_head_atom(element.atom, sectioned.section);
                            for (const auto& lit : element.condition) note_body_literal(lit);
                        }
                        break;
                }
                for (const auto& lit : rule.body) note_body_literal(lit);
            }
            for (const auto& sectioned : part->weaks()) {
                for (const auto& lit : sectioned.weak.body) note_body_literal(lit);
            }
        }
        for (const std::string& predicate : temporal_) {
            if (static_defined_.count(predicate) > 0) {
                throw UnrollError("unroll: predicate '" + predicate +
                                  "' is defined in both base and temporal sections");
            }
        }
    }

    Atom stamp(const Atom& atom, int t, SectionKind section) const {
        Atom out = atom;
        if (has_prev(atom.predicate)) {
            if (section == SectionKind::Initial) {
                throw UnrollError("unroll: '" + atom.predicate +
                                  "' referenced in the initial section (no previous state)");
            }
            if (t == 0) {
                throw UnrollError("unroll: '" + atom.predicate + "' referenced at t = 0");
            }
            out.predicate = strip_prev(atom.predicate);
            out.args.push_back(Term::integer(t - 1));
            return out;
        }
        if (temporal_.count(atom.predicate) > 0) {
            out.args.push_back(Term::integer(t));
        }
        return out;
    }

    Literal stamp(const Literal& lit, int t, SectionKind section) const {
        if (lit.kind == Literal::Kind::Comparison) return lit;
        Literal out = lit;
        if (lit.kind == Literal::Kind::Atom) {
            out.atom = stamp(lit.atom, t, section);
            return out;
        }
        // Aggregate: stamp every condition literal (tuple terms carry no
        // predicates).
        for (auto& element : out.elements) {
            for (auto& condition : element.condition) {
                condition = stamp(condition, t, section);
            }
        }
        return out;
    }

    Rule instantiate(const Rule& rule, int t, SectionKind section) const {
        Rule out;
        switch (rule.head.kind) {
            case Head::Kind::Atom:
                out.head = Head::make_atom(stamp(rule.head.atom, t, section));
                break;
            case Head::Kind::Constraint: out.head = Head::make_constraint(); break;
            case Head::Kind::Choice: {
                std::vector<ChoiceElement> elements;
                elements.reserve(rule.head.elements.size());
                for (const auto& element : rule.head.elements) {
                    ChoiceElement stamped;
                    stamped.atom = stamp(element.atom, t, section);
                    for (const auto& lit : element.condition) {
                        stamped.condition.push_back(stamp(lit, t, section));
                    }
                    elements.push_back(std::move(stamped));
                }
                out.head = Head::make_choice(std::move(elements), rule.head.lower_bound,
                                             rule.head.upper_bound);
                break;
            }
        }
        for (const auto& lit : rule.body) out.body.push_back(stamp(lit, t, section));
        return out;
    }

    WeakConstraint instantiate(const WeakConstraint& weak, int t) const {
        WeakConstraint out = weak;
        out.body.clear();
        for (const auto& lit : weak.body) {
            // Weak constraints in always/dynamic may read prev_ state too.
            out.body.push_back(stamp(lit, t, SectionKind::Always));
        }
        // Distinguish tuples per time step so each step contributes cost.
        out.tuple.push_back(Term::integer(t));
        return out;
    }

    const ProgramParts& parts_;
    const UnrollOptions& options_;
    std::set<std::string> temporal_;
    std::set<std::string> static_defined_;
};

}  // namespace

Result<Program> unroll(const ProgramParts& parts, const UnrollOptions& options) {
    try {
        Unroller unroller(parts, options);
        return unroller.run();
    } catch (const UnrollError& e) {
        return Result<Program>::failure(e.what());
    } catch (const Error& e) {
        return Result<Program>::failure(e.what());
    }
}

Result<Program> unroll(const Program& program, const UnrollOptions& options) {
    return unroll(ProgramParts{&program}, options);
}

}  // namespace cprisk::asp
