// cprisk/asp/term.hpp
//
// Term and atom model for the embedded Answer Set Programming engine (the
// paper's reasoning substrate, §II-C). Terms follow the usual ASP value
// universe: integers, symbolic constants (lowercase), variables (uppercase),
// and compound terms f(t1,...,tn). Arithmetic (`+`, `-`, `*`, `/`, `mod`,
// `abs`) and intervals (`..`) are represented as compound terms and reduced
// during grounding (see eval.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cprisk::asp {

/// A first-order term with value semantics and a total order (usable as a
/// map/set key). The order is: integers < symbols < variables < compounds,
/// then by value.
class Term {
public:
    enum class Kind : std::uint8_t { Integer, Symbol, Variable, Compound };

    /// Integer constant.
    static Term integer(long long value);
    /// Symbolic constant; `name` should start with a lowercase letter.
    static Term symbol(std::string name);
    /// Variable; `name` should start with an uppercase letter or '_'.
    static Term variable(std::string name);
    /// Compound term functor(args...). Also used for arithmetic operators.
    static Term compound(std::string functor, std::vector<Term> args);

    Kind kind() const { return kind_; }
    bool is_integer() const { return kind_ == Kind::Integer; }
    bool is_symbol() const { return kind_ == Kind::Symbol; }
    bool is_variable() const { return kind_ == Kind::Variable; }
    bool is_compound() const { return kind_ == Kind::Compound; }

    /// Integer value; requires `is_integer()`.
    long long as_int() const;
    /// Symbol name, variable name, or compound functor.
    const std::string& name() const;
    /// Compound arguments; requires `is_compound()`.
    const std::vector<Term>& args() const;

    /// True if the term contains no variables.
    bool is_ground() const;

    /// Collects variable names (depth-first, with duplicates) into `out`.
    void collect_variables(std::vector<std::string>& out) const;

    bool operator==(const Term& other) const;
    bool operator!=(const Term& other) const { return !(*this == other); }
    bool operator<(const Term& other) const;

    std::string to_string() const;

private:
    Term() = default;
    Kind kind_ = Kind::Symbol;
    long long int_ = 0;
    std::string name_;
    std::vector<Term> args_;
};

std::ostream& operator<<(std::ostream& os, const Term& t);

/// A predicate applied to terms: p(t1,...,tn). Arity-0 atoms print without
/// parentheses.
struct Atom {
    std::string predicate;
    std::vector<Term> args;

    bool is_ground() const;
    std::size_t arity() const { return args.size(); }

    bool operator==(const Atom& other) const;
    bool operator!=(const Atom& other) const { return !(*this == other); }
    bool operator<(const Atom& other) const;

    std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Atom& a);

/// Predicate name/arity pair ("signature"), used by #show and dependency
/// analysis.
struct Signature {
    std::string predicate;
    std::size_t arity = 0;

    bool operator==(const Signature&) const = default;
    bool operator<(const Signature& other) const {
        if (predicate != other.predicate) return predicate < other.predicate;
        return arity < other.arity;
    }
    std::string to_string() const { return predicate + "/" + std::to_string(arity); }
};

}  // namespace cprisk::asp
