// cprisk/lint/model_lint.hpp
//
// Static-analysis rule pack for .cpm model bundles. Layered on top of the
// lenient loader (core/loader.hpp reports structural problems: dangling
// relations, faults on unknown components, behaviour blocks for unknown
// components) and the ASP rule pack (asp_lint.hpp runs over every behaviour
// fragment with file-absolute locations). This pack adds the bundle-level
// semantic checks:
//
//   model-unknown-component-ref   error    ground component argument of a
//                                          model-vocabulary predicate
//                                          (eff_fault, active_fault, error,
//                                          connected, ...) names no component
//   model-uncovered-exposure      warning  exposure=public component that no
//                                          attack-matrix technique applies
//                                          to, so the security assessment
//                                          cannot exercise it
//   model-underivable-requirement warning  never/responds requirement whose
//                                          atom no behaviour fragment (nor
//                                          the assessment driver) derives
//   model-trivially-compromised   warning  public entry point where an
//                                          applicable technique directly
//                                          activates a declared fault mode:
//                                          the compromise needs no lateral
//                                          movement at all
//   model-unreachable-asset       warning  component no attack entry point
//                                          can reach along propagation
//                                          relations (only checked when the
//                                          model has at least one entry
//                                          point); see analysis/taint.hpp
//   model-hazard-unreachable      warning  requirement whose violation the
//                                          open ternary analysis (asp/absint)
//                                          proves unreachable under every
//                                          fault combination at a horizon
//                                          covering the model diameter
//   model-nonmonotone-fault       note     the polarity certifier
//                                          (asp/polarity.hpp) could not prove
//                                          hazard verdicts monotone in the
//                                          fault set — a fault atom reaches a
//                                          hazard through an odd number of
//                                          negations (or a negative cycle /
//                                          sensitive site depends on it), so
//                                          `assess --exhaustive` enumerates
//                                          without superset pruning
#pragma once

#include "common/diagnostics.hpp"
#include "core/loader.hpp"
#include "security/attack_matrix.hpp"

namespace cprisk::lint {

/// Runs fragment ASP lint plus the bundle-level checks over a bundle loaded
/// with core::load_bundle_lenient. `source_map` must come from the same
/// load. Diagnostics inherit the sink's default file label.
void lint_bundle(const core::Bundle& bundle, const core::BundleSourceMap& source_map,
                 const security::AttackMatrix& matrix, DiagnosticSink& sink);

}  // namespace cprisk::lint
