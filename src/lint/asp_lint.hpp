// cprisk/lint/asp_lint.hpp
//
// Static-analysis rule pack for ASP programs. Runs over one or more parsed
// programs (a standalone .lp file, or every behaviour fragment of a .cpm
// bundle) and reports findings to a DiagnosticSink:
//
//   asp-unsafe-var       error    unsafe variable (shared with the grounder
//                                 via asp/safety.hpp — one implementation)
//   asp-constraint-unsat error    constraint whose body trivially holds, so
//                                 the program can never have a stable model
//   asp-singleton-var    warning  variable occurring exactly once in a rule
//   asp-undefined-pred   warning  predicate used in a body but never
//                                 derivable by any rule or fact
//   asp-arity-mismatch   warning  same predicate name at different arities
//   asp-unstratified-negation
//                        warning  recursion through negation (a dependency
//                                 SCC with an internal negative edge)
//   asp-unused-pred      note     predicate derived but never used / shown
//   asp-constraint-dead  note     constraint guarded by an always-false
//                                 ground comparison; it can never fire
//   asp-positive-loop    note     positive recursion (a dependency cycle
//                                 without negation)
//   asp-unreachable-from-show
//                        note     predicate derived and used, but with no
//                                 rule chain to any #show output or
//                                 constraint (predicate-level dead code)
//   asp-constant-atom    note     ground body literal over a rule-derived
//                                 atom the ternary analysis (asp/absint)
//                                 proves true in every answer set
//   asp-redundant-rule   note     exact duplicate of an earlier rule, or a
//                                 rule with a statically false body literal
//                                 (it can never fire)
//
// The last two are whole-program rules: they ground the union of the
// sources and run the pin-free ternary fixpoint (docs/static-analysis.md),
// so they only fire for closed, non-temporal programs (no external
// vocabulary). The duplicate-rule check is purely syntactic and always on.
//
// Cross-program checks (undefined/unused/arity and the dependency-graph
// rules) see the union of all the sources passed in, so a predicate derived
// in one behaviour fragment and used in another is resolved correctly. The
// graph rules are built on analysis/dependency_graph.hpp; see
// docs/dependency-analysis.md for the exact semantics.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "asp/syntax.hpp"
#include "asp/term.hpp"
#include "common/diagnostics.hpp"

namespace cprisk::lint {

/// One parsed program plus where its text came from. `line_offset` is added
/// to every fragment-relative source line (0 for standalone files); `file`
/// labels the diagnostics.
struct ProgramSource {
    const asp::Program* program = nullptr;
    std::string file;
    int line_offset = 0;
};

struct AspLintOptions {
    /// Predicate names supplied from outside the analysed programs (e.g. the
    /// model-to-ASP translation vocabulary for bundle fragments). They are
    /// never reported undefined or unused, at any arity.
    std::set<std::string> external_predicates;
    /// Signatures consumed from outside (e.g. requirement atoms); suppresses
    /// asp-unused-pred for them.
    std::set<asp::Signature> assume_used;
};

/// Runs every ASP lint rule over the union of `sources`.
void lint_programs(const std::vector<ProgramSource>& sources, const AspLintOptions& options,
                   DiagnosticSink& sink);

/// Convenience wrapper for a single standalone program.
void lint_program(const asp::Program& program, const AspLintOptions& options,
                  DiagnosticSink& sink, const std::string& file = "");

}  // namespace cprisk::lint
