#include "lint/model_lint.hpp"

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "analysis/taint.hpp"
#include "asp/parser.hpp"
#include "epa/epa.hpp"
#include "lint/asp_lint.hpp"

namespace cprisk::lint {

namespace {

using asp::Atom;
using asp::Head;
using asp::Literal;
using asp::Program;
using asp::Rule;
using asp::Signature;
using asp::Term;

/// Predicates of the model-to-ASP vocabulary (model/to_asp.cpp) plus the
/// assessment-driver predicates injected by the EPA (epa/epa.cpp). Behaviour
/// fragments may freely reference them; they are derived outside the bundle.
const std::set<std::string>& driver_vocabulary() {
    static const std::set<std::string> vocabulary = {
        "component", "component_type", "component_layer", "ot_component", "it_component",
        "exposure", "asset_value", "fault", "fault_effect", "fault_severity",
        "fault_likelihood", "connected", "relation", "refined", "part_of", "active_fault",
        "injected_fault", "injected_any", "error", "scenario_fault", "suppressed"};
    return vocabulary;
}

/// Argument positions that must name a declared component, per vocabulary
/// signature.
const std::map<Signature, std::vector<std::size_t>>& component_positions() {
    static const std::map<Signature, std::vector<std::size_t>> positions = {
        {{"component", 1}, {0}},      {{"error", 1}, {0}},
        {{"ot_component", 1}, {0}},   {{"it_component", 1}, {0}},
        {{"fault", 2}, {0}},          {{"active_fault", 2}, {0}},
        {{"injected_fault", 2}, {0}}, {{"eff_fault", 2}, {0}},
        {{"connected", 2}, {0, 1}},   {{"exposure", 2}, {0}},
        {{"asset_value", 2}, {0}},    {{"component_type", 2}, {0}},
        {{"component_layer", 2}, {0}}, {{"part_of", 2}, {0, 1}}};
    return positions;
}

void collect_formula_atoms(const asp::ltl::Formula& formula, std::vector<Atom>& out) {
    using Op = asp::ltl::Formula::Op;
    switch (formula.op()) {
        case Op::Atom: out.push_back(formula.atom_value()); return;
        case Op::True:
        case Op::False: return;
        case Op::Not:
        case Op::Next:
        case Op::WeakNext:
        case Op::Always:
        case Op::Eventually: collect_formula_atoms(formula.left(), out); return;
        case Op::And:
        case Op::Or:
        case Op::Implies:
        case Op::Until:
        case Op::Release:
            collect_formula_atoms(formula.left(), out);
            collect_formula_atoms(formula.right(), out);
            return;
    }
}

/// Checks ground component-position arguments of one atom.
void check_component_refs(const Atom& atom, const model::SystemModel& model, int line_offset,
                          SourceLoc loc, DiagnosticSink& sink) {
    auto it = component_positions().find(Signature{atom.predicate, atom.arity()});
    if (it == component_positions().end()) return;
    for (std::size_t pos : it->second) {
        const Term& arg = atom.args[pos];
        if (!arg.is_symbol() || model.has_component(arg.name())) continue;
        SourceLoc shifted;
        if (loc.valid()) shifted = SourceLoc{loc.line + line_offset, loc.column};
        sink.error("model-unknown-component-ref",
                   "'" + atom.to_string() + "' references unknown component '" + arg.name() + "'",
                   shifted, "declare 'component " + arg.name() + " ...' or fix the identifier");
    }
}

void check_literal_refs(const Literal& lit, const model::SystemModel& model, int line_offset,
                        SourceLoc fallback, DiagnosticSink& sink) {
    const SourceLoc loc = lit.loc.valid() ? lit.loc : fallback;
    switch (lit.kind) {
        case Literal::Kind::Atom:
            check_component_refs(lit.atom, model, line_offset, loc, sink);
            break;
        case Literal::Kind::Comparison: break;
        case Literal::Kind::Aggregate:
            for (const auto& element : lit.elements) {
                for (const Literal& cond : element.condition) {
                    check_literal_refs(cond, model, line_offset, loc, sink);
                }
            }
            break;
    }
}

void check_program_refs(const Program& program, const model::SystemModel& model, int line_offset,
                        DiagnosticSink& sink) {
    for (const auto& sectioned : program.rules()) {
        const Rule& rule = sectioned.rule;
        switch (rule.head.kind) {
            case Head::Kind::Atom:
                check_component_refs(rule.head.atom, model, line_offset, rule.loc, sink);
                break;
            case Head::Kind::Constraint: break;
            case Head::Kind::Choice:
                for (const auto& element : rule.head.elements) {
                    check_component_refs(element.atom, model, line_offset, rule.loc, sink);
                    for (const Literal& cond : element.condition) {
                        check_literal_refs(cond, model, line_offset, rule.loc, sink);
                    }
                }
                break;
        }
        for (const Literal& lit : rule.body) {
            check_literal_refs(lit, model, line_offset, rule.loc, sink);
        }
    }
    for (const auto& sectioned : program.weaks()) {
        for (const Literal& lit : sectioned.weak.body) {
            check_literal_refs(lit, model, line_offset, sectioned.weak.loc, sink);
        }
    }
}

/// Signatures derivable by the fragment programs (rule heads and choice
/// elements).
std::set<Signature> derivable_signatures(const std::vector<const Program*>& programs) {
    std::set<Signature> derivable;
    for (const Program* program : programs) {
        for (const auto& sectioned : program->rules()) {
            const Rule& rule = sectioned.rule;
            switch (rule.head.kind) {
                case Head::Kind::Atom:
                    derivable.insert(Signature{rule.head.atom.predicate, rule.head.atom.arity()});
                    break;
                case Head::Kind::Constraint: break;
                case Head::Kind::Choice:
                    for (const auto& element : rule.head.elements) {
                        derivable.insert(Signature{element.atom.predicate, element.atom.arity()});
                    }
                    break;
            }
        }
    }
    return derivable;
}

int requirement_line(const core::BundleSourceMap& source_map, const std::string& id) {
    for (const core::RequirementRef& ref : source_map.requirements) {
        if (ref.id == id) return ref.line;
    }
    return 0;
}

}  // namespace

void lint_bundle(const core::Bundle& bundle, const core::BundleSourceMap& source_map,
                 const security::AttackMatrix& matrix, DiagnosticSink& sink) {
    // Parse every behaviour fragment, mapping fragment-relative locations to
    // file-absolute ones via the block's header line.
    std::vector<Program> programs;
    std::vector<int> offsets;
    programs.reserve(source_map.model.fragments.size());
    for (const model::BehaviorFragment& fragment : source_map.model.fragments) {
        if (!fragment.component_known) continue;  // already reported by the loader
        DiagnosticSink fragment_sink;
        std::optional<Program> program = asp::parse_program(fragment.text, fragment_sink);
        sink.absorb(fragment_sink, fragment.header_line);
        if (!program.has_value()) continue;
        programs.push_back(std::move(*program));
        offsets.push_back(fragment.header_line);
    }

    // ASP rule pack over all fragments at once, so predicates derived in one
    // fragment and used in another resolve.
    AspLintOptions asp_options;
    asp_options.external_predicates = driver_vocabulary();
    std::vector<Atom> requirement_atoms;
    for (const epa::Requirement& requirement : bundle.behavioral_requirements) {
        collect_formula_atoms(requirement.formula, requirement_atoms);
    }
    for (const Atom& atom : requirement_atoms) {
        asp_options.assume_used.insert(Signature{atom.predicate, atom.arity()});
    }
    std::vector<ProgramSource> sources;
    std::vector<const Program*> program_ptrs;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        sources.push_back(ProgramSource{&programs[i], sink.file(), offsets[i]});
        program_ptrs.push_back(&programs[i]);
    }
    lint_programs(sources, asp_options, sink);

    // Ground component references in fragment atoms must name declared
    // components.
    for (std::size_t i = 0; i < programs.size(); ++i) {
        check_program_refs(programs[i], bundle.model, offsets[i], sink);
    }

    // exposure=public components the attack matrix cannot exercise.
    for (const model::Component& component : bundle.model.components()) {
        if (component.exposure != model::Exposure::Public) continue;
        if (!matrix.techniques_for(component).empty()) continue;
        SourceLoc loc;
        auto line = source_map.model.component_lines.find(component.id);
        if (line != source_map.model.component_lines.end()) loc = SourceLoc{line->second, 1};
        sink.warning("model-uncovered-exposure",
                     "component '" + component.id +
                         "' has exposure=public but no attack-matrix technique applies to "
                         "element type '" +
                         std::string(to_string(component.type)) + "'",
                     loc,
                     "extend the attack matrix or adjust the component's element type/exposure");
    }

    // Attack-reachability taint (analysis/taint.hpp): seeded at exposed
    // components the matrix can exercise, propagated along fault-propagation
    // relations.
    const analysis::TaintResult taint =
        analysis::analyze_attack_reachability(bundle.model, matrix);
    auto component_loc = [&](const model::ComponentId& id) {
        SourceLoc loc;
        auto line = source_map.model.component_lines.find(id);
        if (line != source_map.model.component_lines.end()) loc = SourceLoc{line->second, 1};
        return loc;
    };
    for (const analysis::AttackEntryPoint& entry : taint.entry_points) {
        if (entry.depth != 0 || entry.activated_fault.empty()) continue;
        sink.warning("model-trivially-compromised",
                     "component '" + entry.component + "' is public and technique '" +
                         entry.activating_technique + "' directly activates its declared fault "
                         "mode '" + entry.activated_fault + "'",
                     component_loc(entry.component),
                     "reduce the exposure or mitigate '" + entry.activating_technique +
                         "'; every attack scenario will include this compromise");
    }
    if (!taint.entry_points.empty()) {
        for (const model::ComponentId& id : taint.unreached) {
            sink.warning("model-unreachable-asset",
                         "component '" + id +
                             "' is unreachable from every attack entry point",
                         component_loc(id),
                         "no modelled attack scenario can involve it; check for missing "
                         "relations or drop it from the model");
        }
    }

    // Requirements must reference atoms some behaviour fragment (or the
    // assessment driver) can derive.
    std::set<std::string> underivable_requirements;
    const std::set<Signature> derivable = derivable_signatures(program_ptrs);
    for (const epa::Requirement& requirement : bundle.behavioral_requirements) {
        std::vector<Atom> atoms;
        collect_formula_atoms(requirement.formula, atoms);
        for (const Atom& atom : atoms) {
            const Signature sig{atom.predicate, atom.arity()};
            if (derivable.count(sig) > 0 || driver_vocabulary().count(atom.predicate) > 0) {
                continue;
            }
            SourceLoc loc;
            if (int line = requirement_line(source_map, requirement.id); line > 0) {
                loc = SourceLoc{line, 1};
            }
            underivable_requirements.insert(requirement.id);
            sink.warning("model-underivable-requirement",
                         "requirement '" + requirement.id + "' references atom '" +
                             atom.to_string() + "' which no behaviour fragment derives",
                         loc, "derive '" + sig.to_string() + "' in a behaviour block");
        }
    }

    // Statically unreachable hazards: the open ternary analysis of the
    // behavioural base (every fault free to fire, no mitigation pinned)
    // proves the requirement's `violated/1` atom impossible at a horizon
    // covering the model diameter — no assessment scenario can ever flag it
    // (asp/absint, docs/static-analysis.md). Requirements already reported
    // underivable are skipped (they are trivially unreachable); a create()
    // failure or an unavailable ground-once cache also skips the check, the
    // reachability list then being conservatively complete.
    epa::EpaOptions epa_options;
    epa_options.focus = epa::AnalysisFocus::Behavioral;
    epa_options.horizon = static_cast<int>(bundle.model.components().size()) + 1;
    auto epa = epa::ErrorPropagationAnalysis::create(
        bundle.model, bundle.behavioral_requirements,
        epa::MitigationMap::from_attack_matrix(bundle.model, matrix), epa_options);
    // Polarity certificate (asp/polarity.hpp): when the certifier cannot
    // prove hazard verdicts monotone non-decreasing in the fault set, the
    // exhaustive frontier (`assess --exhaustive`) must enumerate without
    // superset pruning. Informational only — conservative failures are
    // common (any `not eff_fault(..)` in a behaviour fragment trips the
    // odd-negation check) — so a Note, never an exit-code change.
    if (epa.ok()) {
        const std::optional<asp::polarity::MonotonicityCertificate> certificate =
            epa.value().certify_monotonicity({});
        if (certificate.has_value() && !certificate->monotone) {
            constexpr std::size_t kMaxOffenders = 8;
            std::size_t shown = 0;
            for (const asp::polarity::Offender& offender : certificate->offenders) {
                if (shown++ >= kMaxOffenders) break;
                sink.note("model-nonmonotone-fault",
                          std::string(asp::polarity::to_string(offender.kind)) + ": " +
                              offender.detail,
                          SourceLoc{},
                          "hazard verdicts are not provably monotone in the fault set; "
                          "'cprisk assess --exhaustive' will enumerate without superset "
                          "pruning (docs/exhaustive-search.md)");
            }
        }
    }

    if (epa.ok()) {
        const std::vector<std::string> reachable = epa.value().statically_reachable_violations();
        const std::set<std::string> reachable_set(reachable.begin(), reachable.end());
        for (const epa::Requirement& requirement : bundle.behavioral_requirements) {
            if (reachable_set.count(requirement.id) > 0) continue;
            if (underivable_requirements.count(requirement.id) > 0) continue;
            SourceLoc loc;
            if (int line = requirement_line(source_map, requirement.id); line > 0) {
                loc = SourceLoc{line, 1};
            }
            sink.warning("model-hazard-unreachable",
                         "requirement '" + requirement.id +
                             "' can never be violated: no combination of faults reaches its "
                             "violation at horizon " +
                             std::to_string(epa_options.horizon),
                         loc,
                         "the requirement adds no hazard coverage; check the propagation "
                         "relations and behaviour fragments, or drop it");
        }
    }
}

}  // namespace cprisk::lint
