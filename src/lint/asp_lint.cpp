#include "lint/asp_lint.hpp"

#include <map>
#include <string_view>

#include "analysis/dependency_graph.hpp"
#include "asp/absint/absint.hpp"
#include "asp/eval.hpp"
#include "asp/grounder.hpp"
#include "asp/safety.hpp"

namespace cprisk::lint {

namespace {

using asp::Head;
using asp::Literal;
using asp::Program;
using asp::Rule;
using asp::Signature;
using asp::Term;
using asp::WeakConstraint;

constexpr std::string_view kPrevPrefix = "prev_";

bool has_prev_prefix(const std::string& name) {
    return name.size() > kPrevPrefix.size() &&
           name.compare(0, kPrevPrefix.size(), kPrevPrefix) == 0;
}

/// Where a signature was first seen: which source, and where within it.
struct Occurrence {
    std::size_t source = 0;
    SourceLoc loc;
};

/// Shared state of the cross-program checks plus a location-shifting
/// reporter.
class AspLinter {
public:
    AspLinter(const std::vector<ProgramSource>& sources, const AspLintOptions& options,
              DiagnosticSink& sink)
        : sources_(sources), options_(options), sink_(sink) {}

    void run() {
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            if (sources_[i].program == nullptr) continue;
            lint_source(i);
        }
        check_arities();
        check_undefined();
        check_unused();
        check_dependency_graph();
        check_absint();
    }

private:
    void report(Severity severity, std::string rule, std::string message, std::size_t source,
                SourceLoc loc, std::string hint = {}) {
        Diagnostic diagnostic;
        diagnostic.severity = severity;
        diagnostic.rule = std::move(rule);
        diagnostic.message = std::move(message);
        diagnostic.hint = std::move(hint);
        diagnostic.file = sources_[source].file;
        if (loc.valid()) {
            diagnostic.loc = SourceLoc{loc.line + sources_[source].line_offset, loc.column};
        }
        sink_.report(std::move(diagnostic));
    }

    static void remember(std::map<Signature, Occurrence>& into, Signature sig, std::size_t source,
                         SourceLoc loc) {
        into.emplace(std::move(sig), Occurrence{source, loc});
    }

    void note_atom(const asp::Atom& atom, std::size_t source, SourceLoc loc, bool is_use,
                   bool temporal) {
        Signature sig{atom.predicate, atom.arity()};
        arities_[sig.predicate].emplace(sig.arity, Occurrence{source, loc});
        if (is_use) {
            remember(used_, sig, source, loc);
            if (temporal && has_prev_prefix(atom.predicate)) {
                // `prev_p(X)` reads p(X) at t-1: it is a use of p and is
                // synthesized by the frame translation, not derived by rules.
                remember(used_,
                         Signature{atom.predicate.substr(kPrevPrefix.size()), atom.arity()},
                         source, loc);
                frame_synthesized_.insert(sig);
            }
        } else {
            remember(derived_, sig, source, loc);
        }
    }

    void note_literal_uses(const Literal& lit, std::size_t source, SourceLoc fallback,
                           bool temporal) {
        const SourceLoc loc = lit.loc.valid() ? lit.loc : fallback;
        switch (lit.kind) {
            case Literal::Kind::Atom:
                note_atom(lit.atom, source, loc, /*is_use=*/true, temporal);
                break;
            case Literal::Kind::Comparison:
                break;
            case Literal::Kind::Aggregate:
                for (const auto& element : lit.elements) {
                    for (const Literal& cond : element.condition) {
                        note_literal_uses(cond, source, loc, temporal);
                    }
                }
                break;
        }
    }

    /// Collects every variable occurrence of a literal (duplicates kept).
    static void collect_literal_variables(const Literal& lit, std::vector<std::string>& out) {
        switch (lit.kind) {
            case Literal::Kind::Atom:
                for (const Term& arg : lit.atom.args) arg.collect_variables(out);
                break;
            case Literal::Kind::Comparison:
                lit.lhs.collect_variables(out);
                lit.rhs.collect_variables(out);
                break;
            case Literal::Kind::Aggregate:
                lit.rhs.collect_variables(out);
                for (const auto& element : lit.elements) {
                    for (const Term& t : element.tuple) t.collect_variables(out);
                    for (const Literal& cond : element.condition) {
                        collect_literal_variables(cond, out);
                    }
                }
                break;
        }
    }

    void check_singletons(const std::vector<std::string>& variables,
                          const std::set<std::string>& already_unsafe, const std::string& context,
                          std::size_t source, SourceLoc loc) {
        std::map<std::string, int> counts;
        for (const std::string& var : variables) ++counts[var];
        for (const auto& [var, count] : counts) {
            if (count != 1 || var.empty() || var[0] == '_') continue;
            if (already_unsafe.count(var) > 0) continue;
            report(Severity::Warning, "asp-singleton-var",
                   "variable '" + var + "' occurs only once in " + context, source, loc,
                   "replace '" + var + "' with '_' if the value is irrelevant");
        }
    }

    /// Flags constraints that are trivially dead (a ground comparison is
    /// false) or trivially violated (the whole body is ground comparisons
    /// that all hold, so no stable model exists).
    void check_constraint(const Rule& rule, std::size_t source) {
        if (rule.body.empty()) {
            report(Severity::Error, "asp-constraint-unsat",
                   "constraint with empty body is always violated; the program is unsatisfiable",
                   source, rule.loc);
            return;
        }
        bool body_always_holds = true;
        for (const Literal& lit : rule.body) {
            if (lit.kind != Literal::Kind::Comparison || !lit.lhs.is_ground() ||
                !lit.rhs.is_ground()) {
                body_always_holds = false;
                continue;
            }
            auto lhs = asp::eval_term(lit.lhs);
            auto rhs = asp::eval_term(lit.rhs);
            if (!lhs.ok() || !rhs.ok() || lhs.value().is_compound() ||
                rhs.value().is_compound()) {
                body_always_holds = false;
                continue;
            }
            if (!asp::compare_terms(lhs.value(), lit.op, rhs.value())) {
                report(Severity::Note, "asp-constraint-dead",
                       "constraint can never fire: '" + lit.to_string() + "' is always false",
                       source, lit.loc.valid() ? lit.loc : rule.loc,
                       "remove the constraint or fix the comparison");
                return;
            }
        }
        if (body_always_holds) {
            report(Severity::Error, "asp-constraint-unsat",
                   "constraint body trivially holds; the program is unsatisfiable", source,
                   rule.loc);
        }
    }

    void lint_source(std::size_t source) {
        const Program& program = *sources_[source].program;
        const bool temporal = program.is_temporal();
        std::map<std::string, SourceLoc> seen_rules;

        for (const auto& sectioned : program.rules()) {
            const Rule& rule = sectioned.rule;

            // Exact duplicates (same head, same body, same order) contribute
            // nothing: answer sets and costs are unchanged without them.
            const auto [first, inserted] = seen_rules.emplace(rule.to_string(), rule.loc);
            if (!inserted) {
                std::string message = "rule duplicates an identical earlier rule";
                if (first->second.valid()) {
                    message += " (line " +
                               std::to_string(first->second.line + sources_[source].line_offset) +
                               ")";
                }
                report(Severity::Note, "asp-redundant-rule", std::move(message), source, rule.loc,
                       "remove the duplicate");
            }

            // Definitions and uses.
            switch (rule.head.kind) {
                case Head::Kind::Atom:
                    note_atom(rule.head.atom, source, rule.loc, /*is_use=*/false, temporal);
                    if (!rule.body.empty()) {
                        rule_derived_.insert(
                            Signature{rule.head.atom.predicate, rule.head.atom.arity()});
                    }
                    break;
                case Head::Kind::Constraint: break;
                case Head::Kind::Choice:
                    for (const auto& element : rule.head.elements) {
                        note_atom(element.atom, source, rule.loc, /*is_use=*/false, temporal);
                        rule_derived_.insert(
                            Signature{element.atom.predicate, element.atom.arity()});
                        for (const Literal& cond : element.condition) {
                            note_literal_uses(cond, source, rule.loc, temporal);
                        }
                    }
                    break;
            }
            for (const Literal& lit : rule.body) {
                note_literal_uses(lit, source, rule.loc, temporal);
            }

            // Safety — the same implementation the grounder enforces.
            std::set<std::string> unsafe;
            for (const asp::SafetyViolation& violation : asp::unsafe_rule_variables(rule)) {
                unsafe.insert(violation.variable);
                report(Severity::Error, "asp-unsafe-var",
                       "unsafe variable '" + violation.variable + "' in " + violation.context,
                       source, rule.loc,
                       "bind '" + violation.variable + "' with a positive body atom");
            }

            // Singletons.
            std::vector<std::string> variables;
            switch (rule.head.kind) {
                case Head::Kind::Atom:
                    for (const Term& arg : rule.head.atom.args) arg.collect_variables(variables);
                    break;
                case Head::Kind::Constraint: break;
                case Head::Kind::Choice:
                    for (const auto& element : rule.head.elements) {
                        for (const Term& arg : element.atom.args) {
                            arg.collect_variables(variables);
                        }
                        for (const Literal& cond : element.condition) {
                            collect_literal_variables(cond, variables);
                        }
                    }
                    break;
            }
            for (const Literal& lit : rule.body) collect_literal_variables(lit, variables);
            check_singletons(variables, unsafe, "rule " + rule.to_string(), source, rule.loc);

            if (rule.head.kind == Head::Kind::Constraint) check_constraint(rule, source);
        }

        for (const auto& sectioned : program.weaks()) {
            const WeakConstraint& weak = sectioned.weak;
            for (const Literal& lit : weak.body) {
                note_literal_uses(lit, source, weak.loc, temporal);
            }

            std::set<std::string> unsafe;
            for (const asp::SafetyViolation& violation : asp::unsafe_weak_variables(weak)) {
                unsafe.insert(violation.variable);
                report(Severity::Error, "asp-unsafe-var",
                       "unsafe variable '" + violation.variable + "' in " + violation.context,
                       source, weak.loc,
                       "bind '" + violation.variable + "' with a positive body atom");
            }

            std::vector<std::string> variables;
            weak.weight.collect_variables(variables);
            for (const Term& t : weak.tuple) t.collect_variables(variables);
            for (const Literal& lit : weak.body) collect_literal_variables(lit, variables);
            check_singletons(variables, unsafe, "weak constraint " + weak.to_string(), source,
                             weak.loc);
        }

        // #show directives consume their signature.
        for (const Signature& sig : program.shows()) {
            remember(used_, sig, source, SourceLoc{});
            arities_[sig.predicate].emplace(sig.arity, Occurrence{source, SourceLoc{}});
        }
    }

    bool is_external(const std::string& predicate) const {
        return options_.external_predicates.count(predicate) > 0;
    }

    bool derived_at_other_arity(const Signature& sig) const {
        auto it = arities_.find(sig.predicate);
        if (it == arities_.end()) return false;
        for (const auto& [arity, occurrence] : it->second) {
            if (arity != sig.arity && derived_.count(Signature{sig.predicate, arity}) > 0) {
                return true;
            }
        }
        return false;
    }

    void check_arities() {
        for (const auto& [predicate, by_arity] : arities_) {
            if (by_arity.size() < 2 || is_external(predicate)) continue;
            std::string list;
            for (const auto& [arity, occurrence] : by_arity) {
                if (!list.empty()) list += ", ";
                list += predicate + "/" + std::to_string(arity);
            }
            const Occurrence& site = by_arity.begin()->second;
            report(Severity::Warning, "asp-arity-mismatch",
                   "predicate '" + predicate + "' used with multiple arities: " + list,
                   site.source, site.loc);
        }
    }

    void check_undefined() {
        for (const auto& [sig, occurrence] : used_) {
            if (derived_.count(sig) > 0 || is_external(sig.predicate)) continue;
            if (frame_synthesized_.count(sig) > 0) continue;  // reported via the base name
            if (derived_at_other_arity(sig)) continue;        // asp-arity-mismatch covers it
            report(Severity::Warning, "asp-undefined-pred",
                   "predicate '" + sig.to_string() + "' is used but never derivable",
                   occurrence.source, occurrence.loc,
                   "add a rule or fact deriving '" + sig.to_string() + "', or remove the use");
        }
    }

    void check_unused() {
        for (const auto& [sig, occurrence] : derived_) {
            if (used_.count(sig) > 0 || is_external(sig.predicate)) continue;
            if (options_.assume_used.count(sig) > 0) continue;
            if (used_.count(Signature{std::string(kPrevPrefix) + sig.predicate, sig.arity}) > 0) {
                continue;
            }
            report(Severity::Note, "asp-unused-pred",
                   "predicate '" + sig.to_string() + "' is derived but never used",
                   occurrence.source, occurrence.loc,
                   "add '#show " + sig.to_string() + ".' or remove the deriving rules");
        }
    }

    /// Where to anchor a component-level (cycle) diagnostic: the first
    /// derived member signature with a known location, else any member.
    Occurrence cycle_anchor(const std::vector<Signature>& members) const {
        for (const Signature& sig : members) {
            auto it = derived_.find(sig);
            if (it != derived_.end()) return it->second;
        }
        for (const Signature& sig : members) {
            auto it = used_.find(sig);
            if (it != used_.end()) return it->second;
        }
        return Occurrence{};
    }

    static std::string signature_list(const std::vector<Signature>& members) {
        std::string list;
        for (const Signature& sig : members) {
            if (!list.empty()) list += ", ";
            list += sig.to_string();
        }
        return list;
    }

    /// Graph-level rules: recursion through negation, positive recursion,
    /// and predicates that can never influence an output.
    void check_dependency_graph() {
        std::vector<const Program*> programs;
        for (const ProgramSource& source : sources_) {
            if (source.program != nullptr) programs.push_back(source.program);
        }
        const analysis::DependencyGraph graph = analysis::DependencyGraph::build(programs);

        std::set<std::size_t> unstratified(graph.unstratified_components().begin(),
                                           graph.unstratified_components().end());
        for (std::size_t component : graph.unstratified_components()) {
            const auto members = graph.component_signatures(component);
            const Occurrence site = cycle_anchor(members);
            report(Severity::Warning, "asp-unstratified-negation",
                   "recursion through negation: {" + signature_list(members) +
                       "} cannot be stratified",
                   site.source, site.loc,
                   "break the negative cycle, or confirm the program relies on "
                   "multiple stable models");
        }
        for (std::size_t component : graph.positive_loop_components()) {
            if (unstratified.count(component) > 0) continue;  // the warning above covers it
            const auto members = graph.component_signatures(component);
            const Occurrence site = cycle_anchor(members);
            report(Severity::Note, "asp-positive-loop",
                   "positive recursion among {" + signature_list(members) + "}", site.source,
                   site.loc, "recursive definitions ground to a fixpoint; confirm the cycle is "
                             "intended");
        }

        // Predicate-level dead code: derived and consumed somewhere, yet no
        // chain of rules connects it to a #show output, a constraint, or an
        // externally consumed signature. Only meaningful when the program
        // declares outputs at all.
        if (!graph.has_show_roots() && options_.assume_used.empty()) return;
        const std::vector<bool> live = graph.reachable_from_outputs(options_.assume_used);
        for (std::size_t node = 0; node < graph.node_count(); ++node) {
            if (live[node]) continue;
            const Signature& sig = graph.node(node);
            if (is_external(sig.predicate)) continue;
            auto derived = derived_.find(sig);
            if (derived == derived_.end()) continue;
            if (used_.count(sig) == 0) continue;  // asp-unused-pred covers it
            report(Severity::Note, "asp-unreachable-from-show",
                   "predicate '" + sig.to_string() +
                       "' never reaches a #show output or constraint",
                   derived->second.source, derived->second.loc,
                   "its derivations cannot influence reported results; remove the rules or "
                   "show the predicate");
        }
    }

    /// Whole-program rules backed by the ternary abstract interpretation
    /// (asp/absint, docs/static-analysis.md): ground body literals whose
    /// truth the pin-free fixpoint already decides. Only meaningful for
    /// closed, non-temporal programs — bundle fragments (open external
    /// vocabulary) and temporal programs (which need an unrolling horizon;
    /// model-hazard-unreachable covers those at the bundle level) skip it.
    void check_absint() {
        if (!options_.external_predicates.empty()) return;
        asp::ProgramParts parts;
        for (const ProgramSource& source : sources_) {
            if (source.program == nullptr) continue;
            if (source.program->is_temporal()) return;
            parts.push_back(source.program);
        }
        if (parts.empty()) return;
        auto grounded = asp::ground(parts);
        if (!grounded.ok()) return;  // unsafe rules are already errors above
        const asp::absint::Analysis analysis = asp::absint::evaluate(grounded.value());
        if (analysis.conflict || analysis.interrupted) return;

        for (std::size_t i = 0; i < sources_.size(); ++i) {
            if (sources_[i].program == nullptr) continue;
            for (const auto& sectioned : sources_[i].program->rules()) {
                check_rule_absint(sectioned.rule, grounded.value(), analysis, i);
            }
        }
    }

    void check_rule_absint(const Rule& rule, const asp::GroundProgram& ground,
                           const asp::absint::Analysis& analysis, std::size_t source) {
        for (const Literal& lit : rule.body) {
            if (lit.kind != Literal::Kind::Atom || !lit.atom.is_ground()) continue;
            // Normalize arithmetic in the arguments the way the grounder
            // does, so p(1+1) matches the interned p(2).
            asp::Atom atom;
            atom.predicate = lit.atom.predicate;
            for (const Term& arg : lit.atom.args) {
                auto value = asp::eval_term(arg);
                atom.args.push_back(value.ok() ? std::move(value).value() : arg);
            }
            // Atoms the grounder never interned are underivable, i.e.
            // statically false.
            const int id = ground.find(atom);
            const asp::absint::Ternary value =
                id < 0 ? asp::absint::Ternary::False : analysis.value(id);
            if (value == asp::absint::Ternary::Unknown) continue;
            const bool holds = (value == asp::absint::Ternary::True) != lit.negated;
            const SourceLoc loc = lit.loc.valid() ? lit.loc : rule.loc;
            if (!holds) {
                report(Severity::Note, "asp-redundant-rule",
                       "body literal '" + lit.to_string() + "' is statically false: the " +
                           (rule.head.kind == Head::Kind::Constraint ? "constraint" : "rule") +
                           " can never fire",
                       source, loc, "remove the rule, or fix the literal");
                return;  // one finding per rule is enough
            }
            // Literals over predicates derived only by facts are idiomatic
            // flags (`p :- start.`); only rule-derived constants are
            // surprising enough to report.
            if (rule_derived_.count(Signature{lit.atom.predicate, lit.atom.arity()}) == 0) {
                continue;
            }
            report(Severity::Note, "asp-constant-atom",
                   "body literal '" + lit.to_string() +
                       "' is statically true in every answer set",
                   source, loc, "the literal is redundant and can be dropped");
        }
    }

    const std::vector<ProgramSource>& sources_;
    const AspLintOptions& options_;
    DiagnosticSink& sink_;

    std::map<Signature, Occurrence> derived_;
    std::map<Signature, Occurrence> used_;
    std::set<Signature> frame_synthesized_;
    std::set<Signature> rule_derived_;
    std::map<std::string, std::map<std::size_t, Occurrence>> arities_;
};

}  // namespace

void lint_programs(const std::vector<ProgramSource>& sources, const AspLintOptions& options,
                   DiagnosticSink& sink) {
    AspLinter(sources, options, sink).run();
}

void lint_program(const asp::Program& program, const AspLintOptions& options,
                  DiagnosticSink& sink, const std::string& file) {
    lint_programs({ProgramSource{&program, file, 0}}, options, sink);
}

}  // namespace cprisk::lint
