// cprisk/petri/petri_net.hpp
//
// Place/transition Petri nets — the third classical EPA approach the paper
// names (§III-A: "Markov chains and Petri nets are other approaches for EPA
// but require specific expert knowledge"). Provides the standard P/T net
// semantics (weighted arcs, token firing), bounded reachability exploration,
// and deadlock detection, so the qualitative EPA verdicts can be
// cross-checked against a token-game model of the plant.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace cprisk::petri {

/// A marking: token count per place, indexed by place insertion order.
using Marking = std::vector<int>;

class PetriNet {
public:
    /// Adds a place with an initial token count; returns its index.
    Result<std::size_t> add_place(std::string id, int initial_tokens = 0);
    /// Adds a transition; returns its index.
    Result<std::size_t> add_transition(std::string id);

    /// Input arc: `place` must carry >= `weight` tokens to enable
    /// `transition`; firing consumes them.
    Result<void> add_input_arc(const std::string& place, const std::string& transition,
                               int weight = 1);
    /// Output arc: firing `transition` produces `weight` tokens on `place`.
    Result<void> add_output_arc(const std::string& transition, const std::string& place,
                                int weight = 1);

    std::size_t place_count() const { return places_.size(); }
    std::size_t transition_count() const { return transitions_.size(); }
    Result<std::size_t> place_index(const std::string& id) const;
    Result<std::size_t> transition_index(const std::string& id) const;
    const std::string& place_name(std::size_t index) const;
    const std::string& transition_name(std::size_t index) const;

    /// The initial marking.
    Marking initial_marking() const;

    bool enabled(std::size_t transition, const Marking& marking) const;
    std::vector<std::size_t> enabled_transitions(const Marking& marking) const;

    /// Fires `transition` (must be enabled) and returns the new marking.
    Result<Marking> fire(std::size_t transition, const Marking& marking) const;

    struct Exploration {
        std::vector<Marking> markings;    ///< reachable markings (<= cap)
        bool exhausted = false;            ///< true if fully explored
        std::vector<Marking> deadlocks;    ///< markings with no enabled transition
    };

    /// BFS over the reachability graph, capped at `max_markings` states.
    Exploration explore(std::size_t max_markings = 100'000) const;

    /// True if a reachable marking (within the cap) satisfies `predicate`.
    /// Fails when the cap is hit before a witness is found and the space was
    /// not exhausted (the answer would be unreliable).
    Result<bool> can_reach(const std::function<bool(const Marking&)>& predicate,
                           std::size_t max_markings = 100'000) const;

    /// Tokens on `place` under `marking`.
    Result<int> tokens(const std::string& place, const Marking& marking) const;

private:
    struct Arc {
        std::size_t place = 0;
        int weight = 1;
    };
    std::vector<std::string> places_;
    std::vector<int> initial_;
    std::vector<std::string> transitions_;
    std::vector<std::vector<Arc>> inputs_;   ///< per transition
    std::vector<std::vector<Arc>> outputs_;  ///< per transition
    std::map<std::string, std::size_t> place_ids_;
    std::map<std::string, std::size_t> transition_ids_;
};

}  // namespace cprisk::petri
