#include "petri/petri_net.hpp"

#include <deque>
#include <set>

namespace cprisk::petri {

Result<std::size_t> PetriNet::add_place(std::string id, int initial_tokens) {
    if (id.empty()) return Result<std::size_t>::failure("place id must be non-empty");
    if (place_ids_.count(id) > 0 || transition_ids_.count(id) > 0) {
        return Result<std::size_t>::failure("duplicate node id '" + id + "'");
    }
    if (initial_tokens < 0) return Result<std::size_t>::failure("negative initial tokens");
    const std::size_t index = places_.size();
    place_ids_.emplace(id, index);
    places_.push_back(std::move(id));
    initial_.push_back(initial_tokens);
    return index;
}

Result<std::size_t> PetriNet::add_transition(std::string id) {
    if (id.empty()) return Result<std::size_t>::failure("transition id must be non-empty");
    if (place_ids_.count(id) > 0 || transition_ids_.count(id) > 0) {
        return Result<std::size_t>::failure("duplicate node id '" + id + "'");
    }
    const std::size_t index = transitions_.size();
    transition_ids_.emplace(id, index);
    transitions_.push_back(std::move(id));
    inputs_.emplace_back();
    outputs_.emplace_back();
    return index;
}

Result<void> PetriNet::add_input_arc(const std::string& place, const std::string& transition,
                                     int weight) {
    auto p = place_index(place);
    if (!p.ok()) return Result<void>::failure(p.error());
    auto t = transition_index(transition);
    if (!t.ok()) return Result<void>::failure(t.error());
    if (weight <= 0) return Result<void>::failure("arc weight must be positive");
    inputs_[t.value()].push_back(Arc{p.value(), weight});
    return {};
}

Result<void> PetriNet::add_output_arc(const std::string& transition, const std::string& place,
                                      int weight) {
    auto p = place_index(place);
    if (!p.ok()) return Result<void>::failure(p.error());
    auto t = transition_index(transition);
    if (!t.ok()) return Result<void>::failure(t.error());
    if (weight <= 0) return Result<void>::failure("arc weight must be positive");
    outputs_[t.value()].push_back(Arc{p.value(), weight});
    return {};
}

Result<std::size_t> PetriNet::place_index(const std::string& id) const {
    auto it = place_ids_.find(id);
    if (it == place_ids_.end()) return Result<std::size_t>::failure("unknown place '" + id + "'");
    return it->second;
}

Result<std::size_t> PetriNet::transition_index(const std::string& id) const {
    auto it = transition_ids_.find(id);
    if (it == transition_ids_.end()) {
        return Result<std::size_t>::failure("unknown transition '" + id + "'");
    }
    return it->second;
}

const std::string& PetriNet::place_name(std::size_t index) const {
    require(index < places_.size(), "PetriNet: place index out of range");
    return places_[index];
}

const std::string& PetriNet::transition_name(std::size_t index) const {
    require(index < transitions_.size(), "PetriNet: transition index out of range");
    return transitions_[index];
}

Marking PetriNet::initial_marking() const { return initial_; }

bool PetriNet::enabled(std::size_t transition, const Marking& marking) const {
    require(transition < transitions_.size(), "PetriNet: transition index out of range");
    require(marking.size() == places_.size(), "PetriNet: marking arity mismatch");
    for (const Arc& arc : inputs_[transition]) {
        if (marking[arc.place] < arc.weight) return false;
    }
    return true;
}

std::vector<std::size_t> PetriNet::enabled_transitions(const Marking& marking) const {
    std::vector<std::size_t> out;
    for (std::size_t t = 0; t < transitions_.size(); ++t) {
        if (enabled(t, marking)) out.push_back(t);
    }
    return out;
}

Result<Marking> PetriNet::fire(std::size_t transition, const Marking& marking) const {
    if (!enabled(transition, marking)) {
        return Result<Marking>::failure("transition '" + transitions_[transition] +
                                        "' not enabled");
    }
    Marking next = marking;
    for (const Arc& arc : inputs_[transition]) next[arc.place] -= arc.weight;
    for (const Arc& arc : outputs_[transition]) next[arc.place] += arc.weight;
    return next;
}

PetriNet::Exploration PetriNet::explore(std::size_t max_markings) const {
    Exploration exploration;
    std::set<Marking> seen;
    std::deque<Marking> frontier;
    frontier.push_back(initial_marking());
    seen.insert(initial_marking());

    while (!frontier.empty()) {
        if (seen.size() > max_markings) return exploration;  // exhausted=false
        Marking current = std::move(frontier.front());
        frontier.pop_front();

        const auto enabled_list = enabled_transitions(current);
        if (enabled_list.empty()) exploration.deadlocks.push_back(current);
        for (std::size_t t : enabled_list) {
            Marking next = fire(t, current).value();
            if (seen.insert(next).second) frontier.push_back(next);
        }
        exploration.markings.push_back(std::move(current));
    }
    exploration.exhausted = true;
    return exploration;
}

Result<bool> PetriNet::can_reach(const std::function<bool(const Marking&)>& predicate,
                                 std::size_t max_markings) const {
    std::set<Marking> seen;
    std::deque<Marking> frontier;
    frontier.push_back(initial_marking());
    seen.insert(initial_marking());

    while (!frontier.empty()) {
        Marking current = std::move(frontier.front());
        frontier.pop_front();
        if (predicate(current)) return true;
        if (seen.size() > max_markings) {
            return Result<bool>::failure("reachability exploration exceeded " +
                                         std::to_string(max_markings) + " markings");
        }
        for (std::size_t t : enabled_transitions(current)) {
            Marking next = fire(t, current).value();
            if (seen.insert(next).second) frontier.push_back(std::move(next));
        }
    }
    return false;
}

Result<int> PetriNet::tokens(const std::string& place, const Marking& marking) const {
    auto p = place_index(place);
    if (!p.ok()) return Result<int>::failure(p.error());
    if (marking.size() != places_.size()) return Result<int>::failure("marking arity mismatch");
    return marking[p.value()];
}

}  // namespace cprisk::petri
