#include "epa/frontier.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/antichain.hpp"
#include "common/thread_pool.hpp"

namespace cprisk::epa {

using hierarchy::ScenarioOutcome;
using hierarchy::ScenarioRecord;
using security::Mutation;

std::string frontier_scenario_id(const std::vector<Mutation>& subset) {
    if (subset.empty()) return "exh:none";
    std::string id = "exh:";
    for (std::size_t i = 0; i < subset.size(); ++i) {
        if (i > 0) id += "+";
        id += subset[i].to_string();
    }
    return id;
}

security::AttackScenario frontier_scenario(const model::SystemModel& model,
                                           std::vector<Mutation> subset) {
    security::AttackScenario scenario;
    scenario.id = frontier_scenario_id(subset);
    scenario.origin = security::ScenarioOrigin::FaultCombination;
    std::vector<qual::Level> likelihoods;
    likelihoods.reserve(subset.size());
    for (const Mutation& mutation : subset) {
        const model::FaultMode* mode =
            model.component(mutation.component).find_fault_mode(mutation.fault_id);
        likelihoods.push_back(mode != nullptr ? mode->likelihood : qual::Level::Medium);
    }
    scenario.likelihood = security::combined_likelihood(likelihoods);
    scenario.mutations = std::move(subset);
    return scenario;
}

namespace {

ScenarioOutcome outcome_of(const ScenarioVerdict& verdict) {
    switch (verdict.status) {
        case VerdictStatus::Hazard: return ScenarioOutcome::Confirmed;
        case VerdictStatus::Safe: return ScenarioOutcome::Safe;
        case VerdictStatus::Undetermined: return ScenarioOutcome::Undetermined;
    }
    return ScenarioOutcome::Undetermined;
}

/// Calls `consume` with every size-`card` subset of `universe`, as a sorted
/// mutation vector, in lexicographic index order.
template <typename Consume>
void for_each_subset(const std::vector<Mutation>& universe, std::size_t card, Consume&& consume) {
    if (card > universe.size()) return;
    std::vector<std::size_t> pick(card);
    for (std::size_t i = 0; i < card; ++i) pick[i] = i;
    bool more = true;
    while (more) {
        std::vector<Mutation> subset;
        subset.reserve(card);
        for (std::size_t i : pick) subset.push_back(universe[i]);
        consume(std::move(subset));
        more = false;
        for (std::size_t i = card; i-- > 0;) {
            if (pick[i] + (card - i) < universe.size()) {
                ++pick[i];
                for (std::size_t j = i + 1; j < card; ++j) pick[j] = pick[j - 1] + 1;
                more = true;
                break;
            }
        }
    }
}

}  // namespace

Result<FrontierResult> run_frontier(const ErrorPropagationAnalysis& epa,
                                    const FrontierOptions& options) {
    FrontierResult result;
    const model::SystemModel& model = epa.system_model();

    std::vector<Mutation> universe;
    for (const model::Component& component : model.components()) {
        for (const model::FaultMode& mode : component.fault_modes) {
            if (options.component_filter != nullptr &&
                options.component_filter->count(component.id) == 0) {
                ++result.skipped_faults;
                continue;
            }
            universe.push_back(Mutation{component.id, mode.id});
        }
    }
    std::sort(universe.begin(), universe.end());
    result.universe_size = universe.size();
    result.max_card =
        options.max_card == 0 ? universe.size() : std::min(options.max_card, universe.size());

    // The certificate decides the sweep mode once, up front: monotone ->
    // superset pruning; mixed or unavailable -> sound per-layer enumeration
    // of every candidate (same verdicts, more solves).
    result.certificate = epa.certify_monotonicity(options.active_mitigations);
    result.pruning = result.certificate.has_value() && result.certificate->monotone;

    obs::Span span(options.trace_sink(), "epa.frontier", "phase");
    span.arg("universe", static_cast<long long>(result.universe_size));
    span.arg("pruning", static_cast<long long>(result.pruning ? 1 : 0));

    Antichain<std::vector<Mutation>> hazardous;
    const std::size_t jobs = ThreadPool::resolve(options.effective_jobs());
    std::optional<ThreadPool> local_pool;

    for (std::size_t card = 0; card <= result.max_card; ++card) {
        // Layer barrier: pruning consults only hazards from strictly
        // smaller layers (same-size sets cannot dominate each other), so
        // the layer's candidates are independent and may run in parallel.
        std::vector<security::AttackScenario> layer;
        for_each_subset(universe, card, [&](std::vector<Mutation> subset) {
            ++result.candidates;
            if (result.pruning && hazardous.dominates(subset)) {
                ++result.pruned;
                return;
            }
            layer.push_back(frontier_scenario(model, std::move(subset)));
        });
        // Priority ordering applies *within* the layer: pruning soundness
        // only needs layers to ascend by cardinality, the order inside one
        // layer is free. The sort is deterministic (score desc, id asc), so
        // journals stay byte-identical at any job count.
        if (options.priority != nullptr) options.priority->order(layer);

        const auto evaluate_one =
            [&](const security::AttackScenario& scenario) -> Result<ScenarioRecord> {
            auto verdict = epa.evaluate(scenario, options.active_mitigations);
            if (!verdict.ok()) return Result<ScenarioRecord>::failure(verdict.error());
            ScenarioRecord record;
            record.scenario_id = scenario.id;
            record.verdict = std::move(verdict).value();
            record.outcome = outcome_of(record.verdict);
            hierarchy::StageOutcome stage;
            stage.stage = "frontier";
            stage.status = record.verdict.status;
            stage.undetermined_reason = record.verdict.undetermined_reason;
            record.stages.push_back(std::move(stage));
            return record;
        };

        const std::size_t layer_start = result.records.size();
        if (jobs <= 1 || layer.size() <= 1) {
            for (const security::AttackScenario& scenario : layer) {
                if (options.hooks.lookup) {
                    std::optional<ScenarioRecord> replayed = options.hooks.lookup(scenario.id);
                    if (replayed) {
                        ++result.replayed;
                        result.records.push_back(std::move(*replayed));
                        continue;
                    }
                }
                auto record = evaluate_one(scenario);
                if (!record.ok()) return Result<FrontierResult>::failure(record.error());
                if (options.hooks.completed) {
                    auto appended = options.hooks.completed(record.value());
                    if (!appended.ok()) return Result<FrontierResult>::failure(appended.error());
                }
                ++result.evaluated;
                result.records.push_back(std::move(record).value());
            }
        } else {
            // Parallel layer, the run_cegar drain idiom: replays resolve in
            // a sequential pre-pass (the lookup hook mutates caller state);
            // workers publish into slots and drain finished candidates to
            // the `completed` hook in strict candidate order, so journals
            // are byte-identical at any job count.
            struct Slot {
                bool replayed = false;
                std::optional<Result<ScenarioRecord>> record;
            };
            std::vector<Slot> slots(layer.size());
            std::vector<std::size_t> pending;
            pending.reserve(layer.size());
            for (std::size_t i = 0; i < layer.size(); ++i) {
                if (options.hooks.lookup) {
                    if (std::optional<ScenarioRecord> replayed =
                            options.hooks.lookup(layer[i].id)) {
                        ++result.replayed;
                        slots[i].replayed = true;
                        slots[i].record = Result<ScenarioRecord>(std::move(*replayed));
                        continue;
                    }
                }
                pending.push_back(i);
            }

            std::mutex drain_mutex;
            std::size_t next_to_drain = 0;
            std::optional<std::string> first_error;
            const auto drain_ready_prefix_locked = [&] {
                while (next_to_drain < slots.size() && !first_error &&
                       slots[next_to_drain].record.has_value()) {
                    Slot& slot = slots[next_to_drain];
                    if (!slot.record->ok()) {
                        first_error = slot.record->error();
                        break;
                    }
                    if (!slot.replayed && options.hooks.completed) {
                        auto appended = options.hooks.completed(slot.record->value());
                        if (!appended.ok()) {
                            first_error = appended.error();
                            break;
                        }
                    }
                    if (!slot.replayed) ++result.evaluated;
                    result.records.push_back(std::move(*slot.record).value());
                    ++next_to_drain;
                }
            };
            {
                std::lock_guard<std::mutex> lock(drain_mutex);
                drain_ready_prefix_locked();
            }
            ThreadPool& pool =
                options.ctx != nullptr ? options.ctx->pool() : local_pool.emplace(jobs);
            pool.run_batch(pending.size(), [&](std::size_t k) {
                const std::size_t index = pending[k];
                auto record = evaluate_one(layer[index]);
                std::lock_guard<std::mutex> lock(drain_mutex);
                slots[index].record = std::move(record);
                drain_ready_prefix_locked();
            });
            std::lock_guard<std::mutex> lock(drain_mutex);
            drain_ready_prefix_locked();
            if (first_error) return Result<FrontierResult>::failure(*first_error);
        }

        // Fold the layer's outcomes into the antichain; layers ascend, so
        // an inserted hazard is minimal by construction (everything it
        // would dominate was already evaluated or pruned).
        for (std::size_t i = layer_start; i < result.records.size(); ++i) {
            const ScenarioRecord& record = result.records[i];
            if (record.outcome == ScenarioOutcome::Confirmed) {
                if (hazardous.insert(record.verdict.mutations)) {
                    result.minimal_hazards.push_back(record.verdict);
                }
                // UNSAT-core seeding: when pruning is licensed, ask the
                // probe solver which sub-scenario of this hazard already
                // forces a violation; a strictly smaller core widens the
                // pruning cone over every later layer. Probes run
                // sequentially here (after the layer barrier) and for
                // replayed records too, so fresh and resumed sweeps prune
                // the same candidates at any job count. Seeded sets are
                // pruning state only — minimal_hazards keeps evaluated
                // verdicts exclusively.
                if (result.pruning) {
                    auto core = epa.hazard_core(
                        frontier_scenario(model, record.verdict.mutations),
                        options.active_mitigations);
                    if (core && core->size() < record.verdict.mutations.size() &&
                        hazardous.insert(*core)) {
                        ++result.core_seeded;
                    }
                }
            } else if (record.outcome == ScenarioOutcome::Undetermined) {
                result.undetermined.push_back(record.verdict);
            }
        }
    }

    span.arg("candidates", static_cast<long long>(result.candidates));
    span.arg("pruned", static_cast<long long>(result.pruned));
    span.arg("core_seeded", static_cast<long long>(result.core_seeded));
    obs::add_counter(options.metrics_sink(), "epa.frontier.core_seeds", result.core_seeded);
    obs::add_counter(options.metrics_sink(), "epa.frontier.candidates", result.candidates);
    obs::add_counter(options.metrics_sink(), "epa.frontier.evaluated", result.evaluated);
    obs::add_counter(options.metrics_sink(), "epa.frontier.pruned", result.pruned);
    obs::add_counter(options.metrics_sink(), "epa.frontier.minimal_hazards",
                     result.minimal_hazards.size());
    return result;
}

}  // namespace cprisk::epa
