#include "epa/epa.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "model/to_asp.hpp"

namespace cprisk::epa {

using asp::Atom;
using asp::Term;
using model::ComponentId;
using security::Mutation;

void MitigationMap::add(const std::string& mitigation_id, const ComponentId& component,
                        const std::string& fault_id) {
    entries_.push_back(Entry{mitigation_id, component, fault_id});
}

MitigationMap MitigationMap::from_attack_matrix(const model::SystemModel& model,
                                                const security::AttackMatrix& matrix) {
    MitigationMap map;
    for (const model::Component& component : model.components()) {
        for (const security::Technique* technique : matrix.techniques_for(component)) {
            if (technique->caused_fault.empty()) continue;
            if (!component.has_fault_mode(technique->caused_fault)) continue;
            for (const security::Mitigation* mitigation : matrix.mitigations_for(*technique)) {
                map.add(mitigation->id, component.id, technique->caused_fault);
            }
        }
    }
    return map;
}

bool ScenarioVerdict::violates(const std::string& requirement_id) const {
    return std::find(violated_requirements.begin(), violated_requirements.end(),
                     requirement_id) != violated_requirements.end();
}

std::string_view to_string(VerdictStatus status) {
    switch (status) {
        case VerdictStatus::Safe: return "safe";
        case VerdictStatus::Hazard: return "hazard";
        case VerdictStatus::Undetermined: return "undetermined";
    }
    return "undetermined";
}

std::string_view to_string(UndeterminedReason reason) {
    switch (reason) {
        case UndeterminedReason::Timeout: return "timeout";
        case UndeterminedReason::DecisionLimit: return "decision_limit";
        case UndeterminedReason::Cancelled: return "cancelled";
        case UndeterminedReason::SolverError: return "solver_error";
    }
    return "solver_error";
}

std::optional<VerdictStatus> parse_verdict_status(std::string_view text) {
    if (text == "safe") return VerdictStatus::Safe;
    if (text == "hazard") return VerdictStatus::Hazard;
    if (text == "undetermined") return VerdictStatus::Undetermined;
    return std::nullopt;
}

std::optional<UndeterminedReason> parse_undetermined_reason(std::string_view text) {
    if (text == "timeout") return UndeterminedReason::Timeout;
    if (text == "decision_limit") return UndeterminedReason::DecisionLimit;
    if (text == "cancelled") return UndeterminedReason::Cancelled;
    if (text == "solver_error") return UndeterminedReason::SolverError;
    return std::nullopt;
}

UndeterminedReason undetermined_reason_from(BudgetReason reason) {
    switch (reason) {
        case BudgetReason::Deadline: return UndeterminedReason::Timeout;
        case BudgetReason::DecisionLimit:
        case BudgetReason::StepLimit: return UndeterminedReason::DecisionLimit;
        case BudgetReason::Cancelled: return UndeterminedReason::Cancelled;
    }
    return UndeterminedReason::SolverError;
}

namespace {

/// Generic propagation semantics shared by both analysis focuses: fault
/// activation per Listing 1, error injection, persistence, and spread along
/// the topology.
constexpr const char* kPropagationRules = R"(
#program base.
suppressed(C, F) :- scenario_fault(C, F), mitigates(M, C, F), active_mitigation(M).
injected_fault(C, F) :- scenario_fault(C, F), not suppressed(C, F).
injected_any(C) :- injected_fault(C, _).
#program always.
active_fault(C, F) :- injected_fault(C, F).
#program initial.
error(C) :- injected_any(C).
#program dynamic.
error(C) :- prev_error(C).
error(C2) :- prev_error(C1), connected(C1, C2).
)";

}  // namespace

Result<ErrorPropagationAnalysis> ErrorPropagationAnalysis::create(
    const model::SystemModel& model, std::vector<Requirement> requirements,
    const MitigationMap& mitigations, const EpaOptions& options) {
    auto valid = model.validate();
    if (!valid.ok()) {
        return Result<ErrorPropagationAnalysis>::failure("EPA: invalid model: " + valid.error());
    }

    ErrorPropagationAnalysis epa;
    epa.model_ = &model;
    epa.options_ = options;

    model::ToAspOptions to_asp_options;
    to_asp_options.include_behaviors = options.focus == AnalysisFocus::Behavioral;
    auto facts = model::to_asp(model, to_asp_options);
    if (!facts.ok()) return Result<ErrorPropagationAnalysis>::failure(facts.error());
    epa.base_program_ = std::move(facts).value();

    auto propagation = asp::parse_program(kPropagationRules);
    require(propagation.ok(), "EPA: internal propagation rules failed to parse: " +
                                  propagation.error());
    epa.base_program_.append(propagation.value());

    // Mitigation suppression facts.
    for (const MitigationMap::Entry& entry : mitigations.entries()) {
        asp::Rule fact;
        fact.head = asp::Head::make_atom(Atom{"mitigates",
                                              {Term::symbol(to_identifier(entry.mitigation_id)),
                                               Term::symbol(entry.component),
                                               Term::symbol(entry.fault_id)}});
        epa.base_program_.add_rule(std::move(fact));
    }

    // Requirements: id normalized to an ASP constant; compiled to
    // violated/1 derivation rules.
    for (Requirement& requirement : requirements) {
        requirement.id = to_identifier(requirement.id);
        asp::ltl::compile_requirement(epa.base_program_, requirement.id, requirement.formula,
                                      options.horizon);
    }
    epa.requirements_ = std::move(requirements);
    epa.mitigations_ = mitigations;

    if (!options.collect_trace) {
        // Projection keeps the solver's answer sets small; with
        // collect_trace every atom stays visible for trace reconstruction.
        epa.base_program_.add_show(asp::Signature{"violated", 1});
        epa.base_program_.add_show(asp::Signature{"error", 1});  // bumped to /2 by unroll
        epa.base_program_.add_show(asp::Signature{"injected_fault", 2});
    }
    return epa;
}

Result<ScenarioVerdict> ErrorPropagationAnalysis::evaluate(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    asp::Program program = base_program_;

    for (const Mutation& mutation : scenario.mutations) {
        if (!model_->has_component(mutation.component)) {
            return Result<ScenarioVerdict>::failure("scenario " + scenario.id +
                                                    ": unknown component '" + mutation.component +
                                                    "'");
        }
        asp::Rule fact;
        fact.head = asp::Head::make_atom(
            Atom{"scenario_fault",
                 {Term::symbol(mutation.component), Term::symbol(mutation.fault_id)}});
        program.add_rule(std::move(fact));
    }
    for (const std::string& mitigation : active_mitigations) {
        asp::Rule fact;
        fact.head = asp::Head::make_atom(
            Atom{"active_mitigation", {Term::symbol(to_identifier(mitigation))}});
        program.add_rule(std::move(fact));
    }

    asp::PipelineOptions pipeline;
    pipeline.horizon = options_.horizon;
    if (options_.max_decisions != 0) pipeline.solve.max_decisions = options_.max_decisions;
    pipeline.solve.budget = options_.budget;
    pipeline.grounder.budget = options_.budget;

    ScenarioVerdict verdict;
    verdict.scenario_id = scenario.id;
    verdict.mutations = scenario.mutations;
    verdict.active_mitigations = active_mitigations;
    verdict.likelihood = scenario.likelihood;

    auto solved = asp::solve_program(program, pipeline);
    if (!solved.ok()) {
        // A grounder/solver error degrades this scenario to Undetermined so
        // one broken solve cannot abort an otherwise exhaustive run; model
        // inconsistencies below stay hard failures.
        verdict.status = VerdictStatus::Undetermined;
        verdict.undetermined_reason = UndeterminedReason::SolverError;
        verdict.undetermined_detail = "scenario " + scenario.id + ": " + solved.error();
        return verdict;
    }
    const asp::SolveResult& result = solved.value();
    verdict.solver_stats = result.stats;
    if (result.complete() && !result.satisfiable) {
        return Result<ScenarioVerdict>::failure("scenario " + scenario.id +
                                                ": inconsistent model (no answer set)");
    }

    // Union over models: over-abstraction may make behaviour
    // non-deterministic; no hazard may be overlooked (paper step 5).
    std::set<std::string> violations;
    std::set<std::pair<int, ComponentId>> propagation;
    std::set<Mutation> injected;
    for (const asp::AnswerSet& model : result.models) {
        for (const Atom& atom : model.with_predicate("violated")) {
            if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
                violations.insert(atom.args[0].name());
            }
        }
        for (const Atom& atom : model.with_predicate("error")) {
            if (atom.args.size() == 2 && atom.args[0].is_symbol() && atom.args[1].is_integer()) {
                propagation.insert({static_cast<int>(atom.args[1].as_int()),
                                    atom.args[0].name()});
            }
        }
        for (const Atom& atom : model.with_predicate("injected_fault")) {
            if (atom.args.size() == 2 && atom.args[0].is_symbol() && atom.args[1].is_symbol()) {
                injected.insert(Mutation{atom.args[0].name(), atom.args[1].name()});
            }
        }
    }
    verdict.violated_requirements.assign(violations.begin(), violations.end());
    verdict.injected.assign(injected.begin(), injected.end());

    if (options_.collect_trace && !result.models.empty()) {
        // Reconstruct the counterexample trace from the first model,
        // dropping internal (double-underscore) predicates.
        asp::ltl::Trace raw = asp::trace_from_answer(result.models.front(), options_.horizon);
        verdict.trace.resize(raw.size());
        for (std::size_t t = 0; t < raw.size(); ++t) {
            for (const Atom& atom : raw[t]) {
                if (atom.predicate.rfind("__", 0) == 0) continue;
                verdict.trace[t].insert(atom);
            }
        }
    }

    std::set<ComponentId> seen_components;
    for (const auto& [time, component] : propagation) {
        if (!seen_components.insert(component).second) continue;
        verdict.propagation.push_back(PropagationStep{time, component});
    }

    // Severity: the highest asset value an error reaches, combined with the
    // local severity of the injected faults.
    qual::Level severity = qual::Level::VeryLow;
    for (const PropagationStep& step : verdict.propagation) {
        if (model_->has_component(step.component)) {
            severity = qual::qmax(severity, model_->component(step.component).asset_value);
        }
    }
    for (const Mutation& mutation : verdict.injected) {
        const model::FaultMode* mode =
            model_->component(mutation.component).find_fault_mode(mutation.fault_id);
        if (mode != nullptr) severity = qual::qmax(severity, mode->severity);
    }
    verdict.severity = severity;

    // An interrupted search is still existentially sound: a violation found
    // in an enumerated model is a real hazard. Only the absence of a
    // violation is inconclusive under a partial enumeration.
    if (result.interrupt && !verdict.any_violation()) {
        verdict.status = VerdictStatus::Undetermined;
        verdict.undetermined_reason = undetermined_reason_from(result.interrupt->reason);
        verdict.undetermined_detail =
            "scenario " + scenario.id + ": " + result.interrupt->to_string();
        return verdict;
    }
    verdict.status = verdict.any_violation() ? VerdictStatus::Hazard : VerdictStatus::Safe;
    return verdict;
}

Result<std::optional<int>> ErrorPropagationAnalysis::min_violation_horizon(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    for (int horizon = 0; horizon <= options_.horizon; ++horizon) {
        EpaOptions shallow = options_;
        shallow.horizon = horizon;
        auto analysis = create(*model_, requirements_, mitigations_, shallow);
        if (!analysis.ok()) return Result<std::optional<int>>::failure(analysis.error());
        auto verdict = analysis.value().evaluate(scenario, active_mitigations);
        if (!verdict.ok()) return Result<std::optional<int>>::failure(verdict.error());
        if (verdict.value().any_violation()) return std::optional<int>(horizon);
        if (verdict.value().undetermined()) {
            // "No violation up to horizon h" would not be proven.
            return Result<std::optional<int>>::failure(verdict.value().undetermined_detail);
        }
    }
    return std::optional<int>();
}

Result<std::vector<ScenarioVerdict>> ErrorPropagationAnalysis::evaluate_all(
    const security::ScenarioSpace& space,
    const std::vector<std::string>& active_mitigations) const {
    std::vector<ScenarioVerdict> verdicts;
    verdicts.reserve(space.size());
    for (const security::AttackScenario& scenario : space.scenarios()) {
        auto verdict = evaluate(scenario, active_mitigations);
        if (!verdict.ok()) return Result<std::vector<ScenarioVerdict>>::failure(verdict.error());
        verdicts.push_back(std::move(verdict).value());
    }
    return verdicts;
}

}  // namespace cprisk::epa
