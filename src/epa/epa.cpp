#include "epa/epa.hpp"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "asp/absint/absint.hpp"
#include "asp/incremental.hpp"
#include "common/fault_injection.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "model/to_asp.hpp"

namespace cprisk::epa {

using asp::Atom;
using asp::Term;
using model::ComponentId;
using security::Mutation;

void MitigationMap::add(const std::string& mitigation_id, const ComponentId& component,
                        const std::string& fault_id) {
    entries_.push_back(Entry{mitigation_id, component, fault_id});
}

MitigationMap MitigationMap::from_attack_matrix(const model::SystemModel& model,
                                                const security::AttackMatrix& matrix) {
    MitigationMap map;
    for (const model::Component& component : model.components()) {
        for (const security::Technique* technique : matrix.techniques_for(component)) {
            if (technique->caused_fault.empty()) continue;
            if (!component.has_fault_mode(technique->caused_fault)) continue;
            for (const security::Mitigation* mitigation : matrix.mitigations_for(*technique)) {
                map.add(mitigation->id, component.id, technique->caused_fault);
            }
        }
    }
    return map;
}

bool ScenarioVerdict::violates(const std::string& requirement_id) const {
    return std::find(violated_requirements.begin(), violated_requirements.end(),
                     requirement_id) != violated_requirements.end();
}

std::string_view to_string(VerdictStatus status) {
    switch (status) {
        case VerdictStatus::Safe: return "safe";
        case VerdictStatus::Hazard: return "hazard";
        case VerdictStatus::Undetermined: return "undetermined";
    }
    return "undetermined";
}

std::string_view to_string(UndeterminedReason reason) {
    switch (reason) {
        case UndeterminedReason::Timeout: return "timeout";
        case UndeterminedReason::DecisionLimit: return "decision_limit";
        case UndeterminedReason::Cancelled: return "cancelled";
        case UndeterminedReason::SolverError: return "solver_error";
    }
    return "solver_error";
}

std::optional<VerdictStatus> parse_verdict_status(std::string_view text) {
    if (text == "safe") return VerdictStatus::Safe;
    if (text == "hazard") return VerdictStatus::Hazard;
    if (text == "undetermined") return VerdictStatus::Undetermined;
    return std::nullopt;
}

std::optional<UndeterminedReason> parse_undetermined_reason(std::string_view text) {
    if (text == "timeout") return UndeterminedReason::Timeout;
    if (text == "decision_limit") return UndeterminedReason::DecisionLimit;
    if (text == "cancelled") return UndeterminedReason::Cancelled;
    if (text == "solver_error") return UndeterminedReason::SolverError;
    return std::nullopt;
}

std::string_view to_string(VerdictProvenance provenance) {
    switch (provenance) {
        case VerdictProvenance::Solver: return "solver";
        case VerdictProvenance::Static: return "static";
    }
    return "solver";
}

std::optional<VerdictProvenance> parse_verdict_provenance(std::string_view text) {
    if (text == "solver") return VerdictProvenance::Solver;
    if (text == "static") return VerdictProvenance::Static;
    return std::nullopt;
}

UndeterminedReason undetermined_reason_from(BudgetReason reason) {
    switch (reason) {
        case BudgetReason::Deadline: return UndeterminedReason::Timeout;
        case BudgetReason::DecisionLimit:
        case BudgetReason::StepLimit: return UndeterminedReason::DecisionLimit;
        case BudgetReason::Cancelled: return UndeterminedReason::Cancelled;
    }
    return UndeterminedReason::SolverError;
}

namespace {

/// Generic propagation semantics shared by both analysis focuses: fault
/// activation per Listing 1, error injection, persistence, and spread along
/// the topology.
constexpr const char* kPropagationRules = R"(
#program base.
suppressed(C, F) :- scenario_fault(C, F), mitigates(M, C, F), active_mitigation(M).
injected_fault(C, F) :- scenario_fault(C, F), not suppressed(C, F).
injected_any(C) :- injected_fault(C, _).
#program always.
active_fault(C, F) :- injected_fault(C, F).
#program initial.
error(C) :- injected_any(C).
#program dynamic.
error(C) :- prev_error(C).
error(C2) :- prev_error(C1), connected(C1, C2).
)";

/// One singleton choice shell `{ atom }.` — leaves `atom` open in the
/// grounded domain so a later solve can pin it via assumptions.
asp::Rule choice_shell(Atom atom) {
    asp::ChoiceElement element;
    element.atom = std::move(atom);
    asp::Rule shell;
    shell.head = asp::Head::make_choice({std::move(element)}, std::nullopt, std::nullopt);
    return shell;
}

}  // namespace

/// Immutable ground-once cache: the base program grounded a single time with
/// the full scenario-fault/mitigation domain left open via choice shells.
/// Built at create(); read-only afterwards, so concurrent evaluate() calls
/// share it without synchronization.
struct GroundedBase {
    asp::GroundProgram program;
    /// Grounded atom id of scenario_fault(c, f) per declared fault mode.
    std::map<Mutation, int> fault_atoms;
    /// Grounded atom id of active_mitigation(m) per known mitigation id
    /// (to_identifier-normalized).
    std::map<std::string, int> mitigation_atoms;
    /// Open (pin-free) ternary analysis of `program` after simplification —
    /// brackets every answer set under every pin configuration. Valid iff
    /// `analysis_ok` (the evaluation neither conflicted nor tripped the
    /// budget at create()).
    asp::absint::Analysis analysis;
    bool analysis_ok = false;
    /// Grounded atom id of the `__hazard_probe` guard: a free choice atom
    /// with one constraint `:- violated(R), __hazard_probe.` per grounded
    /// requirement-violation atom. Every regular path pins it false (the
    /// constraints are then vacuous and verdicts are unchanged); pinning it
    /// true instead asks for a violation-free answer set, so an UNSAT
    /// outcome proves the pinned faults force a hazard and the assumption
    /// core names the faults that matter (hazard_core()). -1 when absent.
    int probe_atom = -1;
    /// Warm CDCL solvers over `program`, one per concurrent worker: the
    /// Clark completion is built once and entailed clauses learned by one
    /// scenario's solve carry over to the next (asp/incremental.hpp).
    /// Internally synchronized, so sharing the const base across threads
    /// stays sound; entailed clauses never change which answer sets exist,
    /// so verdicts stay jobs-invariant even though per-solve search stats
    /// on learning workloads may depend on lease order.
    std::unique_ptr<asp::SolverPool> solver_pool;
};

GroundedBaseCache::GroundedBaseCache() = default;
GroundedBaseCache::~GroundedBaseCache() = default;

std::size_t GroundedBaseCache::entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t GroundedBaseCache::approx_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::shared_ptr<const GroundedBase> GroundedBaseCache::find(const Key& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.first;
}

void GroundedBaseCache::insert(const Key& key, std::shared_ptr<const GroundedBase> base,
                               std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[key];
    if (slot.first != nullptr) return;  // a concurrent create() won the race; keep its entry
    slot = {std::move(base), bytes};
    bytes_ += bytes;
}

namespace {

/// Rough resident-size estimate of a ground-once base, for the daemon's
/// approximate memory cap. Counts the dominant vectors (atoms, rule bodies)
/// at container-overhead granularity; exactness is not the point — the cap
/// only needs a monotone, stable measure of model size.
std::size_t grounded_base_bytes(const GroundedBase& base) {
    std::size_t bytes = base.program.atom_count() * 96;  // interned atom + id-map node
    for (const asp::GroundRule& rule : base.program.rules()) {
        bytes += sizeof(asp::GroundRule);
        bytes += (rule.positive_body.size() + rule.negative_body.size() +
                  rule.choice_heads.size()) *
                 sizeof(int);
        for (const asp::GroundAggregate& aggregate : rule.aggregates) {
            bytes += sizeof(asp::GroundAggregate);
            for (const asp::GroundAggregateElement& element : aggregate.elements) {
                bytes += sizeof(element) + element.tuple.size() +
                         element.condition.size() * sizeof(int);
            }
        }
    }
    bytes += (base.fault_atoms.size() + base.mitigation_atoms.size()) * 96;
    bytes += base.program.atom_count() / 2;  // ternary analysis bit-pair planes
    return bytes;
}

/// Grounds the base + open delta domain once. Returns nullptr when the cache
/// cannot be built (budget trip, injected grounder fault, missing domain
/// atom); callers then use the per-scenario grounding path — building the
/// cache is an optimization, never a correctness requirement.
std::shared_ptr<const GroundedBase> try_ground_base(const model::SystemModel& model,
                                                   const MitigationMap& mitigations,
                                                   const asp::Program& base_program,
                                                   const EpaOptions& options) {
    asp::Program delta;
    std::vector<Mutation> fault_domain;
    for (const model::Component& component : model.components()) {
        for (const model::FaultMode& mode : component.fault_modes) {
            fault_domain.push_back(Mutation{component.id, mode.id});
            delta.add_rule(choice_shell(Atom{
                "scenario_fault", {Term::symbol(component.id), Term::symbol(mode.id)}}));
        }
    }
    std::set<std::string> mitigation_ids;
    for (const MitigationMap::Entry& entry : mitigations.entries()) {
        mitigation_ids.insert(to_identifier(entry.mitigation_id));
    }
    for (const std::string& id : mitigation_ids) {
        delta.add_rule(choice_shell(Atom{"active_mitigation", {Term::symbol(id)}}));
    }

    const asp::ProgramParts parts{&base_program, &delta};
    obs::Span span(options.trace_sink(), "epa.ground_base", "ground");
    asp::GrounderOptions grounder_options;
    grounder_options.budget = options.effective_budget();
    grounder_options.trace = options.trace_sink();
    grounder_options.metrics = options.metrics_sink();
    asp::Program unrolled;
    asp::ProgramParts effective = parts;
    if (base_program.is_temporal() || delta.is_temporal()) {
        asp::UnrollOptions unroll_options;
        unroll_options.horizon = options.horizon;
        auto result = asp::unroll(parts, unroll_options);
        if (!result.ok()) return nullptr;
        unrolled = std::move(result).value();
        effective = {&unrolled};
    }
    auto grounded = asp::ground(effective, grounder_options);
    if (!grounded.ok()) return nullptr;
    obs::add_counter(options.metrics_sink(), "epa.ground_cache.built");

    auto base = std::make_shared<GroundedBase>();
    base->program = std::move(grounded).value();

    // Hazard-probe instrumentation, injected straight into the ground
    // program (after grounding, so temporal unrolling never sees it): a free
    // guard atom plus one constraint per grounded violation atom. Added
    // before the ternary analysis below so the analysis brackets the guarded
    // program it will later be asked to certify slices of.
    base->probe_atom = base->program.intern(Atom{"__hazard_probe", {}});
    {
        asp::GroundRule shell;
        shell.kind = asp::GroundRule::Kind::Choice;
        shell.choice_heads.push_back(base->probe_atom);
        base->program.add_rule(std::move(shell));
    }
    const int atom_count = static_cast<int>(base->program.atom_count());
    for (int id = 0; id < atom_count; ++id) {
        if (base->program.atom(id).predicate != "violated") continue;
        asp::GroundRule guard;
        guard.kind = asp::GroundRule::Kind::Constraint;
        guard.positive_body = {id, base->probe_atom};
        base->program.add_rule(std::move(guard));
    }

    // One-time static simplification: the pin-free ternary analysis brackets
    // every answer set under every later pin configuration, so decided atoms
    // propagate, satisfied rules disappear and bodies shrink once — every
    // subsequent pinned solve works on the smaller program with identical
    // verdicts (differential-tested). Atom ids are never renumbered, so the
    // assumption domain resolved below stays valid.
    asp::absint::AbsintOptions absint_options;
    absint_options.budget = options.effective_budget();
    base->analysis = asp::absint::evaluate(base->program, absint_options);
    if (!base->analysis.conflict && !base->analysis.interrupted) {
        const auto stats = asp::absint::simplify(base->program, base->analysis);
        base->analysis_ok = true;
        obs::add_counter(options.metrics_sink(), "epa.absint.rules_deleted",
                         stats.rules_deleted);
        obs::add_counter(options.metrics_sink(), "epa.absint.literals_dropped",
                         stats.literals_dropped);
        obs::add_counter(options.metrics_sink(), "epa.absint.atoms_decided",
                         stats.atoms_decided);
    }
    for (const Mutation& mutation : fault_domain) {
        const int id = base->program.find(Atom{
            "scenario_fault",
            {Term::symbol(mutation.component), Term::symbol(mutation.fault_id)}});
        if (id < 0) return nullptr;
        base->fault_atoms.emplace(mutation, id);
    }
    for (const std::string& mitigation : mitigation_ids) {
        const int id =
            base->program.find(Atom{"active_mitigation", {Term::symbol(mitigation)}});
        if (id < 0) return nullptr;
        base->mitigation_atoms.emplace(mitigation, id);
    }
    // The pool only records the program's (heap-stable) address; warm
    // solvers are constructed lazily, one per worker that ever leases.
    base->solver_pool = std::make_unique<asp::SolverPool>(base->program);
    return base;
}

}  // namespace

Result<ErrorPropagationAnalysis> ErrorPropagationAnalysis::create(
    const model::SystemModel& model, std::vector<Requirement> requirements,
    const MitigationMap& mitigations, const EpaOptions& options) {
    auto valid = model.validate();
    if (!valid.ok()) {
        return Result<ErrorPropagationAnalysis>::failure("EPA: invalid model: " + valid.error());
    }

    ErrorPropagationAnalysis epa;
    epa.model_ = &model;
    epa.options_ = options;

    model::ToAspOptions to_asp_options;
    to_asp_options.include_behaviors = options.focus == AnalysisFocus::Behavioral;
    auto facts = model::to_asp(model, to_asp_options);
    if (!facts.ok()) return Result<ErrorPropagationAnalysis>::failure(facts.error());
    epa.base_program_ = std::move(facts).value();

    auto propagation = asp::parse_program(kPropagationRules);
    require(propagation.ok(), "EPA: internal propagation rules failed to parse: " +
                                  propagation.error());
    epa.base_program_.append(propagation.value());

    // Mitigation suppression facts.
    for (const MitigationMap::Entry& entry : mitigations.entries()) {
        asp::Rule fact;
        fact.head = asp::Head::make_atom(Atom{"mitigates",
                                              {Term::symbol(to_identifier(entry.mitigation_id)),
                                               Term::symbol(entry.component),
                                               Term::symbol(entry.fault_id)}});
        epa.base_program_.add_rule(std::move(fact));
    }

    // Requirements: id normalized to an ASP constant; compiled to
    // violated/1 derivation rules.
    for (Requirement& requirement : requirements) {
        requirement.id = to_identifier(requirement.id);
        asp::ltl::compile_requirement(epa.base_program_, requirement.id, requirement.formula,
                                      options.horizon);
    }
    epa.requirements_ = std::move(requirements);
    epa.mitigations_ = mitigations;

    if (!options.collect_trace) {
        // Projection keeps the solver's answer sets small; with
        // collect_trace every atom stays visible for trace reconstruction.
        epa.base_program_.add_show(asp::Signature{"violated", 1});
        epa.base_program_.add_show(asp::Signature{"error", 1});  // bumped to /2 by unroll
        epa.base_program_.add_show(asp::Signature{"injected_fault", 2});
    }
    if (options.ground_once) {
        GroundedBaseCache* cache = options.ctx != nullptr ? options.ctx->base_cache : nullptr;
        const GroundedBaseCache::Key key{static_cast<int>(options.focus), options.horizon,
                                         options.collect_trace};
        if (cache != nullptr) {
            epa.grounded_base_ = cache->find(key);
            obs::add_counter(options.metrics_sink(), epa.grounded_base_ != nullptr
                                                         ? "epa.base_cache.hits"
                                                         : "epa.base_cache.misses");
        }
        if (epa.grounded_base_ == nullptr) {
            epa.grounded_base_ =
                try_ground_base(model, epa.mitigations_, epa.base_program_, options);
            // Only fully-built bases are shared: a base degraded by a budget
            // trip or injected fault at create() stays request-local, so one
            // starved request cannot poison the warm cache for its model.
            if (cache != nullptr && epa.grounded_base_ != nullptr &&
                epa.grounded_base_->analysis_ok) {
                cache->insert(key, epa.grounded_base_,
                              grounded_base_bytes(*epa.grounded_base_));
            }
        }
    }
    return epa;
}

std::optional<std::vector<std::pair<int, bool>>> ErrorPropagationAnalysis::cached_assumptions(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    if (grounded_base_ == nullptr) return std::nullopt;
    const GroundedBase& base = *grounded_base_;
    const std::set<Mutation> wanted(scenario.mutations.begin(), scenario.mutations.end());
    for (const Mutation& mutation : scenario.mutations) {
        if (base.fault_atoms.find(mutation) == base.fault_atoms.end()) return std::nullopt;
    }
    std::set<std::string> active_ids;
    for (const std::string& mitigation : active_mitigations) {
        std::string id = to_identifier(mitigation);
        if (base.mitigation_atoms.find(id) == base.mitigation_atoms.end()) return std::nullopt;
        active_ids.insert(std::move(id));
    }
    // Pin the *entire* delta domain: atoms of this scenario true, everything
    // else false, so the projected answer sets match the fact-based path
    // exactly.
    std::vector<std::pair<int, bool>> assumptions;
    assumptions.reserve(base.fault_atoms.size() + base.mitigation_atoms.size() + 1);
    for (const auto& [mutation, atom] : base.fault_atoms) {
        assumptions.emplace_back(atom, wanted.count(mutation) > 0);
    }
    for (const auto& [id, atom] : base.mitigation_atoms) {
        assumptions.emplace_back(atom, active_ids.count(id) > 0);
    }
    // The hazard probe stays off on the regular path: its guard constraints
    // are vacuous and the answer sets match the fact-based path exactly.
    // hazard_core() flips this one pin to true.
    if (base.probe_atom >= 0) assumptions.emplace_back(base.probe_atom, false);
    return assumptions;
}

Result<ScenarioVerdict> ErrorPropagationAnalysis::evaluate(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    auto verdict = evaluate_once(scenario, active_mitigations);
    const RetryPolicy* policy = options_.ctx != nullptr ? &options_.ctx->retry : nullptr;
    if (policy == nullptr || !policy->enabled()) return verdict;

    // Retry only the transient class: solver_error covers I/O-level faults
    // (the fault-injection seams model them) that a fresh attempt can clear.
    // Hard failures (unknown component, inconsistent model) and budget trips
    // are permanent. The jitter salt is the scenario id, so concurrent
    // retries decorrelate while the schedule stays reproducible.
    const std::uint64_t salt = fnv1a64(scenario.id);
    bool retried = false;
    for (std::size_t attempt = 0; attempt < policy->max_retries; ++attempt) {
        if (!verdict.ok()) return verdict;
        const ScenarioVerdict& v = verdict.value();
        if (v.status != VerdictStatus::Undetermined ||
            v.undetermined_reason != UndeterminedReason::SolverError) {
            return verdict;
        }
        Budget* budget = options_.effective_budget();
        if (budget != nullptr && budget->tripped()) return verdict;
        std::this_thread::sleep_for(policy->backoff(attempt, salt));
        obs::add_counter(options_.metrics_sink(), "epa.retry.attempts");
        retried = true;
        verdict = evaluate_once(scenario, active_mitigations);
    }
    if (retried && verdict.ok() &&
        verdict.value().status == VerdictStatus::Undetermined &&
        verdict.value().undetermined_reason == UndeterminedReason::SolverError) {
        obs::add_counter(options_.metrics_sink(), "epa.retry.exhausted");
    }
    return verdict;
}

Result<ScenarioVerdict> ErrorPropagationAnalysis::evaluate_once(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    for (const Mutation& mutation : scenario.mutations) {
        if (!model_->has_component(mutation.component)) {
            return Result<ScenarioVerdict>::failure("scenario " + scenario.id +
                                                    ": unknown component '" + mutation.component +
                                                    "'");
        }
    }

    ScenarioVerdict verdict;
    verdict.scenario_id = scenario.id;
    verdict.mutations = scenario.mutations;
    verdict.active_mitigations = active_mitigations;
    verdict.likelihood = scenario.likelihood;

    // Cooperative cancellation point: a tripped budget (cancel, deadline,
    // quota) stops new evaluations before any grounding or solving. Without
    // this, scenarios a propagation-only solve can decide would still
    // complete after cancellation — with solver provenance, breaking
    // resume byte-identity — because the solver only polls the budget at
    // decision points.
    if (Budget* budget = options_.effective_budget(); budget != nullptr) {
        if (const auto trip = budget->check()) {
            verdict.status = VerdictStatus::Undetermined;
            verdict.undetermined_reason = undetermined_reason_from(trip->reason);
            verdict.undetermined_detail =
                "scenario " + scenario.id + ": not started: " + trip->to_string();
            obs::add_counter(options_.metrics_sink(), "epa.scenarios.undetermined");
            return verdict;
        }
    }

    // Scenario-scoped span: nested asp.ground/asp.solve spans inherit this
    // scenario id through the thread-local scope stack, so the exported
    // trace groups per scenario deterministically at any --jobs.
    obs::Span span(options_.trace_sink(), "epa.evaluate", "scenario", scenario.id);

    if (auto assumptions = cached_assumptions(scenario, active_mitigations)) {
        // Cached path: no per-scenario grounding at all — one solve over the
        // shared ground program with the delta domain pinned.
        obs::add_counter(options_.metrics_sink(), "epa.ground_cache.hits");

        if (options_.static_prefilter && grounded_base_->analysis_ok &&
            !fault::should_fail("epa.absint.prefilter")) {
            // An injected prefilter fault degrades to the DPLL path below —
            // the verdict is identical, only provenance changes.
            // Static prefilter: rerun the cheap ternary propagation with the
            // scenario's assumptions pinned. When the fixpoint certifies a
            // unique answer set, the verdict is emitted without any DPLL
            // search — byte-identical to what the solver would report.
            obs::Span prefilter_span(options_.trace_sink(), "epa.absint_prefilter", "scenario",
                                     scenario.id);
            asp::absint::AbsintOptions absint_options;
            absint_options.pins = &*assumptions;
            absint_options.budget = options_.effective_budget();
            const auto analysis =
                asp::absint::evaluate(grounded_base_->program, absint_options);
            if (analysis.certified) {
                asp::SolveResult synthesized;
                synthesized.satisfiable = true;
                asp::AnswerSet model;
                model.atoms = asp::absint::certified_model(grounded_base_->program, analysis);
                model.cost = asp::absint::certified_cost(grounded_base_->program, analysis);
                synthesized.best_cost = model.cost;
                synthesized.models.push_back(std::move(model));
                verdict.provenance = VerdictProvenance::Static;
                auto finished = finish_verdict(std::move(verdict), std::move(synthesized));
                if (finished.ok()) {
                    obs::add_counter(options_.metrics_sink(),
                                     finished.value().status == VerdictStatus::Hazard
                                         ? "epa.absint.static_hazard"
                                         : "epa.absint.static_safe");
                }
                return finished;
            }
            obs::add_counter(options_.metrics_sink(), "epa.absint.static_unknown");
            // A trip that lands mid-prefilter aborts the fixpoint before it
            // can certify. Falling through to DPLL here would complete the
            // scenario with solver provenance — a timing artifact a clean
            // rerun would not reproduce — so the scenario degrades to
            // Undetermined and a resume re-evaluates it.
            if (Budget* budget = options_.effective_budget(); budget != nullptr) {
                if (const auto trip = budget->tripped()) {
                    verdict.status = VerdictStatus::Undetermined;
                    verdict.undetermined_reason = undetermined_reason_from(trip->reason);
                    verdict.undetermined_detail =
                        "scenario " + scenario.id + ": prefilter aborted: " + trip->to_string();
                    obs::add_counter(options_.metrics_sink(), "epa.scenarios.undetermined");
                    return verdict;
                }
            }
        }

        asp::SolveOptions solve_options;
        solve_options.engine = options_.solver;
        if (options_.max_decisions != 0) solve_options.max_decisions = options_.max_decisions;
        solve_options.budget = options_.effective_budget();
        solve_options.trace = options_.trace_sink();
        solve_options.metrics = options_.metrics_sink();
        solve_options.assumptions = std::move(*assumptions);
        // Warm path: lease a persistent solver bound to the shared base, so
        // the completion is built once and entailed clauses learned by
        // earlier scenarios short-circuit this one's search.
        std::optional<asp::SolverPool::Lease> lease;
        if (options_.solver == asp::SolverEngine::Cdcl &&
            grounded_base_->solver_pool != nullptr) {
            lease.emplace(grounded_base_->solver_pool->acquire());
            solve_options.incremental = lease->solver();
        }
        return finish_verdict(std::move(verdict),
                              asp::solve(grounded_base_->program, solve_options));
    }
    obs::add_counter(options_.metrics_sink(), "epa.ground_cache.misses");

    // Full-reground path: the shared base program rides along as an
    // immutable part; only the tiny delta (scenario facts) is built here.
    asp::Program delta;
    for (const Mutation& mutation : scenario.mutations) {
        asp::Rule fact;
        fact.head = asp::Head::make_atom(
            Atom{"scenario_fault",
                 {Term::symbol(mutation.component), Term::symbol(mutation.fault_id)}});
        delta.add_rule(std::move(fact));
    }
    for (const std::string& mitigation : active_mitigations) {
        asp::Rule fact;
        fact.head = asp::Head::make_atom(
            Atom{"active_mitigation", {Term::symbol(to_identifier(mitigation))}});
        delta.add_rule(std::move(fact));
    }

    asp::PipelineOptions pipeline;
    pipeline.horizon = options_.horizon;
    pipeline.solve.engine = options_.solver;
    if (options_.max_decisions != 0) pipeline.solve.max_decisions = options_.max_decisions;
    pipeline.solve.budget = options_.effective_budget();
    pipeline.solve.trace = options_.trace_sink();
    pipeline.solve.metrics = options_.metrics_sink();
    pipeline.grounder.budget = options_.effective_budget();
    pipeline.grounder.trace = options_.trace_sink();
    pipeline.grounder.metrics = options_.metrics_sink();
    return finish_verdict(std::move(verdict),
                          asp::solve_program(asp::ProgramParts{&base_program_, &delta},
                                             pipeline));
}

Result<ScenarioVerdict> ErrorPropagationAnalysis::finish_verdict(
    ScenarioVerdict verdict, const Result<asp::SolveResult>& solved) const {
    const std::string& scenario_id = verdict.scenario_id;
    if (!solved.ok()) {
        // A grounder/solver error degrades this scenario to Undetermined so
        // one broken solve cannot abort an otherwise exhaustive run; model
        // inconsistencies below stay hard failures.
        verdict.status = VerdictStatus::Undetermined;
        verdict.undetermined_reason = UndeterminedReason::SolverError;
        verdict.undetermined_detail = "scenario " + scenario_id + ": " + solved.error();
        obs::add_counter(options_.metrics_sink(), "epa.scenarios.undetermined");
        return verdict;
    }
    const asp::SolveResult& result = solved.value();
    verdict.solver_stats = result.stats;
    if (result.complete() && !result.satisfiable) {
        return Result<ScenarioVerdict>::failure("scenario " + scenario_id +
                                                ": inconsistent model (no answer set)");
    }

    // Union over models: over-abstraction may make behaviour
    // non-deterministic; no hazard may be overlooked (paper step 5).
    std::set<std::string> violations;
    std::set<std::pair<int, ComponentId>> propagation;
    std::set<Mutation> injected;
    for (const asp::AnswerSet& model : result.models) {
        for (const Atom& atom : model.with_predicate("violated")) {
            if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
                violations.insert(atom.args[0].name());
            }
        }
        for (const Atom& atom : model.with_predicate("error")) {
            if (atom.args.size() == 2 && atom.args[0].is_symbol() && atom.args[1].is_integer()) {
                propagation.insert({static_cast<int>(atom.args[1].as_int()),
                                    atom.args[0].name()});
            }
        }
        for (const Atom& atom : model.with_predicate("injected_fault")) {
            if (atom.args.size() == 2 && atom.args[0].is_symbol() && atom.args[1].is_symbol()) {
                injected.insert(Mutation{atom.args[0].name(), atom.args[1].name()});
            }
        }
    }
    verdict.violated_requirements.assign(violations.begin(), violations.end());
    verdict.injected.assign(injected.begin(), injected.end());

    if (options_.collect_trace && !result.models.empty()) {
        // Reconstruct the counterexample trace from the first model,
        // dropping internal (double-underscore) predicates.
        asp::ltl::Trace raw = asp::trace_from_answer(result.models.front(), options_.horizon);
        verdict.trace.resize(raw.size());
        for (std::size_t t = 0; t < raw.size(); ++t) {
            for (const Atom& atom : raw[t]) {
                if (atom.predicate.rfind("__", 0) == 0) continue;
                verdict.trace[t].insert(atom);
            }
        }
    }

    std::set<ComponentId> seen_components;
    for (const auto& [time, component] : propagation) {
        if (!seen_components.insert(component).second) continue;
        verdict.propagation.push_back(PropagationStep{time, component});
    }

    // Severity: the highest asset value an error reaches, combined with the
    // local severity of the injected faults.
    qual::Level severity = qual::Level::VeryLow;
    for (const PropagationStep& step : verdict.propagation) {
        if (model_->has_component(step.component)) {
            severity = qual::qmax(severity, model_->component(step.component).asset_value);
        }
    }
    for (const Mutation& mutation : verdict.injected) {
        const model::FaultMode* mode =
            model_->component(mutation.component).find_fault_mode(mutation.fault_id);
        if (mode != nullptr) severity = qual::qmax(severity, mode->severity);
    }
    verdict.severity = severity;

    // An interrupted search is still existentially sound: a violation found
    // in an enumerated model is a real hazard. Only the absence of a
    // violation is inconclusive under a partial enumeration.
    obs::observe(options_.metrics_sink(), "epa.solve.decisions", verdict.solver_stats.decisions);
    if (result.interrupt && !verdict.any_violation()) {
        verdict.status = VerdictStatus::Undetermined;
        verdict.undetermined_reason = undetermined_reason_from(result.interrupt->reason);
        verdict.undetermined_detail =
            "scenario " + scenario_id + ": " + result.interrupt->to_string();
        obs::add_counter(options_.metrics_sink(), "epa.scenarios.undetermined");
        return verdict;
    }
    verdict.status = verdict.any_violation() ? VerdictStatus::Hazard : VerdictStatus::Safe;
    obs::add_counter(options_.metrics_sink(), verdict.status == VerdictStatus::Hazard
                                                  ? "epa.scenarios.hazard"
                                                  : "epa.scenarios.safe");
    return verdict;
}

std::vector<std::string> ErrorPropagationAnalysis::statically_reachable_violations() const {
    std::vector<std::string> reachable;
    if (grounded_base_ == nullptr || !grounded_base_->analysis_ok) {
        // No cache or no trustworthy analysis: claim everything reachable so
        // the lint stays silent rather than report false positives.
        for (const Requirement& requirement : requirements_) reachable.push_back(requirement.id);
        return reachable;
    }
    const GroundedBase& base = *grounded_base_;
    std::set<std::string> possible;
    for (int id = 0; id < static_cast<int>(base.program.atom_count()); ++id) {
        if (!base.analysis.possible(id)) continue;
        const Atom& atom = base.program.atom(id);
        if (atom.predicate != "violated") continue;
        if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
            possible.insert(atom.args[0].name());
        }
    }
    for (const Requirement& requirement : requirements_) {
        if (possible.count(requirement.id) > 0) reachable.push_back(requirement.id);
    }
    return reachable;
}

std::optional<asp::polarity::MonotonicityCertificate>
ErrorPropagationAnalysis::certify_monotonicity(
    const std::vector<std::string>& active_mitigations) const {
    if (grounded_base_ == nullptr || !grounded_base_->analysis_ok) return std::nullopt;
    const GroundedBase& base = *grounded_base_;
    std::set<std::string> active_ids;
    for (const std::string& mitigation : active_mitigations) {
        std::string id = to_identifier(mitigation);
        if (base.mitigation_atoms.find(id) == base.mitigation_atoms.end()) return std::nullopt;
        active_ids.insert(std::move(id));
    }
    // Pin only the mitigation shells — the fault domain stays open. The
    // pinned ternary analysis then decides everything the fixed mitigation
    // set determines; decided atoms are constants to the sign propagation,
    // so e.g. the built-in `injected_fault :- scenario_fault, not
    // suppressed` odd path disappears when no mitigation covers the fault.
    std::vector<std::pair<int, bool>> pins;
    pins.reserve(base.mitigation_atoms.size() + 1);
    for (const auto& [id, atom] : base.mitigation_atoms) {
        pins.emplace_back(atom, active_ids.count(id) > 0);
    }
    // Pin the hazard probe off, as every scenario solve does: a decided
    // probe is a constant to the sign propagation, so its guard constraints
    // cannot introduce a spurious negative violated->probe path and flip
    // the certificate to mixed.
    if (base.probe_atom >= 0) pins.emplace_back(base.probe_atom, false);
    asp::absint::AbsintOptions absint_options;
    absint_options.pins = &pins;
    absint_options.budget = options_.effective_budget();
    const asp::absint::Analysis analysis = asp::absint::evaluate(base.program, absint_options);
    if (analysis.conflict || analysis.interrupted) return std::nullopt;

    std::vector<int> inputs;
    inputs.reserve(base.fault_atoms.size());
    for (const auto& [mutation, atom] : base.fault_atoms) inputs.push_back(atom);
    std::vector<int> hazards;
    for (int id = 0; id < static_cast<int>(base.program.atom_count()); ++id) {
        if (base.program.atom(id).predicate == "violated") hazards.push_back(id);
    }
    asp::polarity::PolarityOptions polarity_options;
    polarity_options.analysis = &analysis;
    return asp::polarity::certify_monotone(base.program, inputs, hazards, polarity_options);
}

std::optional<std::vector<Mutation>> ErrorPropagationAnalysis::hazard_core(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    if (grounded_base_ == nullptr || grounded_base_->probe_atom < 0) return std::nullopt;
    auto assumptions = cached_assumptions(scenario, active_mitigations);
    if (!assumptions) return std::nullopt;
    // Flip the probe on: now only violation-free answer sets remain, so an
    // UNSAT outcome proves every answer set under these pins violates some
    // requirement — the final-conflict assumption core then names the pins
    // the refutation actually rests on.
    for (auto& [atom, value] : *assumptions) {
        if (atom == grounded_base_->probe_atom) value = true;
    }
    obs::Span span(options_.trace_sink(), "epa.hazard_core", "scenario", scenario.id);
    asp::SolveOptions solve_options;
    // Always a cold CDCL solve: cores require analyzeFinal (Dpll has none),
    // and bypassing the warm pool keeps probe-side learning out of the
    // scenario solvers, whose per-solve stats land in journals and reports.
    solve_options.engine = asp::SolverEngine::Cdcl;
    solve_options.max_models = 1;
    solve_options.optimize = false;
    if (options_.max_decisions != 0) solve_options.max_decisions = options_.max_decisions;
    solve_options.budget = options_.effective_budget();
    solve_options.trace = options_.trace_sink();
    solve_options.metrics = options_.metrics_sink();
    solve_options.assumptions = std::move(*assumptions);
    auto solved = asp::solve(grounded_base_->program, solve_options);
    if (!solved.ok()) return std::nullopt;
    const asp::SolveResult& result = solved.value();
    if (!result.complete() || result.satisfiable || !result.assumption_core) {
        return std::nullopt;
    }
    // Keep only the true-pinned fault atoms. Any pin set extending the core
    // is UNSAT, and the sub-scenario injecting exactly these faults (all
    // other domain atoms pinned false) is such an extension — so it is
    // hazardous on its own.
    std::vector<Mutation> core;
    for (const auto& [atom, value] : *result.assumption_core) {
        if (!value) continue;
        for (const auto& [mutation, id] : grounded_base_->fault_atoms) {
            if (id == atom) {
                core.push_back(mutation);
                break;
            }
        }
    }
    std::sort(core.begin(), core.end());
    obs::add_counter(options_.metrics_sink(), "epa.hazard_core.extracted");
    return core;
}

Result<std::optional<int>> ErrorPropagationAnalysis::min_violation_horizon(
    const security::AttackScenario& scenario,
    const std::vector<std::string>& active_mitigations) const {
    for (int horizon = 0; horizon <= options_.horizon; ++horizon) {
        EpaOptions shallow = options_;
        shallow.horizon = horizon;
        // One scenario per horizon: building the ground-once cache would
        // cost more than the single evaluation it serves.
        shallow.ground_once = false;
        auto analysis = create(*model_, requirements_, mitigations_, shallow);
        if (!analysis.ok()) return Result<std::optional<int>>::failure(analysis.error());
        auto verdict = analysis.value().evaluate(scenario, active_mitigations);
        if (!verdict.ok()) return Result<std::optional<int>>::failure(verdict.error());
        if (verdict.value().any_violation()) return std::optional<int>(horizon);
        if (verdict.value().undetermined()) {
            // "No violation up to horizon h" would not be proven.
            return Result<std::optional<int>>::failure(verdict.value().undetermined_detail);
        }
    }
    return std::optional<int>();
}

Result<std::vector<ScenarioVerdict>> ErrorPropagationAnalysis::evaluate_all(
    const security::ScenarioSpace& space,
    const std::vector<std::string>& active_mitigations) const {
    const std::vector<security::AttackScenario>& scenarios = space.scenarios();
    const std::size_t jobs = std::min(ThreadPool::resolve(options_.effective_jobs()),
                                      std::max<std::size_t>(scenarios.size(), 1));
    obs::set_gauge(options_.metrics_sink(), "epa.pool.batch",
                   static_cast<long long>(scenarios.size()));
    if (jobs <= 1) {
        std::vector<ScenarioVerdict> verdicts;
        verdicts.reserve(scenarios.size());
        for (const security::AttackScenario& scenario : scenarios) {
            auto verdict = evaluate(scenario, active_mitigations);
            if (!verdict.ok()) {
                return Result<std::vector<ScenarioVerdict>>::failure(verdict.error());
            }
            verdicts.push_back(std::move(verdict).value());
        }
        return verdicts;
    }

    // Parallel sweep: workers fill slots indexed by scenario, the merge
    // walks them in scenario order — results are independent of the job
    // count and of completion order (docs/performance.md). With a RunContext
    // the run's shared pool is reused; the legacy shim path builds its own.
    std::optional<ThreadPool> local_pool;
    ThreadPool& pool =
        options_.ctx != nullptr ? options_.ctx->pool() : local_pool.emplace(jobs);
    obs::set_gauge(options_.metrics_sink(), "epa.pool.lanes",
                   static_cast<long long>(pool.jobs()));
    std::vector<std::optional<Result<ScenarioVerdict>>> slots(scenarios.size());
    pool.run_batch(scenarios.size(), [&](std::size_t index) {
        slots[index] = evaluate(scenarios[index], active_mitigations);
    });
    std::vector<ScenarioVerdict> verdicts;
    verdicts.reserve(scenarios.size());
    for (std::optional<Result<ScenarioVerdict>>& slot : slots) {
        if (!slot->ok()) return Result<std::vector<ScenarioVerdict>>::failure(slot->error());
        verdicts.push_back(std::move(*slot).value());
    }
    return verdicts;
}

}  // namespace cprisk::epa
