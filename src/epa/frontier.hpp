// cprisk/epa/frontier.hpp
//
// Exhaustive hazard frontier (paper step 4 taken literally): a
// cardinality-layered sweep over the 2^n fault-subset lattice that reports
// the *antichain of minimal hazardous scenarios* — the minimal-cut-set
// vocabulary of classical FTA, computed on the behavioural EPA instead of
// a hand-built tree.
//
// When the polarity certifier proves the hazard verdicts monotone
// non-decreasing in fault-set inclusion (epa::certify_monotonicity,
// asp/polarity.hpp), every superset of a known-hazardous set is hazardous
// by the certificate and is pruned without a solve; the lattice collapses
// to the frontier around the antichain. On a mixed-polarity certificate
// (or no ground-once cache) the sweep degrades to sound per-layer
// enumeration without superset pruning — same verdicts, every candidate
// solved — and the report's Completeness section says so.
//
// Layers run through the existing machinery: the GroundedBase cache pins
// each subset via assumptions, the absint prefilter decides statically
// certifiable candidates without a DPLL search, and the layer's candidates
// fan out over the RunContext's work-stealing pool. Finished candidates
// drain to the journal hooks in strict candidate order (the run_cegar
// idiom), so --exhaustive journals resume byte-identically at any job
// count. See docs/exhaustive-search.md.
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "hierarchy/cegar.hpp"
#include "obs/run_context.hpp"
#include "risk/prior.hpp"

namespace cprisk::epa {

struct FrontierOptions {
    /// Largest fault-subset cardinality to enumerate; 0 = the full lattice
    /// (every layer up to the universe size).
    std::size_t max_card = 0;
    std::vector<std::string> active_mitigations;
    /// Attack-reachability filter (analysis/taint.hpp): when set, fault
    /// modes on components outside the set are dropped from the universe
    /// and counted in FrontierResult::skipped_faults. Borrowed; may be
    /// null (every declared fault mode is enumerated).
    const std::set<model::ComponentId>* component_filter = nullptr;
    /// Checkpoint/resume seams, the CEGAR contract: `lookup` replays a
    /// journaled record instead of evaluating, `completed` receives fresh
    /// records in strict candidate order.
    hierarchy::CegarHooks hooks;
    /// Evaluation order within each cardinality layer (risk/prior.hpp):
    /// under PriorityPolicy::ExpectedRisk the layer's candidates are sorted
    /// by descending expected risk (ties by ascending id) before
    /// evaluation, so a deadline interruption decides the highest-risk
    /// candidates first. Layers still ascend by cardinality — minimality
    /// of the antichain requires it. Borrowed; null = enumeration order.
    const risk::ScenarioPriority* priority = nullptr;
    /// Unified run state (budget, pool, trace, metrics); borrowed.
    RunContext* ctx = nullptr;

    std::size_t effective_jobs() const { return ctx != nullptr ? ctx->jobs : 1; }
    obs::TraceSink* trace_sink() const { return ctx != nullptr ? ctx->trace : nullptr; }
    obs::MetricsRegistry* metrics_sink() const { return ctx != nullptr ? ctx->metrics : nullptr; }
};

struct FrontierResult {
    /// The monotonicity certificate, when the ground-once cache and its
    /// seeding analysis were available (nullopt = no claim, degraded sweep).
    std::optional<asp::polarity::MonotonicityCertificate> certificate;
    /// True iff the certificate proved monotonicity — supersets of
    /// hazardous sets were pruned instead of solved.
    bool pruning = false;

    std::size_t universe_size = 0;   ///< fault modes enumerated
    std::size_t skipped_faults = 0;  ///< dropped by the component filter
    std::size_t max_card = 0;        ///< effective layer bound
    std::size_t candidates = 0;      ///< subsets considered (incl. pruned)
    std::size_t evaluated = 0;       ///< fresh epa.evaluate() calls
    std::size_t replayed = 0;        ///< records replayed from the journal
    std::size_t pruned = 0;          ///< superset-pruned without a solve
    /// Strictly-smaller UNSAT cores of confirmed hazards seeded into the
    /// pruning antichain (epa::hazard_core; only under a monotone
    /// certificate). Seeds widen the pruning cone but are never reported as
    /// minimal_hazards themselves — those stay evaluated verdicts.
    std::size_t core_seeded = 0;

    /// Minimal hazardous fault sets — an antichain, in layer order. With
    /// pruning these are exactly the sets evaluated Hazard; without, the
    /// non-minimal hazards are evaluated too but absorbed here.
    std::vector<ScenarioVerdict> minimal_hazards;
    std::vector<ScenarioVerdict> undetermined;
    /// Every evaluated or replayed candidate in candidate order (the
    /// journal mirror).
    std::vector<hierarchy::ScenarioRecord> records;
};

/// Deterministic journal id of a fault subset: "exh:" + mutations joined
/// with '+' in sorted order; "exh:none" for the empty baseline set.
std::string frontier_scenario_id(const std::vector<security::Mutation>& subset);

/// The scenario the frontier evaluates for `subset` (sorted): deterministic
/// id, FaultCombination origin, combined fault-mode likelihood. Exposed so
/// downstream phases (mitigation planning) can rebuild the scenario a
/// frontier verdict came from.
security::AttackScenario frontier_scenario(const model::SystemModel& model,
                                           std::vector<security::Mutation> subset);

/// Runs the layered sweep over `epa` (which supplies the model, the
/// requirements, and the ground-once cache). Fails only on hard errors
/// (inconsistent model, journal append failure); budget exhaustion
/// degrades candidates to Undetermined verdicts instead.
Result<FrontierResult> run_frontier(const ErrorPropagationAnalysis& epa,
                                    const FrontierOptions& options = {});

}  // namespace cprisk::epa
