#include "epa/requirement.hpp"

namespace cprisk::epa {

using asp::Atom;
using asp::Term;
using asp::ltl::Formula;

Requirement Requirement::never(std::string id, std::string description, Atom bad_state) {
    Requirement r;
    r.id = std::move(id);
    r.description = std::move(description);
    r.formula = Formula::always(Formula::negate(Formula::atom(std::move(bad_state))));
    return r;
}

Requirement Requirement::responds(std::string id, std::string description, Atom trigger,
                                  Atom response) {
    Requirement r;
    r.id = std::move(id);
    r.description = std::move(description);
    r.formula = Formula::always(Formula::implies(
        Formula::atom(std::move(trigger)),
        Formula::eventually(Formula::atom(std::move(response)))));
    return r;
}

Requirement Requirement::no_error_reaches(const model::ComponentId& component) {
    return never("protect_" + component, "errors must not reach " + component,
                 Atom{"error", {Term::symbol(component)}});
}

}  // namespace cprisk::epa
