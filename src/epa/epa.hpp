// cprisk/epa/epa.hpp
//
// Qualitative error propagation analysis (the paper's embedded EPA core,
// ref [4]): assess the system-level impact of local faults/attacks by
// exhaustive reasoning over the merged model.
//
// For each scenario (a set of candidate mutations) the engine:
//  1. translates the model to ASP facts (model/to_asp.hpp);
//  2. adds the fault-activation rule of Listing 1 (a scenario fault is
//     injected unless an active mitigation suppresses it);
//  3. adds propagation semantics — generic topology rules (errors persist
//     and flow along `connected/2`) and/or the per-component qualitative
//     behaviour fragments (detailed focus, Fig. 3);
//  4. compiles each requirement's LTLf formula to `violated/1` rules;
//  5. solves and reports violations, the propagation path and impact
//     severity.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "asp/asp.hpp"
#include "asp/polarity.hpp"
#include "common/budget.hpp"
#include "epa/requirement.hpp"
#include "obs/run_context.hpp"
#include "model/system_model.hpp"
#include "security/attack_matrix.hpp"
#include "security/scenario.hpp"

namespace cprisk::epa {

/// Hierarchical evaluation focus (paper §VI, Fig. 3).
enum class AnalysisFocus : std::uint8_t {
    Topology,    ///< focus 1: main assets, generic propagation only
    Behavioral,  ///< focus 2: detailed propagation via behaviour models
};

/// Maps mitigations to the (component, fault) pairs they suppress.
/// Derivable from an AttackMatrix (techniques blocked by a mitigation no
/// longer activate their fault) or hand-authored.
class MitigationMap {
public:
    void add(const std::string& mitigation_id, const model::ComponentId& component,
             const std::string& fault_id);

    /// Derives suppressions from `matrix` over `model`: for each technique
    /// and each component it applies to, every mitigation of the technique
    /// suppresses the technique's caused fault on that component.
    static MitigationMap from_attack_matrix(const model::SystemModel& model,
                                            const security::AttackMatrix& matrix);

    struct Entry {
        std::string mitigation_id;
        model::ComponentId component;
        std::string fault_id;
    };
    const std::vector<Entry>& entries() const { return entries_; }

private:
    std::vector<Entry> entries_;
};

/// One step of an extracted propagation path.
struct PropagationStep {
    int time = 0;
    model::ComponentId component;
};

/// Outcome class of one scenario evaluation. `Hazard` is existentially sound
/// even under an interrupted search (a violating trajectory was exhibited);
/// `Safe` claims exhaustiveness and is only issued by a complete solve;
/// `Undetermined` records that the engine ran out of resources (or hit a
/// solver error) before either could be established.
enum class VerdictStatus : std::uint8_t { Safe, Hazard, Undetermined };

/// Why a scenario ended Undetermined.
enum class UndeterminedReason : std::uint8_t {
    Timeout,        ///< wall-clock deadline exceeded
    DecisionLimit,  ///< decision/step quota exhausted
    Cancelled,      ///< external cancellation
    SolverError,    ///< grounder/solver failed (e.g. injected fault)
};

/// How a verdict was established. `Static` verdicts were decided by the
/// ternary abstract interpreter (asp/absint) certifying the unique answer
/// set without running the DPLL search; they are byte-identical to the
/// verdict the solver would have produced (docs/static-analysis.md).
enum class VerdictProvenance : std::uint8_t { Solver, Static };

std::string_view to_string(VerdictStatus status);
std::string_view to_string(UndeterminedReason reason);
std::string_view to_string(VerdictProvenance provenance);
std::optional<VerdictStatus> parse_verdict_status(std::string_view text);
std::optional<UndeterminedReason> parse_undetermined_reason(std::string_view text);
std::optional<VerdictProvenance> parse_verdict_provenance(std::string_view text);
UndeterminedReason undetermined_reason_from(BudgetReason reason);

/// Verdict for one scenario.
struct ScenarioVerdict {
    std::string scenario_id;
    std::vector<security::Mutation> mutations;
    std::vector<std::string> active_mitigations;
    std::vector<std::string> violated_requirements;  ///< requirement ids, sorted
    std::vector<security::Mutation> injected;  ///< mutations actually activated
    std::vector<PropagationStep> propagation;  ///< error spread over time
    qual::Level severity = qual::Level::VeryLow;    ///< impact (max reached asset value)
    qual::Level likelihood = qual::Level::VeryLow;  ///< scenario likelihood
    /// Full qualitative counterexample trace (state atoms per time step),
    /// populated when EpaOptions::collect_trace is set.
    asp::ltl::Trace trace;

    VerdictStatus status = VerdictStatus::Safe;
    /// Set iff status == Undetermined.
    std::optional<UndeterminedReason> undetermined_reason;
    /// Human-readable diagnostic for an undetermined verdict, including the
    /// solver stats at the stopping point.
    std::string undetermined_detail;
    /// Search effort for this scenario (decisions, conflicts, ...). All
    /// zeros for statically resolved verdicts.
    asp::SolveStats solver_stats;
    /// Whether the DPLL solver or the static prefilter produced the verdict.
    VerdictProvenance provenance = VerdictProvenance::Solver;

    bool violates(const std::string& requirement_id) const;
    bool any_violation() const { return !violated_requirements.empty(); }
    bool undetermined() const { return status == VerdictStatus::Undetermined; }
};

struct EpaOptions {
    AnalysisFocus focus = AnalysisFocus::Behavioral;
    int horizon = 4;  ///< temporal unrolling depth
    /// Collect the full qualitative trace into each verdict (projects every
    /// atom instead of the violation summary — slower, for explanation).
    bool collect_trace = false;
    /// Per-scenario solver decision cap (0 = keep the solver default).
    std::size_t max_decisions = 0;
    /// Unified run state: budget, worker pool, trace sink, metrics registry
    /// (obs/run_context.hpp). Borrowed; must outlive the analysis. Budget
    /// exhaustion and solver errors degrade the affected scenario to an
    /// Undetermined verdict instead of failing the evaluation.
    RunContext* ctx = nullptr;
    /// Ground-once/solve-many: ground the base program a single time at
    /// create() with an *open* scenario-fault/mitigation domain (singleton
    /// choice shells), then let every evaluate() pin that domain via solver
    /// assumptions instead of re-grounding from scratch. Scenarios that
    /// reference atoms outside the precomputed domain, and analyses whose
    /// base grounding failed (budget trip, injected fault), silently fall
    /// back to the per-scenario grounding path. See docs/performance.md.
    bool ground_once = true;
    /// Ternary abstract-interpretation prefilter over the ground-once cache
    /// (asp/absint, docs/static-analysis.md): pin a scenario's assumption
    /// domain, rerun the cheap propagation, and emit the verdict without the
    /// DPLL search whenever the fixpoint certifies a unique answer set.
    /// Verdicts are identical either way; only `provenance` differs. Only
    /// effective on the cached (ground_once) path.
    bool static_prefilter = true;
    /// Search engine for scenario solves (docs/solver.md). Both engines
    /// produce identical verdicts; Cdcl additionally leases warm solvers
    /// from the ground-once base so entailed clauses learned by one
    /// scenario's search carry over to the next. Dpll is the escape hatch
    /// (`cprisk assess --solver dpll`) and the differential reference.
    asp::SolverEngine solver = asp::SolverEngine::Cdcl;

    /// Resolved views over the run context (single reading site each).
    Budget* effective_budget() const { return ctx != nullptr ? &ctx->budget : nullptr; }
    std::size_t effective_jobs() const { return ctx != nullptr ? ctx->jobs : 1; }
    obs::TraceSink* trace_sink() const { return ctx != nullptr ? ctx->trace : nullptr; }
    obs::MetricsRegistry* metrics_sink() const { return ctx != nullptr ? ctx->metrics : nullptr; }
};

/// Immutable product of grounding the base program once with an open
/// scenario delta domain (defined in epa.cpp; shared across threads).
struct GroundedBase;

/// Thread-safe cache of ground-once bases, keyed by (focus, horizon,
/// collect_trace), so repeated analyses of the SAME model + requirements +
/// mitigation map skip the base grounding entirely — the daemon keeps one
/// per served model (src/serve/model_cache.hpp) and wires it through
/// RunContext::base_cache. Sharing a cache across different models or
/// requirement sets is undefined: the key does not capture them. Entries
/// are immutable GroundedBase snapshots, safe to hand to concurrent
/// evaluations; eviction happens at whole-model granularity in the daemon's
/// LRU, never per entry.
class GroundedBaseCache {
public:
    GroundedBaseCache();
    ~GroundedBaseCache();
    GroundedBaseCache(const GroundedBaseCache&) = delete;
    GroundedBaseCache& operator=(const GroundedBaseCache&) = delete;

    std::size_t entries() const;
    /// Approximate resident size of the cached ground programs, for the
    /// daemon's memory-cap accounting (estimated at insert; docs/serve.md).
    std::size_t approx_bytes() const;

private:
    friend class ErrorPropagationAnalysis;
    /// Key: (focus, horizon, collect_trace) — everything else that shapes
    /// the grounded base is fixed per cache by the contract above.
    using Key = std::tuple<int, int, bool>;

    std::shared_ptr<const GroundedBase> find(const Key& key) const;
    void insert(const Key& key, std::shared_ptr<const GroundedBase> base, std::size_t bytes);

    mutable std::mutex mutex_;
    std::map<Key, std::pair<std::shared_ptr<const GroundedBase>, std::size_t>> entries_;
    std::size_t bytes_ = 0;
};

class ErrorPropagationAnalysis {
public:
    /// Fails if the model does not validate or a behaviour fragment does not
    /// parse. The analysis *borrows* `model`: it must stay alive (and at the
    /// same address — beware of moving the owning object) for the lifetime
    /// of the returned analysis.
    static Result<ErrorPropagationAnalysis> create(const model::SystemModel& model,
                                                   std::vector<Requirement> requirements,
                                                   const MitigationMap& mitigations,
                                                   const EpaOptions& options = {});

    /// Evaluates one scenario under a set of active mitigations. When the
    /// run context carries an enabled RetryPolicy (common/retry.hpp), a
    /// transient Undetermined{solver_error} verdict is re-attempted with
    /// jittered backoff before the degraded verdict is accepted; budget
    /// trips (deadline/decision/cancel) are permanent and never retried.
    Result<ScenarioVerdict> evaluate(const security::AttackScenario& scenario,
                                     const std::vector<std::string>& active_mitigations) const;

    /// Exhaustively evaluates every scenario of the space (paper step 4:
    /// "all the candidate attack scenarios over the joint model undergo
    /// exhaustive analysis").
    Result<std::vector<ScenarioVerdict>> evaluate_all(
        const security::ScenarioSpace& space,
        const std::vector<std::string>& active_mitigations) const;

    /// Bounded-model-checking style time-to-hazard: the smallest horizon at
    /// which the scenario violates any requirement (re-running the analysis
    /// at increasing depth), or nullopt if no violation up to this
    /// analysis's configured horizon. A small value marks fast-acting
    /// hazards that leave little reaction time. Caveat: under finite-trace
    /// (LTLf) semantics, response requirements (G(p -> F q)) can report
    /// violations at horizons too short for the response to arrive; the
    /// metric is crisp for safety (never) requirements.
    Result<std::optional<int>> min_violation_horizon(
        const security::AttackScenario& scenario,
        const std::vector<std::string>& active_mitigations) const;

    const std::vector<Requirement>& requirements() const { return requirements_; }
    const model::SystemModel& system_model() const { return *model_; }

    /// The assembled base program (facts + propagation + requirements), for
    /// inspection/debugging.
    const asp::Program& base_program() const { return base_program_; }

    /// Requirement ids whose violation is statically *reachable*: the open
    /// (pin-free) ternary analysis of the ground-once base left their
    /// `violated/1` atom possible under at least one fault/mitigation
    /// configuration. A requirement absent from this list can never be
    /// violated at this focus/horizon — the `model-hazard-unreachable` lint.
    /// Conservatively returns every requirement id when the cache or the
    /// analysis is unavailable.
    std::vector<std::string> statically_reachable_violations() const;

    /// Monotonicity certificate for the grounded scenario-fault domain under
    /// a fixed active-mitigation set (asp/polarity.hpp): sign propagation
    /// over the ground-once cache, seeded with a ternary analysis that pins
    /// only the mitigation shells (faults stay open). A monotone certificate
    /// licenses superset pruning in the exhaustive frontier sweep
    /// (epa/frontier.hpp, docs/exhaustive-search.md). Returns nullopt — no
    /// claim either way — when the cache is unavailable, a mitigation is
    /// outside the grounded domain, or the seeding analysis conflicts or
    /// runs out of budget.
    std::optional<asp::polarity::MonotonicityCertificate> certify_monotonicity(
        const std::vector<std::string>& active_mitigations) const;

    /// UNSAT-core explanation of a hazard: the subset of `scenario`'s faults
    /// that *forces* a requirement violation, extracted from the
    /// final-conflict assumption core of a CDCL probe solve that pins the
    /// ground-once base's `__hazard_probe` guard true (every answer set must
    /// then be violation-free; UNSAT proves none is). The returned set is
    /// hazardous on its own — any pin extension of the core stays UNSAT —
    /// and under a monotone certificate so is each of its supersets, which
    /// is how the exhaustive frontier seeds its pruning antichain
    /// (epa/frontier.cpp, docs/exhaustive-search.md). Returns nullopt when
    /// no claim can be made: cache unavailable, scenario outside the
    /// grounded domain, probe solve interrupted or failed, or the probe is
    /// satisfiable (some trajectory avoids every violation, so the hazard
    /// is existential rather than forced).
    std::optional<std::vector<security::Mutation>> hazard_core(
        const security::AttackScenario& scenario,
        const std::vector<std::string>& active_mitigations) const;

private:
    ErrorPropagationAnalysis() = default;

    /// One evaluation attempt (the pre-retry evaluate body): cached
    /// assumptions path, static prefilter, or full reground.
    Result<ScenarioVerdict> evaluate_once(
        const security::AttackScenario& scenario,
        const std::vector<std::string>& active_mitigations) const;

    /// Assumption literals pinning the grounded delta domain to `scenario` +
    /// `active_mitigations`, or nullopt when the cache is absent or the
    /// scenario references atoms outside the precomputed domain (legacy
    /// per-scenario grounding handles those).
    std::optional<std::vector<std::pair<int, bool>>> cached_assumptions(
        const security::AttackScenario& scenario,
        const std::vector<std::string>& active_mitigations) const;

    /// Shared verdict extraction over the solve result (both the cached and
    /// the full-reground path end here).
    Result<ScenarioVerdict> finish_verdict(ScenarioVerdict verdict,
                                           const Result<asp::SolveResult>& solved) const;

    const model::SystemModel* model_ = nullptr;
    std::vector<Requirement> requirements_;
    MitigationMap mitigations_;
    EpaOptions options_;
    asp::Program base_program_;
    /// Non-null iff the ground-once cache was built successfully; never
    /// mutated after create(), so concurrent evaluate() calls share it.
    std::shared_ptr<const GroundedBase> grounded_base_;
};

}  // namespace cprisk::epa
