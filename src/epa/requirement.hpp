// cprisk/epa/requirement.hpp
//
// System safety requirements for the EPA: named LTLf formulas over the
// temporal state predicates of the qualitative model (paper §VII: R1 "the
// water tank should not overflow" = G !overflow-state; R2 "alert should be
// sent to the operator in case of overflow" = G(overflow -> F alert)).
#pragma once

#include <string>
#include <vector>

#include "asp/ltl.hpp"
#include "model/component.hpp"

namespace cprisk::epa {

struct Requirement {
    std::string id;           ///< e.g. "r1"
    std::string description;  ///< human-readable statement
    asp::ltl::Formula formula = asp::ltl::Formula::truth();

    /// Safety requirement G !bad for a single ground atom.
    static Requirement never(std::string id, std::string description, asp::Atom bad_state);

    /// Response requirement G (trigger -> F response).
    static Requirement responds(std::string id, std::string description, asp::Atom trigger,
                                asp::Atom response);

    /// Topology-focus requirement: errors must never reach `component`
    /// (G !error(component)).
    static Requirement no_error_reaches(const model::ComponentId& component);
};

}  // namespace cprisk::epa
