// cprisk/epa/uncertain.hpp
//
// Rough-set-extended EPA (paper §V-B, ref [32]): epistemic uncertainty about
// which fault modes are actually active is handled by evaluating the
// *possible worlds* spanned by the uncertain mutations and classifying each
// requirement into the three RST regions:
//
//   Positive  — violated in every possible world (certain hazard);
//   Negative  — violated in no possible world (certainly safe);
//   Boundary  — violated in some worlds only: the available knowledge cannot
//               decide, so the analyst must refine the model or consult an
//               expert (exactly the §V-A escalation rule).
//
// The classification is exact: propagation is not assumed monotone in the
// injected fault set (conflicting stuck-at faults can mask each other), so
// all 2^k subsets of the uncertain mutations are evaluated (k is bounded).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "epa/epa.hpp"

namespace cprisk::epa {

/// A scenario whose mutation set is only partially known.
struct UncertainScenario {
    std::string id;
    std::vector<security::Mutation> certain;    ///< definitely active
    std::vector<security::Mutation> uncertain;  ///< possibly active
    qual::Level likelihood = qual::Level::Medium;
};

enum class HazardRegion : std::uint8_t { Positive, Negative, Boundary };

std::string_view to_string(HazardRegion region);

struct UncertainVerdict {
    std::string scenario_id;
    /// Region per requirement id.
    std::map<std::string, HazardRegion> regions;
    std::size_t worlds_evaluated = 0;
    /// Worlds in which each requirement is violated (counts, for reporting).
    std::map<std::string, std::size_t> violating_worlds;

    bool certainly_hazardous() const;   ///< some requirement in Positive
    bool possibly_hazardous() const;    ///< some requirement not Negative
    std::vector<std::string> boundary_requirements() const;
};

struct UncertainOptions {
    /// Guard: 2^k worlds are evaluated; larger scenarios fail.
    std::size_t max_uncertain_mutations = 12;
};

/// Classifies each requirement of `analysis` into RST regions for the given
/// uncertain scenario.
Result<UncertainVerdict> evaluate_uncertain(const ErrorPropagationAnalysis& analysis,
                                            const UncertainScenario& scenario,
                                            const std::vector<std::string>& active_mitigations,
                                            const UncertainOptions& options = {});

}  // namespace cprisk::epa
