#include "epa/uncertain.hpp"

#include <algorithm>

namespace cprisk::epa {

std::string_view to_string(HazardRegion region) {
    switch (region) {
        case HazardRegion::Positive: return "positive";
        case HazardRegion::Negative: return "negative";
        case HazardRegion::Boundary: return "boundary";
    }
    return "?";
}

bool UncertainVerdict::certainly_hazardous() const {
    for (const auto& [requirement, region] : regions) {
        (void)requirement;
        if (region == HazardRegion::Positive) return true;
    }
    return false;
}

bool UncertainVerdict::possibly_hazardous() const {
    for (const auto& [requirement, region] : regions) {
        (void)requirement;
        if (region != HazardRegion::Negative) return true;
    }
    return false;
}

std::vector<std::string> UncertainVerdict::boundary_requirements() const {
    std::vector<std::string> out;
    for (const auto& [requirement, region] : regions) {
        if (region == HazardRegion::Boundary) out.push_back(requirement);
    }
    return out;
}

Result<UncertainVerdict> evaluate_uncertain(const ErrorPropagationAnalysis& analysis,
                                            const UncertainScenario& scenario,
                                            const std::vector<std::string>& active_mitigations,
                                            const UncertainOptions& options) {
    const std::size_t k = scenario.uncertain.size();
    if (k > options.max_uncertain_mutations) {
        return Result<UncertainVerdict>::failure(
            "uncertain scenario '" + scenario.id + "': " + std::to_string(k) +
            " uncertain mutations exceed the exhaustive-evaluation guard (" +
            std::to_string(options.max_uncertain_mutations) + ")");
    }

    UncertainVerdict verdict;
    verdict.scenario_id = scenario.id;

    std::map<std::string, std::size_t> violated_count;
    const std::size_t worlds = static_cast<std::size_t>(1) << k;
    for (std::size_t mask = 0; mask < worlds; ++mask) {
        security::AttackScenario world;
        world.id = scenario.id + "_w" + std::to_string(mask);
        world.likelihood = scenario.likelihood;
        world.mutations = scenario.certain;
        for (std::size_t bit = 0; bit < k; ++bit) {
            if (mask & (static_cast<std::size_t>(1) << bit)) {
                world.mutations.push_back(scenario.uncertain[bit]);
            }
        }
        std::sort(world.mutations.begin(), world.mutations.end());
        world.mutations.erase(std::unique(world.mutations.begin(), world.mutations.end()),
                              world.mutations.end());

        auto evaluated = analysis.evaluate(world, active_mitigations);
        if (!evaluated.ok()) return Result<UncertainVerdict>::failure(evaluated.error());
        for (const std::string& requirement : evaluated.value().violated_requirements) {
            ++violated_count[requirement];
        }
    }
    verdict.worlds_evaluated = worlds;

    for (const Requirement& requirement : analysis.requirements()) {
        const std::size_t violated =
            violated_count.count(requirement.id) > 0 ? violated_count.at(requirement.id) : 0;
        verdict.violating_worlds[requirement.id] = violated;
        HazardRegion region = HazardRegion::Boundary;
        if (violated == 0) {
            region = HazardRegion::Negative;
        } else if (violated == worlds) {
            region = HazardRegion::Positive;
        }
        verdict.regions[requirement.id] = region;
    }
    return verdict;
}

}  // namespace cprisk::epa
