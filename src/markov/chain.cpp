#include "markov/chain.hpp"

#include <cmath>

namespace cprisk::markov {

Result<std::size_t> MarkovChain::add_state(std::string id) {
    if (id.empty()) return Result<std::size_t>::failure("state id must be non-empty");
    if (has_state(id)) return Result<std::size_t>::failure("duplicate state '" + id + "'");
    const std::size_t index = names_.size();
    ids_.emplace(id, index);
    names_.push_back(std::move(id));
    for (auto& row : p_) row.push_back(0.0);
    p_.emplace_back(names_.size(), 0.0);
    return index;
}

bool MarkovChain::has_state(const std::string& id) const { return ids_.count(id) > 0; }

const std::string& MarkovChain::state_name(std::size_t index) const {
    require(index < names_.size(), "MarkovChain: state index out of range");
    return names_[index];
}

Result<std::size_t> MarkovChain::state_index(const std::string& id) const {
    auto it = ids_.find(id);
    if (it == ids_.end()) return Result<std::size_t>::failure("unknown state '" + id + "'");
    return it->second;
}

Result<void> MarkovChain::set_transition(const std::string& from, const std::string& to,
                                         double probability) {
    auto i = state_index(from);
    if (!i.ok()) return Result<void>::failure(i.error());
    auto j = state_index(to);
    if (!j.ok()) return Result<void>::failure(j.error());
    if (probability < 0.0 || probability > 1.0) {
        return Result<void>::failure("probability out of [0,1]");
    }
    p_[i.value()][j.value()] = probability;
    return {};
}

Result<void> MarkovChain::make_absorbing(const std::string& state) {
    auto i = state_index(state);
    if (!i.ok()) return Result<void>::failure(i.error());
    for (double& cell : p_[i.value()]) cell = 0.0;
    p_[i.value()][i.value()] = 1.0;
    return {};
}

Result<void> MarkovChain::validate() const {
    if (names_.empty()) return Result<void>::failure("chain has no states");
    for (std::size_t i = 0; i < p_.size(); ++i) {
        double sum = 0.0;
        for (double cell : p_[i]) sum += cell;
        if (std::abs(sum - 1.0) > 1e-9) {
            return Result<void>::failure("row '" + names_[i] + "' sums to " +
                                         std::to_string(sum) + ", expected 1");
        }
    }
    return {};
}

Result<std::vector<double>> MarkovChain::distribution_after(const std::string& initial,
                                                            std::size_t steps) const {
    auto valid = validate();
    if (!valid.ok()) return Result<std::vector<double>>::failure(valid.error());
    auto start = state_index(initial);
    if (!start.ok()) return Result<std::vector<double>>::failure(start.error());

    std::vector<double> dist(names_.size(), 0.0);
    dist[start.value()] = 1.0;
    std::vector<double> next(names_.size(), 0.0);
    for (std::size_t step = 0; step < steps; ++step) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < names_.size(); ++i) {
            if (dist[i] == 0.0) continue;
            for (std::size_t j = 0; j < names_.size(); ++j) {
                next[j] += dist[i] * p_[i][j];
            }
        }
        dist.swap(next);
    }
    return dist;
}

Result<double> MarkovChain::reach_probability(const std::string& initial,
                                              const std::vector<std::string>& targets,
                                              std::size_t horizon) const {
    // Copy with targets absorbing, then sum their mass after `horizon`.
    MarkovChain absorbed = *this;
    for (const std::string& target : targets) {
        auto made = absorbed.make_absorbing(target);
        if (!made.ok()) return Result<double>::failure(made.error());
    }
    auto dist = absorbed.distribution_after(initial, horizon);
    if (!dist.ok()) return Result<double>::failure(dist.error());
    double mass = 0.0;
    for (const std::string& target : targets) {
        mass += dist.value()[absorbed.state_index(target).value()];
    }
    return mass;
}

Result<std::vector<double>> MarkovChain::stationary(std::size_t iterations,
                                                    double tolerance) const {
    auto valid = validate();
    if (!valid.ok()) return Result<std::vector<double>>::failure(valid.error());
    std::vector<double> dist(names_.size(), 1.0 / static_cast<double>(names_.size()));
    std::vector<double> next(names_.size(), 0.0);
    for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < names_.size(); ++i) {
            for (std::size_t j = 0; j < names_.size(); ++j) {
                next[j] += dist[i] * p_[i][j];
            }
        }
        double delta = 0.0;
        for (std::size_t i = 0; i < names_.size(); ++i) {
            delta += std::abs(next[i] - dist[i]);
        }
        dist.swap(next);
        if (delta < tolerance) break;
    }
    return dist;
}

double level_to_probability(qual::Level level) {
    switch (level) {
        case qual::Level::VeryLow: return 1e-4;
        case qual::Level::Low: return 1e-3;
        case qual::Level::Medium: return 1e-2;
        case qual::Level::High: return 1e-1;
        case qual::Level::VeryHigh: return 0.5;
    }
    return 1e-2;
}

MarkovChain single_fault_chain(qual::Level likelihood) {
    MarkovChain chain;
    (void)chain.add_state("ok");
    (void)chain.add_state("failed");
    const double p = level_to_probability(likelihood);
    (void)chain.set_transition("ok", "failed", p);
    (void)chain.set_transition("ok", "ok", 1.0 - p);
    (void)chain.make_absorbing("failed");
    return chain;
}

}  // namespace cprisk::markov
