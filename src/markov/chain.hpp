// cprisk/markov/chain.hpp
//
// Discrete-time Markov chains — the second classical EPA baseline the paper
// discusses (§III-A: "Markov chains and Petri nets are other approaches for
// EPA but require specific expert knowledge"). The module provides the
// generic DTMC substrate plus the calibration bridge from the qualitative
// five-point likelihood scale to per-step probabilities, so qualitative EPA
// verdicts can be sanity-checked against a probabilistic model (and the
// expertise gap the paper talks about becomes tangible: compare the model
// size here with the one-line qualitative statements).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "qualitative/level.hpp"

namespace cprisk::markov {

class MarkovChain {
public:
    /// Adds a state; returns its index.
    Result<std::size_t> add_state(std::string id);

    bool has_state(const std::string& id) const;
    std::size_t state_count() const { return ids_.size(); }
    const std::string& state_name(std::size_t index) const;
    Result<std::size_t> state_index(const std::string& id) const;

    /// Sets P(from -> to). Rows must sum to 1 at validation time.
    Result<void> set_transition(const std::string& from, const std::string& to,
                                double probability);

    /// Makes `state` absorbing (self-loop probability 1).
    Result<void> make_absorbing(const std::string& state);

    /// Every row must be a probability distribution (sum 1 +/- eps).
    Result<void> validate() const;

    /// Distribution after `steps` transitions from `initial` (a point mass).
    Result<std::vector<double>> distribution_after(const std::string& initial,
                                                   std::size_t steps) const;

    /// Probability of reaching any state in `targets` within `horizon` steps
    /// from `initial` (targets treated as absorbing for the computation).
    Result<double> reach_probability(const std::string& initial,
                                     const std::vector<std::string>& targets,
                                     std::size_t horizon) const;

    /// Stationary distribution by power iteration (for ergodic chains).
    Result<std::vector<double>> stationary(std::size_t iterations = 10'000,
                                           double tolerance = 1e-12) const;

private:
    std::vector<std::string> names_;
    std::map<std::string, std::size_t> ids_;
    // row-major transition matrix, lazily sized
    std::vector<std::vector<double>> p_;
};

/// Calibration of the qualitative scale to a per-step activation
/// probability (logarithmic ladder: VL=1e-4, L=1e-3, M=1e-2, H=1e-1,
/// VH=0.5). The absolute values are analyst-tunable; the *ordering* is what
/// the qualitative abstraction preserves.
double level_to_probability(qual::Level level);

/// Builds the standard two-state availability chain of one fault mode:
/// `ok` --(p)-> `failed` (absorbing), with p from the fault likelihood.
MarkovChain single_fault_chain(qual::Level likelihood);

}  // namespace cprisk::markov
