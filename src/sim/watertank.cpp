#include "sim/watertank.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cprisk::sim {

std::string_view to_string(PlantFault fault) {
    switch (fault) {
        case PlantFault::InputValveStuckOpen: return "input_valve_stuck_open";
        case PlantFault::OutputValveStuckClosed: return "output_valve_stuck_closed";
        case PlantFault::HmiNoSignal: return "hmi_no_signal";
        case PlantFault::SensorFrozen: return "sensor_frozen";
        case PlantFault::WorkstationCompromise: return "workstation_compromise";
    }
    return "?";
}

WaterTankSimulator::WaterTankSimulator(WaterTankParams params) : params_(params) {
    require(params_.dt > 0, "WaterTankSimulator: dt must be positive");
    require(params_.capacity > 0, "WaterTankSimulator: capacity must be positive");
    require(params_.low_setpoint < params_.high_setpoint,
            "WaterTankSimulator: low setpoint must be below high setpoint");
}

SimulationResult WaterTankSimulator::run(double duration,
                                         const std::vector<FaultInjection>& injections) const {
    SimulationResult result;

    double level = params_.initial_level;
    bool in_open = true;    // filling by default from the initial mid level
    bool out_open = false;
    double sensor_reading = level;
    bool alert_active = false;

    bool f_in_stuck = false;
    bool f_out_stuck = false;
    bool f_hmi_dead = false;
    bool f_sensor_frozen = false;

    const std::size_t steps = static_cast<std::size_t>(duration / params_.dt);
    for (std::size_t i = 0; i <= steps; ++i) {
        const double t = static_cast<double>(i) * params_.dt;

        // Activate scheduled faults. WorkstationCompromise lets the attacker
        // reconfigure both actuators and suppress the alarm (F4 -> F1,F2,F3).
        for (const FaultInjection& injection : injections) {
            if (injection.time > t) continue;
            switch (injection.fault) {
                case PlantFault::InputValveStuckOpen: f_in_stuck = true; break;
                case PlantFault::OutputValveStuckClosed: f_out_stuck = true; break;
                case PlantFault::HmiNoSignal: f_hmi_dead = true; break;
                case PlantFault::SensorFrozen: f_sensor_frozen = true; break;
                case PlantFault::WorkstationCompromise:
                    f_in_stuck = true;
                    f_out_stuck = true;
                    f_hmi_dead = true;
                    break;
            }
        }

        // Sensor.
        if (!f_sensor_frozen) sensor_reading = level;

        // Controller: the input valve is the production feed (commanded open
        // throughout, matching the qualitative model); the tank controller
        // regulates the level through the output valve with hysteresis.
        const bool in_command = true;
        bool out_command = out_open;
        if (sensor_reading >= params_.high_setpoint) {
            out_command = true;
        } else if (sensor_reading <= params_.low_setpoint) {
            out_command = false;
        }

        // Actuators: stuck-at faults override commands.
        in_open = f_in_stuck ? true : in_command;
        out_open = f_out_stuck ? false : out_command;

        // HMI.
        const bool alarm_condition = sensor_reading >= params_.alarm_level;
        if (alarm_condition && !f_hmi_dead && !alert_active) {
            alert_active = true;
            result.alert_time = t;
        }
        if (alert_active) result.alert_raised = true;

        // Record the sample.
        qual::TraceSample sample;
        sample.time = t;
        sample.values["level"] = level;
        sample.values["in_valve"] = in_open ? 1.0 : 0.0;
        sample.values["out_valve"] = out_open ? 1.0 : 0.0;
        sample.values["alert"] = alert_active ? 1.0 : 0.0;
        result.trace.push_back(std::move(sample));

        if (level > params_.capacity && !result.overflow) {
            result.overflow = true;
            result.overflow_time = t;
        }

        // Plant integration (explicit Euler; the dynamics are affine so the
        // fixed small step is adequate).
        const double inflow = in_open ? params_.inflow_rate : 0.0;
        const double outflow = out_open ? params_.outflow_rate : 0.0;
        level += (inflow - outflow) * params_.dt;
        level = std::max(0.0, level);  // the tank cannot go negative
        // Overflow is detected, but the level saturates slightly above
        // capacity (spill).
        level = std::min(level, params_.capacity * 1.2);
    }
    return result;
}

qual::QuantitySpace WaterTankSimulator::level_space() const {
    return qual::QuantitySpace(
        "level", {"empty", "low", "normal", "high", "overflow"},
        {5.0, params_.low_setpoint, params_.high_setpoint, params_.capacity});
}

qual::TraceAbstractor WaterTankSimulator::abstractor() const {
    qual::TraceAbstractor abstractor;
    abstractor.register_space(level_space());
    abstractor.register_space(qual::QuantitySpace("in_valve", {"closed", "open"}, {0.5}));
    abstractor.register_space(qual::QuantitySpace("out_valve", {"closed", "open"}, {0.5}));
    abstractor.register_space(qual::QuantitySpace("alert", {"off", "on"}, {0.5}));
    return abstractor;
}

}  // namespace cprisk::sim
