#include "sim/reactor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cprisk::sim {

std::string_view to_string(ReactorFault fault) {
    switch (fault) {
        case ReactorFault::HeaterStuckOn: return "heater_stuck_on";
        case ReactorFault::CoolingValveStuckClosed: return "cooling_valve_stuck_closed";
        case ReactorFault::ReliefValveStuckClosed: return "relief_valve_stuck_closed";
        case ReactorFault::TempSensorFrozen: return "temp_sensor_frozen";
        case ReactorFault::AlarmNoSignal: return "alarm_no_signal";
        case ReactorFault::ScadaCompromise: return "scada_compromise";
    }
    return "?";
}

ReactorSimulator::ReactorSimulator(ReactorParams params) : params_(params) {
    require(params_.dt > 0, "ReactorSimulator: dt must be positive");
    require(params_.low_setpoint < params_.high_setpoint,
            "ReactorSimulator: low setpoint must be below high setpoint");
    require(params_.relief_pressure < params_.burst_pressure,
            "ReactorSimulator: relief must open below the burst pressure");
}

ReactorResult ReactorSimulator::run(double duration,
                                    const std::vector<ReactorInjection>& injections) const {
    ReactorResult result;

    double temperature = params_.initial_temperature;
    double vented = 0.0;          // pressure removed through the relief valve
    double sensor_reading = temperature;
    bool heater_on = true;        // heating phase of the batch
    bool cooling_open = false;
    bool alert_active = false;

    bool f_heater = false;
    bool f_cooling = false;
    bool f_relief = false;
    bool f_sensor = false;
    bool f_alarm = false;

    const std::size_t steps = static_cast<std::size_t>(duration / params_.dt);
    for (std::size_t i = 0; i <= steps; ++i) {
        const double t = static_cast<double>(i) * params_.dt;
        for (const ReactorInjection& injection : injections) {
            if (injection.time > t) continue;
            switch (injection.fault) {
                case ReactorFault::HeaterStuckOn: f_heater = true; break;
                case ReactorFault::CoolingValveStuckClosed: f_cooling = true; break;
                case ReactorFault::ReliefValveStuckClosed: f_relief = true; break;
                case ReactorFault::TempSensorFrozen: f_sensor = true; break;
                case ReactorFault::AlarmNoSignal: f_alarm = true; break;
                case ReactorFault::ScadaCompromise:
                    f_heater = true;
                    f_cooling = true;
                    f_relief = true;
                    f_alarm = true;
                    break;
            }
        }

        if (!f_sensor) sensor_reading = temperature;

        // Bang-bang thermal control with hysteresis on the sensed value.
        if (sensor_reading <= params_.low_setpoint) {
            heater_on = true;
            cooling_open = false;
        } else if (sensor_reading >= params_.high_setpoint) {
            heater_on = false;
            cooling_open = true;
        }
        const bool heater_effective = f_heater ? true : heater_on;
        const bool cooling_effective = f_cooling ? false : cooling_open;

        // Pressure from temperature, less what the relief valve vented.
        const double raw_pressure =
            params_.pressure_gain * std::max(0.0, temperature - params_.ambient);
        double pressure = std::max(0.0, raw_pressure - vented);
        const bool relief_open = !f_relief && pressure >= params_.relief_pressure;
        if (relief_open) {
            vented += params_.relief_vent * params_.dt;
            pressure = std::max(0.0, raw_pressure - vented);
        }

        if (pressure >= params_.alarm_pressure && !f_alarm && !alert_active) {
            alert_active = true;
            result.alert_time = t;
        }
        if (alert_active) result.alert_raised = true;
        if (pressure >= params_.burst_pressure && !result.rupture) {
            result.rupture = true;
            result.rupture_time = t;
        }

        qual::TraceSample sample;
        sample.time = t;
        sample.values["temperature"] = temperature;
        sample.values["pressure"] = pressure;
        sample.values["alert"] = alert_active ? 1.0 : 0.0;
        result.trace.push_back(std::move(sample));

        // Thermal integration.
        const double dT = params_.heating_rate * (heater_effective ? 1.0 : 0.0) -
                          params_.cooling_rate * (cooling_effective ? 1.0 : 0.0) -
                          params_.leak_rate * (temperature - params_.ambient);
        temperature = std::max(params_.ambient, temperature + dT * params_.dt);
    }
    return result;
}

qual::TraceAbstractor ReactorSimulator::abstractor() const {
    qual::TraceAbstractor abstractor;
    abstractor.register_space(qual::QuantitySpace(
        "temperature", {"cold", "normal", "hot", "critical"},
        {params_.low_setpoint, params_.high_setpoint,
         params_.ambient + params_.alarm_pressure / params_.pressure_gain}));
    abstractor.register_space(qual::QuantitySpace(
        "pressure", {"low", "normal", "high", "critical"},
        {1.5, 4.0, params_.alarm_pressure}));
    abstractor.register_space(qual::QuantitySpace("alert", {"off", "on"}, {0.5}));
    return abstractor;
}

}  // namespace cprisk::sim
