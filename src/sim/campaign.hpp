// cprisk/sim/campaign.hpp
//
// Fault-injection campaigns over the quantitative plant: run every fault
// combination, record concrete outcomes (overflow / alert), and compare
// against the qualitative requirement semantics. Used by the validation
// benches (qualitative EPA verdicts vs concrete simulation) and by the
// abstraction-soundness property tests.
#pragma once

#include <string>
#include <vector>

#include "sim/watertank.hpp"

namespace cprisk::sim {

/// Concrete outcome of one injected fault combination.
struct CampaignRecord {
    std::vector<PlantFault> faults;
    bool overflow = false;
    bool alert_raised = false;
    /// R1 "the tank should not overflow" violated concretely.
    bool violates_r1() const { return overflow; }
    /// R2 "alert on overflow" violated concretely.
    bool violates_r2() const { return overflow && !alert_raised; }

    std::string to_string() const;
};

struct CampaignOptions {
    double duration = 60.0;    ///< simulated seconds per run
    double injection_time = 5.0;
    std::size_t max_simultaneous_faults = 3;
};

/// Runs the full campaign: every combination of the injectable faults up to
/// `max_simultaneous_faults` (including the fault-free golden run first).
std::vector<CampaignRecord> run_campaign(const WaterTankSimulator& simulator,
                                         const CampaignOptions& options = {});

/// Runs a single combination.
CampaignRecord run_single(const WaterTankSimulator& simulator,
                          const std::vector<PlantFault>& faults,
                          const CampaignOptions& options = {});

}  // namespace cprisk::sim
