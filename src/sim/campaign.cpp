#include "sim/campaign.hpp"

#include <functional>

namespace cprisk::sim {

std::string CampaignRecord::to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(sim::to_string(faults[i]));
    }
    out += "} overflow=" + std::string(overflow ? "yes" : "no") +
           " alert=" + std::string(alert_raised ? "yes" : "no");
    return out;
}

CampaignRecord run_single(const WaterTankSimulator& simulator,
                          const std::vector<PlantFault>& faults,
                          const CampaignOptions& options) {
    std::vector<FaultInjection> injections;
    injections.reserve(faults.size());
    for (PlantFault fault : faults) {
        injections.push_back(FaultInjection{options.injection_time, fault});
    }
    const SimulationResult result = simulator.run(options.duration, injections);
    CampaignRecord record;
    record.faults = faults;
    record.overflow = result.overflow;
    record.alert_raised = result.alert_raised;
    return record;
}

std::vector<CampaignRecord> run_campaign(const WaterTankSimulator& simulator,
                                         const CampaignOptions& options) {
    const std::vector<PlantFault> universe = {
        PlantFault::InputValveStuckOpen, PlantFault::OutputValveStuckClosed,
        PlantFault::HmiNoSignal, PlantFault::SensorFrozen,
        PlantFault::WorkstationCompromise,
    };

    std::vector<CampaignRecord> records;
    std::vector<PlantFault> current;

    // Golden (fault-free) run first.
    records.push_back(run_single(simulator, {}, options));

    std::function<void(std::size_t)> choose = [&](std::size_t start) {
        if (!current.empty()) records.push_back(run_single(simulator, current, options));
        if (current.size() >= options.max_simultaneous_faults) return;
        for (std::size_t i = start; i < universe.size(); ++i) {
            current.push_back(universe[i]);
            choose(i + 1);
            current.pop_back();
        }
    };
    choose(0);
    return records;
}

}  // namespace cprisk::sim
