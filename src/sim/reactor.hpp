// cprisk/sim/reactor.hpp
//
// Quantitative counterpart of the batch-reactor case study
// (core/reactor.hpp): first-order thermal dynamics driving an algebraic
// pressure model, a bang-bang temperature controller acting through the
// heater and the cooling valve, a pressure-relief valve, and an alarm unit.
// Used to cross-validate the qualitative EPA verdicts on the second domain
// exactly as sim/watertank.hpp does for the first.
//
//   dT/dt = heating_rate * heater_on - cooling_rate * cooling_open
//           - leak_rate * (T - ambient)
//   P     = pressure_gain * max(0, T - ambient); relief venting clamps P.
//   rupture when P exceeds burst_pressure with the relief valve unable to
//   open; the alarm fires at alarm_pressure unless suppressed.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "qualitative/abstraction.hpp"

namespace cprisk::sim {

enum class ReactorFault : std::uint8_t {
    HeaterStuckOn,
    CoolingValveStuckClosed,
    ReliefValveStuckClosed,
    TempSensorFrozen,
    AlarmNoSignal,
    ScadaCompromise,  ///< forces heater on, blocks cooling + relief, silences alarm
};

std::string_view to_string(ReactorFault fault);

struct ReactorParams {
    double ambient = 20.0;
    double initial_temperature = 60.0;
    double heating_rate = 4.0;        ///< deg/s with the heater on
    double cooling_rate = 6.0;        ///< deg/s with the cooling valve open
    double leak_rate = 0.01;          ///< passive loss toward ambient (1/s)
    double low_setpoint = 50.0;       ///< heater turns on below
    double high_setpoint = 90.0;      ///< cooling opens above
    double pressure_gain = 0.05;      ///< bar per degree above ambient
    double relief_pressure = 6.0;     ///< relief valve opens at this pressure
    double relief_vent = 1.5;         ///< bar removed per second while venting
    double alarm_pressure = 5.5;      ///< below the relief point: the alarm
                                      ///< fires even when venting succeeds
    double burst_pressure = 8.0;
    double dt = 0.05;
};

struct ReactorInjection {
    double time = 0.0;
    ReactorFault fault = ReactorFault::HeaterStuckOn;
};

struct ReactorResult {
    qual::NumericTrace trace;  ///< temperature / pressure / alert signals
    bool rupture = false;
    bool alert_raised = false;
    std::optional<double> rupture_time;
    std::optional<double> alert_time;
};

class ReactorSimulator {
public:
    explicit ReactorSimulator(ReactorParams params = {});

    ReactorResult run(double duration, const std::vector<ReactorInjection>& injections) const;

    const ReactorParams& params() const { return params_; }

    /// Abstractor with temperature/pressure/alert quantity spaces matching
    /// the qualitative model's regions.
    qual::TraceAbstractor abstractor() const;

private:
    ReactorParams params_;
};

}  // namespace cprisk::sim
