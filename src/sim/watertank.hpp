// cprisk/sim/watertank.hpp
//
// Continuous-time water-tank plant simulator — the quantitative counterpart
// of the paper's case study (§VII, inspired by the Tennessee Eastman
// Process benchmark [33]). The paper evaluates the *qualitative* model; this
// substrate exists to validate it: fault-injection campaigns on the
// concrete plant must agree with the qualitative EPA verdicts (the
// abstraction may over-approximate but must never miss a hazard).
//
// Plant:   d(level)/dt = inflow_rate * in_open - outflow_rate * out_open
// Control: bang-bang — open the output valve and close the input valve when
//          the sensed level is above the high setpoint; the reverse below
//          the low setpoint.
// HMI:     raises an alert when the sensed level reaches the alarm level.
//
// Injectable faults mirror the case study's F1-F4:
//   F1 input valve stuck-at-open, F2 output valve stuck-at-closed,
//   F3 HMI no-signal, F4 workstation compromise (forces F1+F2+F3 — the
//   attacker reconfigures the actuators and suppresses the alarm).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qualitative/abstraction.hpp"

namespace cprisk::sim {

/// Injectable fault identifiers (matching the qualitative model's ids).
enum class PlantFault : std::uint8_t {
    InputValveStuckOpen,
    OutputValveStuckClosed,
    HmiNoSignal,
    SensorFrozen,
    WorkstationCompromise,
};

std::string_view to_string(PlantFault fault);

struct WaterTankParams {
    double capacity = 100.0;        ///< overflow above this level
    double initial_level = 50.0;
    double inflow_rate = 4.0;       ///< level units per second, valve fully open
    double outflow_rate = 5.0;
    double low_setpoint = 35.0;     ///< controller opens input below this
    double high_setpoint = 65.0;    ///< controller opens output above this
    double alarm_level = 95.0;      ///< HMI alert threshold
    double dt = 0.05;               ///< integration step
};

/// One fault activation at a given simulation time.
struct FaultInjection {
    double time = 0.0;
    PlantFault fault = PlantFault::InputValveStuckOpen;
};

/// Result of a simulation run.
struct SimulationResult {
    qual::NumericTrace trace;        ///< level / valve / alert signals
    bool overflow = false;           ///< level ever exceeded capacity
    bool alert_raised = false;       ///< HMI alert ever shown to the operator
    std::optional<double> overflow_time;
    std::optional<double> alert_time;
};

/// Deterministic fixed-step simulator of the water-tank control loop.
class WaterTankSimulator {
public:
    explicit WaterTankSimulator(WaterTankParams params = {});

    /// Runs for `duration` seconds applying `injections` (activated at their
    /// time stamps, persistent until the end).
    SimulationResult run(double duration, const std::vector<FaultInjection>& injections) const;

    const WaterTankParams& params() const { return params_; }

    /// Quantity space matching the qualitative model's level landmarks:
    /// empty | low | normal | high | overflow.
    qual::QuantitySpace level_space() const;

    /// Abstractor configured for this plant's signals.
    qual::TraceAbstractor abstractor() const;

private:
    WaterTankParams params_;
};

}  // namespace cprisk::sim
