// Sensitivity analysis: the paper's §V-A worked example and the full-leaf
// uncertain derivation.
#include <gtest/gtest.h>

#include "uncertainty/sensitivity.hpp"

namespace cprisk::uncertainty {
namespace {

using qual::Level;
using qual::LevelRange;

TEST(Sensitivity, PaperExampleInsensitive) {
    // "Let's consider that the Loss Event Frequency is Low (L). If there is
    // uncertainty in the factor Loss Magnitude (LM), with VL or L being the
    // possible values ... the calculated Risk remains VL for both potential
    // input values" -> insensitive.
    auto report = ora_sensitivity(LevelRange(Level::VeryLow, Level::Low),
                                  LevelRange(Level::Low), /*vary_lm=*/true);
    EXPECT_FALSE(report.sensitive);
    EXPECT_EQ(report.output_range, LevelRange(Level::VeryLow));
}

TEST(Sensitivity, PaperExampleSensitive) {
    // "However, if LM is known to range between L-VH, the output will vary
    // with each change, indicating that Risk is sensitive."
    auto report = ora_sensitivity(LevelRange(Level::Low, Level::VeryHigh),
                                  LevelRange(Level::Low), /*vary_lm=*/true);
    EXPECT_TRUE(report.sensitive);
    EXPECT_EQ(report.output_range.lo, Level::VeryLow);  // Risk(L, L) = VL
    EXPECT_EQ(report.output_range.hi, Level::High);     // Risk(VH, L) = H
}

TEST(Sensitivity, VaryLefInstead) {
    auto report = ora_sensitivity(LevelRange(Level::Medium),
                                  LevelRange(Level::VeryLow, Level::VeryHigh),
                                  /*vary_lm=*/false);
    EXPECT_TRUE(report.sensitive);
    EXPECT_EQ(report.factor, "LEF");
    EXPECT_EQ(report.output_range.lo, Level::VeryLow);
    EXPECT_EQ(report.output_range.hi, Level::VeryHigh);
}

TEST(Sensitivity, ExactInputNeverSensitive) {
    for (Level lm : qual::kAllLevels) {
        for (Level lef : qual::kAllLevels) {
            auto report = ora_sensitivity(LevelRange(lm), LevelRange(lef), true);
            EXPECT_FALSE(report.sensitive);
        }
    }
}

TEST(Sensitivity, SweepHelper) {
    auto range = sweep([](Level l) { return qual::shift(l, 1); },
                       LevelRange(Level::Low, Level::High));
    EXPECT_EQ(range, LevelRange(Level::Medium, Level::VeryHigh));
    // Constant function -> exact output.
    auto constant = sweep([](Level) { return Level::Medium; },
                          LevelRange(Level::VeryLow, Level::VeryHigh));
    EXPECT_TRUE(constant.is_exact());
}

TEST(Sensitivity, FullDerivationOneAtATime) {
    auto calculus = risk::RiskCalculus::standard();
    UncertainRiskInputs inputs;
    inputs.primary_loss = LevelRange(Level::Low, Level::VeryHigh);  // wide
    inputs.contact_frequency = LevelRange(Level::High);             // exact

    auto report = analyze_risk_sensitivity(calculus, inputs);
    ASSERT_EQ(report.factors.size(), 6u);

    const SensitivityReport* pl = nullptr;
    const SensitivityReport* cf = nullptr;
    for (const auto& factor : report.factors) {
        if (factor.factor == "PL") pl = &factor;
        if (factor.factor == "CF") cf = &factor;
    }
    ASSERT_NE(pl, nullptr);
    ASSERT_NE(cf, nullptr);
    EXPECT_TRUE(pl->sensitive);
    EXPECT_FALSE(cf->sensitive);  // exact input cannot be sensitive
}

TEST(Sensitivity, JointRangeContainsOneAtATimeRanges) {
    // Property: the joint sweep is at least as wide as any single-factor
    // sweep.
    auto calculus = risk::RiskCalculus::standard();
    UncertainRiskInputs inputs;
    inputs.threat_capability = LevelRange(Level::Low, Level::VeryHigh);
    inputs.resistance_strength = LevelRange(Level::Low, Level::High);
    inputs.primary_loss = LevelRange(Level::Medium, Level::VeryHigh);

    auto report = analyze_risk_sensitivity(calculus, inputs);
    for (const auto& factor : report.factors) {
        EXPECT_LE(report.risk_range.lo, factor.output_range.lo) << factor.factor;
        EXPECT_GE(report.risk_range.hi, factor.output_range.hi) << factor.factor;
    }
}

TEST(Sensitivity, ReportToString) {
    auto report = ora_sensitivity(LevelRange(Level::Low, Level::VeryHigh),
                                  LevelRange(Level::Low), true);
    const std::string text = report.to_string();
    EXPECT_NE(text.find("LM"), std::string::npos);
    EXPECT_NE(text.find("SENSITIVE"), std::string::npos);
}

}  // namespace
}  // namespace cprisk::uncertainty
