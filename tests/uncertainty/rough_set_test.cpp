// Rough set theory: approximations, regions, dependency, reducts.
#include <gtest/gtest.h>

#include "uncertainty/rough_set.hpp"

namespace cprisk::uncertainty {
namespace {

/// Classic small decision table: scenarios with exposure/severity attributes
/// deciding a risk class; two objects are indiscernible but disagree on the
/// decision, creating a boundary region.
InformationSystem risk_table() {
    InformationSystem table;
    // exposure, severity -> decision
    EXPECT_TRUE(table.add_object({{"exposure", "public"}, {"severity", "high"}}, "high").ok());
    EXPECT_TRUE(table.add_object({{"exposure", "public"}, {"severity", "low"}}, "medium").ok());
    EXPECT_TRUE(table.add_object({{"exposure", "internal"}, {"severity", "high"}}, "high").ok());
    EXPECT_TRUE(table.add_object({{"exposure", "internal"}, {"severity", "low"}}, "low").ok());
    // Conflicting duplicates of row 0's attributes:
    EXPECT_TRUE(table.add_object({{"exposure", "public"}, {"severity", "high"}}, "medium").ok());
    return table;
}

TEST(RoughSet, RectangularityEnforced) {
    InformationSystem table;
    ASSERT_TRUE(table.add_object({{"a", "1"}, {"b", "2"}}, "d").ok());
    EXPECT_FALSE(table.add_object({{"a", "1"}}, "d").ok());
    EXPECT_FALSE(table.add_object({{"a", "1"}, {"c", "2"}}, "d").ok());
}

TEST(RoughSet, EquivalenceClasses) {
    auto table = risk_table();
    auto classes = table.equivalence_classes({"exposure"});
    EXPECT_EQ(classes.size(), 2u);  // public / internal
    classes = table.equivalence_classes({"exposure", "severity"});
    EXPECT_EQ(classes.size(), 4u);  // (public,high) class holds objects 0 and 4
}

TEST(RoughSet, Approximations) {
    auto table = risk_table();
    const auto high = table.decision_class("high");
    EXPECT_EQ(high.size(), 2u);  // objects 0, 2

    const std::vector<std::string> attrs = {"exposure", "severity"};
    auto lower = table.lower_approximation(high, attrs);
    // Object 0 shares its class with object 4 (decision medium) -> only
    // object 2 is certainly high.
    EXPECT_EQ(lower, (std::set<std::size_t>{2}));

    auto upper = table.upper_approximation(high, attrs);
    EXPECT_EQ(upper, (std::set<std::size_t>{0, 2, 4}));
}

TEST(RoughSet, Regions) {
    auto table = risk_table();
    auto regions = table.regions("high", {"exposure", "severity"});
    EXPECT_EQ(regions.positive, (std::set<std::size_t>{2}));
    EXPECT_EQ(regions.boundary, (std::set<std::size_t>{0, 4}));
    EXPECT_EQ(regions.negative, (std::set<std::size_t>{1, 3}));
    // The three regions partition the universe.
    EXPECT_EQ(regions.positive.size() + regions.boundary.size() + regions.negative.size(),
              table.object_count());
}

TEST(RoughSet, ConsistentTableHasEmptyBoundary) {
    InformationSystem table;
    ASSERT_TRUE(table.add_object({{"x", "1"}}, "yes").ok());
    ASSERT_TRUE(table.add_object({{"x", "2"}}, "no").ok());
    auto regions = table.regions("yes", {"x"});
    EXPECT_TRUE(regions.boundary.empty());
    EXPECT_EQ(regions.positive.size(), 1u);
}

TEST(RoughSet, DependencyDegree) {
    auto table = risk_table();
    // Objects 0 and 4 are inconsistent: 3 of 5 objects are in some positive
    // region.
    EXPECT_DOUBLE_EQ(table.dependency_degree({"exposure", "severity"}), 3.0 / 5.0);
    // Exposure alone distinguishes even less.
    EXPECT_LE(table.dependency_degree({"exposure"}),
              table.dependency_degree({"exposure", "severity"}));
}

TEST(RoughSet, LowerSubsetOfUpperProperty) {
    // Property: for every attribute subset and decision value, lower ⊆
    // target ⊆ upper.
    auto table = risk_table();
    const std::vector<std::vector<std::string>> attr_sets = {
        {"exposure"}, {"severity"}, {"exposure", "severity"}};
    for (const auto& attrs : attr_sets) {
        for (const std::string decision : {"high", "medium", "low"}) {
            auto target = table.decision_class(decision);
            auto lower = table.lower_approximation(target, attrs);
            auto upper = table.upper_approximation(target, attrs);
            EXPECT_TRUE(std::includes(target.begin(), target.end(), lower.begin(), lower.end()));
            EXPECT_TRUE(std::includes(upper.begin(), upper.end(), target.begin(), target.end()));
        }
    }
}

TEST(RoughSet, Reducts) {
    // severity alone determines the decision here; exposure is redundant.
    InformationSystem table;
    ASSERT_TRUE(table.add_object({{"exposure", "public"}, {"severity", "high"}}, "high").ok());
    ASSERT_TRUE(table.add_object({{"exposure", "internal"}, {"severity", "high"}}, "high").ok());
    ASSERT_TRUE(table.add_object({{"exposure", "public"}, {"severity", "low"}}, "low").ok());
    ASSERT_TRUE(table.add_object({{"exposure", "internal"}, {"severity", "low"}}, "low").ok());
    auto reducts = table.reducts();
    ASSERT_EQ(reducts.size(), 1u);
    EXPECT_EQ(reducts[0], (std::vector<std::string>{"severity"}));
}

TEST(RoughSet, MultipleReducts) {
    // Both attributes individually determine the decision.
    InformationSystem table;
    ASSERT_TRUE(table.add_object({{"a", "1"}, {"b", "x"}}, "p").ok());
    ASSERT_TRUE(table.add_object({{"a", "2"}, {"b", "y"}}, "q").ok());
    auto reducts = table.reducts();
    EXPECT_EQ(reducts.size(), 2u);
}

}  // namespace
}  // namespace cprisk::uncertainty
