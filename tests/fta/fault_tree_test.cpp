// FTA baseline: tree construction, minimal cut sets, qualitative top
// likelihood, and the EPA -> FTA bridge on the case study.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/antichain.hpp"

#include "core/watertank.hpp"
#include "fta/fault_tree.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::fta {
namespace {

FaultTree classic_tree() {
    // top = OR(and1, e3); and1 = AND(e1, e2)
    FaultTree tree;
    EXPECT_TRUE(tree.add_event({"e1", "", qual::Level::Low}).ok());
    EXPECT_TRUE(tree.add_event({"e2", "", qual::Level::Medium}).ok());
    EXPECT_TRUE(tree.add_event({"e3", "", qual::Level::VeryLow}).ok());
    EXPECT_TRUE(tree.add_gate({"and1", GateType::And, {"e1", "e2"}}).ok());
    EXPECT_TRUE(tree.add_gate({"top", GateType::Or, {"and1", "e3"}}).ok());
    EXPECT_TRUE(tree.set_top("top").ok());
    return tree;
}

TEST(FaultTree, Validation) {
    auto tree = classic_tree();
    EXPECT_TRUE(tree.validate().ok());

    FaultTree no_top;
    ASSERT_TRUE(no_top.add_event({"e", "", qual::Level::Low}).ok());
    EXPECT_FALSE(no_top.validate().ok());

    FaultTree dangling;
    ASSERT_TRUE(dangling.add_gate({"g", GateType::Or, {"ghost"}}).ok());
    ASSERT_TRUE(dangling.set_top("g").ok());
    EXPECT_FALSE(dangling.validate().ok());
}

TEST(FaultTree, CycleDetected) {
    FaultTree tree;
    ASSERT_TRUE(tree.add_event({"e", "", qual::Level::Low}).ok());
    ASSERT_TRUE(tree.add_gate({"g1", GateType::Or, {"g2"}}).ok());
    ASSERT_TRUE(tree.add_gate({"g2", GateType::Or, {"g1", "e"}}).ok());
    ASSERT_TRUE(tree.set_top("g1").ok());
    auto result = tree.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().find("cycle"), std::string::npos);
}

TEST(FaultTree, DuplicateAndEmptyRejected) {
    FaultTree tree;
    ASSERT_TRUE(tree.add_event({"x", "", qual::Level::Low}).ok());
    EXPECT_FALSE(tree.add_event({"x", "", qual::Level::Low}).ok());
    EXPECT_FALSE(tree.add_gate({"x", GateType::Or, {"x"}}).ok());
    EXPECT_FALSE(tree.add_gate({"g", GateType::Or, {}}).ok());
    EXPECT_FALSE(tree.set_top("ghost").ok());
}

TEST(FaultTree, MinimalCutSets) {
    auto cut_sets = classic_tree().minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok()) << cut_sets.error();
    // {e3} and {e1, e2}.
    ASSERT_EQ(cut_sets.value().size(), 2u);
    EXPECT_EQ(cut_sets.value()[0], (CutSet{"e3"}));
    EXPECT_EQ(cut_sets.value()[1], (CutSet{"e1", "e2"}));
}

TEST(FaultTree, AbsorptionRemovesSupersets) {
    // top = OR(e1, AND(e1, e2)): {e1} absorbs {e1,e2}.
    FaultTree tree;
    ASSERT_TRUE(tree.add_event({"e1", "", qual::Level::Low}).ok());
    ASSERT_TRUE(tree.add_event({"e2", "", qual::Level::Low}).ok());
    ASSERT_TRUE(tree.add_gate({"and1", GateType::And, {"e1", "e2"}}).ok());
    ASSERT_TRUE(tree.add_gate({"top", GateType::Or, {"e1", "and1"}}).ok());
    ASSERT_TRUE(tree.set_top("top").ok());
    auto cut_sets = tree.minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok());
    ASSERT_EQ(cut_sets.value().size(), 1u);
    EXPECT_EQ(cut_sets.value()[0], (CutSet{"e1"}));
}

TEST(FaultTree, NestedGates) {
    // top = AND(OR(a,b), OR(c,d)) -> 4 minimal cut sets of size 2.
    FaultTree tree;
    for (const char* id : {"a", "b", "c", "d"}) {
        ASSERT_TRUE(tree.add_event({id, "", qual::Level::Low}).ok());
    }
    ASSERT_TRUE(tree.add_gate({"or1", GateType::Or, {"a", "b"}}).ok());
    ASSERT_TRUE(tree.add_gate({"or2", GateType::Or, {"c", "d"}}).ok());
    ASSERT_TRUE(tree.add_gate({"top", GateType::And, {"or1", "or2"}}).ok());
    ASSERT_TRUE(tree.set_top("top").ok());
    auto cut_sets = tree.minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok());
    EXPECT_EQ(cut_sets.value().size(), 4u);
}

TEST(FaultTree, TopLikelihood) {
    // OR picks the most likely path: single event e3 (VL) vs AND(L, M)
    // degraded by one step: min(L,M)=L -> VL. Top = max(VL, VL) = VL.
    auto likelihood = classic_tree().top_likelihood();
    ASSERT_TRUE(likelihood.ok());
    EXPECT_EQ(likelihood.value(), qual::Level::VeryLow);
}

TEST(FaultTree, SingleEventDominates) {
    FaultTree tree;
    ASSERT_TRUE(tree.add_event({"rare", "", qual::Level::VeryLow}).ok());
    ASSERT_TRUE(tree.add_event({"common", "", qual::Level::High}).ok());
    ASSERT_TRUE(tree.add_gate({"top", GateType::Or, {"rare", "common"}}).ok());
    ASSERT_TRUE(tree.set_top("top").ok());
    EXPECT_EQ(tree.top_likelihood().value(), qual::Level::High);
}

TEST(FaultTree, Importance) {
    auto tree = classic_tree();
    // e3 sits in the likeliest (equal) cut set on its own.
    EXPECT_EQ(tree.importance("e3").value(), qual::Level::VeryLow);
    EXPECT_EQ(tree.importance("e1").value(), qual::Level::VeryLow);
    EXPECT_FALSE(tree.importance("ghost").ok());
}

TEST(FaultTree, ToStringRendersStructure) {
    const std::string text = classic_tree().to_string();
    EXPECT_NE(text.find("top (OR)"), std::string::npos);
    EXPECT_NE(text.find("and1 (AND)"), std::string::npos);
    EXPECT_NE(text.find("e3 [VL]"), std::string::npos);
}

// --- EPA -> FTA bridge on the case study -----------------------------------

class FtaBridgeFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = core::WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new core::WaterTankCaseStudy(std::move(built).value());

        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = cs_->horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(cs_->system, cs_->requirements,
                                                         cs_->mitigations, options);
        ASSERT_TRUE(epa.ok()) << epa.error();

        // Exhaustive verdicts over fault combinations (no mitigations).
        security::ScenarioSpaceOptions space_options;
        space_options.max_simultaneous_faults = 2;
        space_options.include_attack_scenarios = false;
        auto space = security::ScenarioSpace::build(cs_->system, cs_->matrix,
                                                    security::standard_threat_actors(),
                                                    space_options);
        auto verdicts = epa.value().evaluate_all(space, {});
        ASSERT_TRUE(verdicts.ok()) << verdicts.error();
        verdicts_ = new std::vector<epa::ScenarioVerdict>(std::move(verdicts).value());
    }
    static void TearDownTestSuite() {
        delete verdicts_;
        delete cs_;
        verdicts_ = nullptr;
        cs_ = nullptr;
    }

    static core::WaterTankCaseStudy* cs_;
    static std::vector<epa::ScenarioVerdict>* verdicts_;
};

core::WaterTankCaseStudy* FtaBridgeFixture::cs_ = nullptr;
std::vector<epa::ScenarioVerdict>* FtaBridgeFixture::verdicts_ = nullptr;

TEST_F(FtaBridgeFixture, R1TreeHasExpectedMinimalCutSets) {
    auto tree = from_verdicts("r1", *verdicts_, cs_->system);
    ASSERT_TRUE(tree.ok()) << tree.error();
    ASSERT_TRUE(tree.value().validate().ok());
    auto cut_sets = tree.value().minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok());
    // The overflow hazard has two first-order causes: F2 (output valve stuck
    // closed) and F4 (workstation compromise); every multi-fault violating
    // combination contains one of them and is absorbed.
    std::set<CutSet> expected = {{"output_valve.stuck_at_closed"}, {"workstation.infected"}};
    std::set<CutSet> actual(cut_sets.value().begin(), cut_sets.value().end());
    // Additional independent causes may exist (e.g. controller compromise);
    // the two canonical ones must be present as singletons.
    for (const CutSet& cut : expected) {
        EXPECT_TRUE(actual.count(cut) > 0) << "missing cut set";
    }
    for (const CutSet& cut : actual) {
        // Minimality: no cut set may strictly contain a canonical singleton.
        for (const CutSet& singleton : expected) {
            if (cut != singleton) {
                EXPECT_FALSE(std::includes(cut.begin(), cut.end(), singleton.begin(),
                                           singleton.end()))
                    << "absorption failed";
            }
        }
    }
}

TEST_F(FtaBridgeFixture, R2TreeRequiresAlarmSuppression) {
    auto tree = from_verdicts("r2", *verdicts_, cs_->system);
    ASSERT_TRUE(tree.ok()) << tree.error();
    auto cut_sets = tree.value().minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok());
    // R2 (missed alert) needs overflow AND a silenced operator view: either
    // the single-point workstation compromise, or F2 combined with an
    // alarm-path fault.
    for (const CutSet& cut : cut_sets.value()) {
        const bool has_compromise =
            cut.count("workstation.infected") > 0 || cut.count("tank_ctrl.compromised") > 0;
        const bool has_overflow_and_silence =
            cut.size() >= 2 && cut.count("output_valve.stuck_at_closed") > 0;
        EXPECT_TRUE(has_compromise || has_overflow_and_silence)
            << "unexpected cut set for r2";
    }
}

TEST_F(FtaBridgeFixture, TopLikelihoodMatchesDominantCause) {
    auto tree = from_verdicts("r1", *verdicts_, cs_->system);
    ASSERT_TRUE(tree.ok());
    auto top = tree.value().top_likelihood();
    ASSERT_TRUE(top.ok());
    // The workstation infection (M likelihood) dominates the rare valve
    // fault: the FTA qualitative top likelihood agrees.
    EXPECT_EQ(top.value(), qual::Level::Medium);
}

TEST_F(FtaBridgeFixture, UnviolatedRequirementYieldsNoTree) {
    EXPECT_FALSE(from_verdicts("nonexistent", *verdicts_, cs_->system).ok());
}

TEST(FaultTree, MinimalCutSetsMatchSharedAntichainAbsorption) {
    // Differential for the extracted absorption (common/antichain.hpp): an
    // OR-of-ANDs tree expands to exactly its gate family, so its minimal
    // cut sets must equal minimal_sets() applied to the family directly.
    std::uint32_t state = 0x9e3779b9u;
    const auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return state >> 16;
    };
    FaultTree tree;
    for (int e = 0; e < 8; ++e) {
        ASSERT_TRUE(tree.add_event({"e" + std::to_string(e), "", qual::Level::Low}).ok());
    }
    std::vector<CutSet> family;
    Gate top{"top", GateType::Or, {}};
    for (int g = 0; g < 12; ++g) {
        CutSet members;
        const std::size_t size = 1 + next() % 3;
        while (members.size() < size) members.insert("e" + std::to_string(next() % 8));
        Gate gate{"g" + std::to_string(g), GateType::And,
                  std::vector<std::string>(members.begin(), members.end())};
        ASSERT_TRUE(tree.add_gate(std::move(gate)).ok());
        top.inputs.push_back("g" + std::to_string(g));
        family.push_back(std::move(members));
    }
    ASSERT_TRUE(tree.add_gate(std::move(top)).ok());
    ASSERT_TRUE(tree.set_top("top").ok());

    auto cut_sets = tree.minimal_cut_sets();
    ASSERT_TRUE(cut_sets.ok()) << cut_sets.error();
    EXPECT_EQ(cut_sets.value(), minimal_sets(family));
}

}  // namespace
}  // namespace cprisk::fta
