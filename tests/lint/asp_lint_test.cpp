#include "lint/asp_lint.hpp"

#include <gtest/gtest.h>

#include "asp/parser.hpp"
#include "common/diagnostics.hpp"

namespace cprisk::lint {
namespace {

asp::Program parse(const std::string& source) {
    DiagnosticSink sink;
    auto program = asp::parse_program(source, sink);
    EXPECT_TRUE(program.has_value()) << render_text(sink.diagnostics());
    return program.has_value() ? std::move(*program) : asp::Program{};
}

std::vector<Diagnostic> lint(const std::string& source, AspLintOptions options = {}) {
    const asp::Program program = parse(source);
    DiagnosticSink sink;
    lint_program(program, options, sink);
    return sink.diagnostics();
}

std::vector<Diagnostic> with_rule(const std::vector<Diagnostic>& diagnostics,
                                  const std::string& rule) {
    std::vector<Diagnostic> matching;
    for (const Diagnostic& d : diagnostics) {
        if (d.rule == rule) matching.push_back(d);
    }
    return matching;
}

TEST(AspLintTest, CleanProgramHasNoFindings) {
    const auto diagnostics = lint("p(a). p(b).\nq(X) :- p(X).\n#show q/1.\n");
    EXPECT_TRUE(diagnostics.empty()) << render_text(diagnostics);
}

TEST(AspLintTest, UnsafeVariableIsAnError) {
    const auto unsafe = with_rule(lint("p(a).\nbad(X) :- p(a).\n#show bad/1.\n"),
                                  "asp-unsafe-var");
    ASSERT_EQ(unsafe.size(), 1u);
    EXPECT_EQ(unsafe[0].severity, Severity::Error);
    EXPECT_NE(unsafe[0].message.find("unsafe variable 'X'"), std::string::npos);
}

TEST(AspLintTest, LexerLineAndColumnSurviveIntoDiagnostics) {
    // Regression: token positions must flow lexer -> parser -> AST -> lint.
    // The offending rule starts at line 3, column 3 (two leading spaces).
    const auto unsafe = with_rule(lint("p(a).\n\n  bad(X) :- p(a).\n#show bad/1.\n"),
                                  "asp-unsafe-var");
    ASSERT_EQ(unsafe.size(), 1u);
    EXPECT_EQ(unsafe[0].loc, (SourceLoc{3, 3}));
}

TEST(AspLintTest, ReportsEveryFindingNotJustTheFirst) {
    const auto diagnostics =
        lint("a(X) :- b(a).\nc(X) :- b(a).\nb(a).\n#show a/1.\n#show c/1.\n");
    EXPECT_EQ(with_rule(diagnostics, "asp-unsafe-var").size(), 2u);
}

TEST(AspLintTest, SingletonVariableIsAWarningWithHint) {
    const auto singles =
        with_rule(lint("p(a,b).\nq(X) :- p(X, Y).\n#show q/1.\n"), "asp-singleton-var");
    ASSERT_EQ(singles.size(), 1u);
    EXPECT_EQ(singles[0].severity, Severity::Warning);
    EXPECT_NE(singles[0].message.find("'Y'"), std::string::npos);
    EXPECT_NE(singles[0].hint.find("'_'"), std::string::npos);
}

TEST(AspLintTest, AnonymousVariablesAreNotSingletons) {
    const auto diagnostics = lint("p(a,b).\nq(X) :- p(X, _).\n#show q/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-singleton-var").empty());
}

TEST(AspLintTest, UnsafeVariableIsNotDoubleReportedAsSingleton) {
    const auto diagnostics = lint("bad(X) :- p(a).\np(a).\n#show bad/1.\n");
    EXPECT_EQ(with_rule(diagnostics, "asp-unsafe-var").size(), 1u);
    EXPECT_TRUE(with_rule(diagnostics, "asp-singleton-var").empty());
}

TEST(AspLintTest, UndefinedPredicateIsAWarning) {
    const auto undefined =
        with_rule(lint("q(X) :- missing(X).\n#show q/1.\n"), "asp-undefined-pred");
    ASSERT_EQ(undefined.size(), 1u);
    EXPECT_NE(undefined[0].message.find("missing/1"), std::string::npos);
}

TEST(AspLintTest, ExternalPredicatesAreNeverUndefinedOrUnused) {
    AspLintOptions options;
    options.external_predicates = {"missing"};
    const auto diagnostics = lint("q(X) :- missing(X).\n#show q/1.\n", options);
    EXPECT_TRUE(with_rule(diagnostics, "asp-undefined-pred").empty());
}

TEST(AspLintTest, PredicatesResolveAcrossSources) {
    const asp::Program defines = parse("p(a). p(b).\n");
    const asp::Program uses = parse("q(X) :- p(X).\n#show q/1.\n");
    DiagnosticSink sink;
    lint_programs({ProgramSource{&defines, "a.lp", 0}, ProgramSource{&uses, "b.lp", 0}},
                  AspLintOptions{}, sink);
    EXPECT_TRUE(with_rule(sink.diagnostics(), "asp-undefined-pred").empty());
    EXPECT_TRUE(with_rule(sink.diagnostics(), "asp-unused-pred").empty());
}

TEST(AspLintTest, LineOffsetShiftsReportedLocations) {
    const asp::Program program = parse("bad(X) :- p(a).\np(a).\n#show bad/1.\n");
    DiagnosticSink sink;
    lint_programs({ProgramSource{&program, "bundle.cpm", 40}}, AspLintOptions{}, sink);
    const auto unsafe = with_rule(sink.diagnostics(), "asp-unsafe-var");
    ASSERT_EQ(unsafe.size(), 1u);
    EXPECT_EQ(unsafe[0].loc, (SourceLoc{41, 1}));
    EXPECT_EQ(unsafe[0].file, "bundle.cpm");
}

TEST(AspLintTest, DerivedButNeverUsedIsANote) {
    const auto unused = with_rule(lint("p(a).\n"), "asp-unused-pred");
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0].severity, Severity::Note);
    EXPECT_NE(unused[0].message.find("p/1"), std::string::npos);
}

TEST(AspLintTest, ShowDirectiveCountsAsAUse) {
    const auto diagnostics = lint("p(a).\n#show p/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-unused-pred").empty());
}

TEST(AspLintTest, AssumeUsedSuppressesUnused) {
    AspLintOptions options;
    options.assume_used = {asp::Signature{"p", 1}};
    const auto diagnostics = lint("p(a).\n", options);
    EXPECT_TRUE(with_rule(diagnostics, "asp-unused-pred").empty());
}

TEST(AspLintTest, ArityMismatchIsReportedOncePerPredicate) {
    // p/2 is used but only p/1 is derived: the arity mismatch is the real
    // problem, so the undefined-predicate warning is subsumed.
    const auto diagnostics = lint("p(a).\nq(X) :- p(X, b).\n#show q/1.\n#show p/1.\n");
    const auto arity = with_rule(diagnostics, "asp-arity-mismatch");
    ASSERT_EQ(arity.size(), 1u);
    EXPECT_NE(arity[0].message.find("p/1, p/2"), std::string::npos);
    EXPECT_TRUE(with_rule(diagnostics, "asp-undefined-pred").empty());
}

TEST(AspLintTest, TriviallySatisfiedConstraintIsAnError) {
    const auto unsat = with_rule(lint(":- 1 < 2.\n"), "asp-constraint-unsat");
    ASSERT_EQ(unsat.size(), 1u);
    EXPECT_EQ(unsat[0].severity, Severity::Error);
}

TEST(AspLintTest, DeadConstraintIsANote) {
    const auto diagnostics = lint("p(a).\n:- p(X), 1 > 2.\n#show p/1.\n");
    const auto dead = with_rule(diagnostics, "asp-constraint-dead");
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].severity, Severity::Note);
    EXPECT_TRUE(with_rule(diagnostics, "asp-constraint-unsat").empty());
}

TEST(AspLintTest, OrdinaryConstraintsAreNotFlagged) {
    const auto diagnostics = lint("p(a).\n:- p(X), X != a.\n#show p/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-constraint-unsat").empty());
    EXPECT_TRUE(with_rule(diagnostics, "asp-constraint-dead").empty());
}

TEST(AspLintTest, TemporalPrevResolvesToBasePredicate) {
    const std::string source =
        "#program initial.\nstate(s0).\n#program dynamic.\nstate(X) :- prev_state(X).\n"
        "#show state/1.\n";
    const auto diagnostics = lint(source);
    EXPECT_TRUE(with_rule(diagnostics, "asp-undefined-pred").empty()) << render_text(diagnostics);
    EXPECT_TRUE(with_rule(diagnostics, "asp-unused-pred").empty());
}

TEST(AspLintTest, ParseErrorsCarryLocationThroughSink) {
    DiagnosticSink sink;
    auto program = asp::parse_program("p(a).\nq(X :- p(X).\n", sink);
    EXPECT_FALSE(program.has_value());
    const auto syntax = with_rule(sink.diagnostics(), "asp-syntax");
    ASSERT_EQ(syntax.size(), 1u);
    EXPECT_EQ(syntax[0].loc.line, 2);
}

TEST(AspLintTest, RecursionThroughNegationIsReportedWithCycleSignatures) {
    const auto findings = with_rule(lint("a :- not b.\nb :- not a.\n#show a/0.\n#show b/0.\n"),
                                    "asp-unstratified-negation");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].severity, Severity::Warning);
    EXPECT_NE(findings[0].message.find("a/0"), std::string::npos);
    EXPECT_NE(findings[0].message.find("b/0"), std::string::npos);
    EXPECT_FALSE(findings[0].hint.empty());
}

TEST(AspLintTest, StratifiedNegationIsNotFlagged) {
    const auto diagnostics =
        lint("p(a). q(X) :- p(X), not r(X). r(b).\n#show q/1.\n#show r/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-unstratified-negation").empty())
        << render_text(diagnostics);
}

TEST(AspLintTest, PositiveRecursionIsANote) {
    const auto diagnostics = lint(
        "edge(a,b). edge(b,c).\n"
        "reach(X,Y) :- edge(X,Y).\n"
        "reach(X,Z) :- reach(X,Y), edge(Y,Z).\n"
        "#show reach/2.\n");
    const auto loops = with_rule(diagnostics, "asp-positive-loop");
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].severity, Severity::Note);
    EXPECT_NE(loops[0].message.find("reach/2"), std::string::npos);
}

TEST(AspLintTest, UnstratifiedComponentIsNotAlsoAPositiveLoop) {
    // a <-> c positively plus a <-> b through negation: one component, one
    // unstratified-negation finding, no duplicate positive-loop note.
    const auto diagnostics = lint(
        "a :- not b, c.\nb :- not a.\nc :- a.\n"
        "#show a/0.\n#show b/0.\n#show c/0.\n");
    EXPECT_EQ(with_rule(diagnostics, "asp-unstratified-negation").size(), 1u);
    EXPECT_TRUE(with_rule(diagnostics, "asp-positive-loop").empty());
}

TEST(AspLintTest, DerivedUsedButUnreachablePredicateIsANote) {
    // helper feeds r, r feeds nothing shown: helper is used (so not
    // asp-unused-pred) yet can never influence an output.
    const auto diagnostics = lint(
        "p(a).\nq(X) :- p(X).\nhelper(X) :- p(X).\nr(X) :- helper(X).\n#show q/1.\n");
    const auto dead = with_rule(diagnostics, "asp-unreachable-from-show");
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].severity, Severity::Note);
    EXPECT_NE(dead[0].message.find("helper/1"), std::string::npos);
    // r itself is plain unused, covered by asp-unused-pred instead.
    EXPECT_EQ(with_rule(diagnostics, "asp-unused-pred").size(), 1u);
}

TEST(AspLintTest, UnreachableRuleIsSilentWithoutShowDirectives) {
    const auto diagnostics = lint("p(a).\nq(X) :- p(X).\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-unreachable-from-show").empty());
}

TEST(AspLintTest, AssumeUsedSignaturesRootReachability) {
    AspLintOptions options;
    options.assume_used = {asp::Signature{"q", 1}};
    const auto diagnostics = lint(
        "p(a).\nq(X) :- p(X).\ndead(X) :- p(X).\nsink(X) :- dead(X).\n", options);
    const auto unreachable = with_rule(diagnostics, "asp-unreachable-from-show");
    ASSERT_EQ(unreachable.size(), 1u);
    EXPECT_NE(unreachable[0].message.find("dead/1"), std::string::npos);
}

TEST(AspLintTest, ConstraintBodiesCountAsOutputs) {
    const auto diagnostics =
        lint("p(a).\nq(X) :- p(X).\n:- q(b).\n#show p/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-unreachable-from-show").empty())
        << render_text(diagnostics);
}

TEST(AspLintTest, ChoiceRuleVariablesBoundByConditionAreSafe) {
    const auto diagnostics =
        lint("item(a). item(b).\n{ pick(X) : item(X) }.\n#show pick/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-unsafe-var").empty()) << render_text(diagnostics);
}

TEST(AspLintTest, DuplicateRuleIsRedundant) {
    const auto redundant = with_rule(
        lint("p(a).\nq(X) :- p(X).\nq(X) :- p(X).\n#show q/1.\n"), "asp-redundant-rule");
    ASSERT_EQ(redundant.size(), 1u);
    EXPECT_EQ(redundant[0].severity, Severity::Note);
    EXPECT_NE(redundant[0].message.find("duplicates"), std::string::npos);
    EXPECT_EQ(redundant[0].loc.line, 3);
}

TEST(AspLintTest, StaticallyFalseBodyLiteralIsRedundant) {
    // `not p(a)` can never hold: p(a) is a fact, so the rule never fires.
    const auto redundant = with_rule(
        lint("p(a).\nq(b) :- not p(a).\n#show q/1.\n#show p/1.\n"), "asp-redundant-rule");
    ASSERT_EQ(redundant.size(), 1u);
    EXPECT_NE(redundant[0].message.find("statically false"), std::string::npos);
}

TEST(AspLintTest, ConstantAtomOverRuleDerivedPredicate) {
    // r(a) is derived by a rule, yet the ternary fixpoint proves it true in
    // every answer set — the ground literal 'r(a)' in the third rule is
    // vacuous.
    const auto diagnostics = lint(
        "p(a).\nr(X) :- p(X).\n{ c }.\nq(b) :- r(a), not c.\n#show q/1.\n#show c/1.\n");
    const auto constant = with_rule(diagnostics, "asp-constant-atom");
    ASSERT_EQ(constant.size(), 1u);
    EXPECT_EQ(constant[0].severity, Severity::Note);
    EXPECT_NE(constant[0].message.find("'r(a)'"), std::string::npos);
}

TEST(AspLintTest, FactReferencesAreNotConstantAtoms) {
    // Ground literals over plain facts are idiomatic flags; only
    // rule-derived constants are reported.
    const auto diagnostics = lint("start.\n{ c }.\nq(b) :- start, not c.\n#show q/1.\n"
                                  "#show c/1.\n#show start/0.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-constant-atom").empty())
        << render_text(diagnostics);
}

TEST(AspLintTest, UnknownLiteralsEscapeTheAbsintRules) {
    // c is an open choice: 'not c' stays Unknown, so neither rule fires.
    const auto diagnostics =
        lint("{ c }.\nq(b) :- not c.\n#show q/1.\n#show c/1.\n");
    EXPECT_TRUE(with_rule(diagnostics, "asp-constant-atom").empty());
    EXPECT_TRUE(with_rule(diagnostics, "asp-redundant-rule").empty());
}

TEST(AspLintTest, AbsintRulesSkipOpenVocabularies) {
    // With an external vocabulary the program is a fragment of a larger
    // whole; whole-program conclusions would be unsound.
    AspLintOptions options;
    options.external_predicates = {"p"};
    const auto diagnostics =
        lint("q(b) :- not p(a).\np(a).\n#show q/1.\n#show p/1.\n", options);
    EXPECT_TRUE(with_rule(diagnostics, "asp-redundant-rule").empty())
        << render_text(diagnostics);
}

}  // namespace
}  // namespace cprisk::lint
