#include "common/diagnostics.hpp"

#include <gtest/gtest.h>

namespace cprisk {
namespace {

TEST(DiagnosticsTest, CollectsAllFindingsInsteadOfStoppingAtFirst) {
    DiagnosticSink sink;
    sink.error("rule-a", "first");
    sink.warning("rule-b", "second");
    sink.note("rule-c", "third");
    EXPECT_EQ(sink.diagnostics().size(), 3u);
    EXPECT_EQ(sink.count(Severity::Error), 1u);
    EXPECT_EQ(sink.count(Severity::Warning), 1u);
    EXPECT_EQ(sink.count(Severity::Note), 1u);
    EXPECT_TRUE(sink.has_errors());
    EXPECT_TRUE(sink.has_warnings());
}

TEST(DiagnosticsTest, DefaultFileLabelAppliesToUnlabelledReports) {
    DiagnosticSink sink;
    sink.set_file("model.cpm");
    sink.error("rule", "message", SourceLoc{3, 7});
    ASSERT_EQ(sink.diagnostics().size(), 1u);
    EXPECT_EQ(sink.diagnostics()[0].file, "model.cpm");
    EXPECT_EQ(sink.diagnostics()[0].to_string(), "model.cpm:3:7: error: message [rule]");
}

TEST(DiagnosticsTest, ToStringOmitsUnknownParts) {
    Diagnostic diagnostic;
    diagnostic.severity = Severity::Warning;
    diagnostic.rule = "some-rule";
    diagnostic.message = "something odd";
    EXPECT_EQ(diagnostic.to_string(), "warning: something odd [some-rule]");
}

TEST(DiagnosticsTest, AbsorbShiftsLinesAndLabelsFile) {
    DiagnosticSink fragment;
    fragment.error("asp-syntax", "boom", SourceLoc{2, 5});
    fragment.warning("w", "no location");

    DiagnosticSink sink;
    sink.absorb(fragment, /*line_offset=*/10, "bundle.cpm");
    ASSERT_EQ(sink.diagnostics().size(), 2u);
    EXPECT_EQ(sink.diagnostics()[0].loc, (SourceLoc{12, 5}));
    EXPECT_EQ(sink.diagnostics()[0].file, "bundle.cpm");
    // Unknown locations stay unknown instead of becoming "line 10".
    EXPECT_FALSE(sink.diagnostics()[1].loc.valid());
}

TEST(DiagnosticsTest, SortByLocationIsStableWithinALine) {
    DiagnosticSink sink;
    sink.error("z-first", "reported first", SourceLoc{4, 1});
    sink.error("a-second", "reported second", SourceLoc{4, 1});
    sink.error("earlier-line", "line two", SourceLoc{2, 9});
    sink.sort_by_location();
    EXPECT_EQ(sink.diagnostics()[0].rule, "earlier-line");
    EXPECT_EQ(sink.diagnostics()[1].rule, "z-first");
    EXPECT_EQ(sink.diagnostics()[2].rule, "a-second");
}

TEST(DiagnosticsTest, RenderTextIncludesHintsAndSummary) {
    DiagnosticSink sink;
    sink.set_file("m.cpm");
    sink.error("r1", "bad thing", SourceLoc{1, 2}, "fix it like so");
    sink.warning("r2", "odd thing");
    const std::string text = render_text(sink.diagnostics());
    EXPECT_NE(text.find("m.cpm:1:2: error: bad thing [r1]"), std::string::npos);
    EXPECT_NE(text.find("  hint: fix it like so"), std::string::npos);
    EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"), std::string::npos);
}

TEST(DiagnosticsTest, RenderTextOfNothingIsEmpty) {
    EXPECT_EQ(render_text({}), "");
}

TEST(DiagnosticsTest, RenderJsonEscapesAndCounts) {
    DiagnosticSink sink;
    sink.error("r", "quote \" backslash \\ newline \n end", SourceLoc{1, 1});
    const std::string json = render_json(sink.diagnostics());
    EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n end"), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"warnings\": 0"), std::string::npos);
    EXPECT_EQ(json.rfind("{\n  \"schema_version\": 2,", 0), 0u);
}

TEST(SourceLocTest, ValidityAndToString) {
    EXPECT_FALSE(SourceLoc{}.valid());
    EXPECT_TRUE((SourceLoc{1, 1}).valid());
    EXPECT_EQ((SourceLoc{3, 7}).to_string(), "line 3, column 7");
}

}  // namespace
}  // namespace cprisk
