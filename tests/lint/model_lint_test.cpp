#include "lint/model_lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "common/diagnostics.hpp"
#include "core/loader.hpp"
#include "model/dsl.hpp"

namespace cprisk::lint {
namespace {

std::vector<Diagnostic> lint_text(const std::string& text) {
    DiagnosticSink sink;
    core::BundleSourceMap source_map;
    const core::Bundle bundle = core::load_bundle_lenient(text, sink, &source_map);
    lint_bundle(bundle, source_map, security::AttackMatrix::standard_ics(), sink);
    sink.sort_by_location();
    return sink.diagnostics();
}

std::vector<Diagnostic> with_rule(const std::vector<Diagnostic>& diagnostics,
                                  const std::string& rule) {
    std::vector<Diagnostic> matching;
    for (const Diagnostic& d : diagnostics) {
        if (d.rule == rule) matching.push_back(d);
    }
    return matching;
}

constexpr const char* kCleanBundle =
    "component plc controller exposure=internal\n"
    "component pump actuator\n"
    "fault pump stuck stuck_at\n"
    "relation plc triggering pump\n"
    "behavior plc <<<\n"
    "running(pump) :- component(pump), not eff_fault(pump, stuck).\n"
    "eff_fault(C, F) :- active_fault(C, F).\n"
    ">>>\n"
    "requirement r1 never \"active_fault(pump, stuck)\"\n"
    "requirement r2 protects pump\n";

TEST(ModelLintTest, CleanBundleHasNoErrorsOrWarnings) {
    const auto diagnostics = lint_text(kCleanBundle);
    for (const Diagnostic& d : diagnostics) {
        EXPECT_EQ(d.severity, Severity::Note) << d.to_string();
    }
}

TEST(ModelLintTest, StaticallyUnviolableRequirementIsFlagged) {
    // eff_fault is derivable (so model-underivable-requirement stays quiet),
    // yet the open ternary analysis proves its violation unreachable under
    // every fault combination — the engine would never confirm a hazard for
    // r1.
    const auto diagnostics = lint_text(
        "component plc controller exposure=internal\n"
        "component pump actuator\n"
        "fault pump stuck stuck_at\n"
        "relation plc triggering pump\n"
        "behavior plc <<<\n"
        "eff_fault(C, F) :- active_fault(C, F).\n"
        ">>>\n"
        "requirement r1 never \"eff_fault(pump, stuck)\"\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-underivable-requirement").empty());
    const auto unreachable = with_rule(diagnostics, "model-hazard-unreachable");
    ASSERT_EQ(unreachable.size(), 1u) << render_text(diagnostics);
    EXPECT_EQ(unreachable[0].severity, Severity::Warning);
    EXPECT_NE(unreachable[0].message.find("'r1'"), std::string::npos);
}

TEST(ModelLintTest, UnderivableRequirementIsNotAlsoReportedUnreachable) {
    const auto diagnostics = lint_text(
        "component plc controller exposure=internal\n"
        "fault plc crash omission\n"
        "requirement r1 never \"meltdown(plc)\"\n");
    EXPECT_EQ(with_rule(diagnostics, "model-underivable-requirement").size(), 1u);
    EXPECT_TRUE(with_rule(diagnostics, "model-hazard-unreachable").empty())
        << render_text(diagnostics);
}

TEST(ModelLintTest, LenientLoaderReportsAllStructuralProblemsAtOnce) {
    DiagnosticSink sink;
    core::BundleSourceMap source_map;
    core::load_bundle_lenient(
        "component a equipment\n"
        "fault ghost leak omission\n"
        "relation a quantity_flow nowhere\n"
        "behavior missing <<<\n"
        "p(a).\n"
        ">>>\n",
        sink, &source_map);
    EXPECT_EQ(with_rule(sink.diagnostics(), "model-unknown-fault-target").size(), 1u);
    EXPECT_EQ(with_rule(sink.diagnostics(), "model-dangling-relation").size(), 1u);
    EXPECT_EQ(with_rule(sink.diagnostics(), "model-unknown-behavior-component").size(), 1u);
    EXPECT_EQ(sink.count(Severity::Error), 3u);
}

TEST(ModelLintTest, FragmentDiagnosticsUseFileAbsoluteLines) {
    const auto diagnostics = lint_text(
        "component plc controller\n"   // line 1
        "behavior plc <<<\n"           // line 2
        "ok(plc).\n"                   // line 3
        "bad(X) :- ok(plc).\n"         // line 4
        ">>>\n"
        "requirement r1 never \"ok(plc)\"\n");
    const auto unsafe = with_rule(diagnostics, "asp-unsafe-var");
    ASSERT_EQ(unsafe.size(), 1u);
    EXPECT_EQ(unsafe[0].loc.line, 4);
}

TEST(ModelLintTest, UnknownComponentRefInFragmentIsAnError) {
    const auto refs = with_rule(
        lint_text("component plc controller\n"
                  "behavior plc <<<\n"
                  "eff_fault(turbine, stuck) :- active_fault(plc, anything).\n"
                  ">>>\n"),
        "model-unknown-component-ref");
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_EQ(refs[0].severity, Severity::Error);
    EXPECT_NE(refs[0].message.find("'turbine'"), std::string::npos);
    EXPECT_EQ(refs[0].loc.line, 3);
}

TEST(ModelLintTest, VariableComponentArgumentsAreNotFlagged) {
    const auto diagnostics = lint_text(
        "component plc controller\n"
        "behavior plc <<<\n"
        "eff_fault(C, F) :- active_fault(C, F).\n"
        ">>>\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-unknown-component-ref").empty());
}

TEST(ModelLintTest, PublicExposureWithoutMatrixCoverageIsAWarning) {
    // ElementType "material" has no technique in the standard ICS matrix.
    const auto uncovered = with_rule(
        lint_text("component pipe material exposure=public\n"), "model-uncovered-exposure");
    ASSERT_EQ(uncovered.size(), 1u);
    EXPECT_EQ(uncovered[0].severity, Severity::Warning);
    EXPECT_EQ(uncovered[0].loc.line, 1);
}

TEST(ModelLintTest, CoveredPublicExposureIsClean) {
    const auto diagnostics = lint_text("component ws node exposure=public\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-uncovered-exposure").empty());
}

TEST(ModelLintTest, UnderivableRequirementAtomIsAWarning) {
    const auto underivable = with_rule(
        lint_text("component plc controller\n"
                  "behavior plc <<<\n"
                  "ok(plc).\n"
                  "#show ok/1.\n"
                  ">>>\n"
                  "requirement r9 never \"meltdown(plc)\"\n"),
        "model-underivable-requirement");
    ASSERT_EQ(underivable.size(), 1u);
    EXPECT_NE(underivable[0].message.find("r9"), std::string::npos);
    EXPECT_EQ(underivable[0].loc.line, 6);
}

TEST(ModelLintTest, RequirementAtomsDerivedByFragmentsAreClean) {
    const auto diagnostics = lint_text(kCleanBundle);
    EXPECT_TRUE(with_rule(diagnostics, "model-underivable-requirement").empty());
}

TEST(ModelLintTest, RequirementLinesDoNotShiftModelDiagnostics) {
    // The requirement on line 2 is removed from the model text; a placeholder
    // must keep the relation error on line 3.
    DiagnosticSink sink;
    core::load_bundle_lenient(
        "component a equipment\n"
        "requirement r1 protects a\n"
        "relation a quantity_flow nowhere\n",
        sink);
    const auto dangling = with_rule(sink.diagnostics(), "model-dangling-relation");
    ASSERT_EQ(dangling.size(), 1u);
    EXPECT_EQ(dangling[0].loc.line, 3);
}

TEST(ModelLintTest, PublicComponentWithDirectlyActivatableFaultIsAWarning) {
    // A node technique of the standard ICS matrix causes fault "infected";
    // declaring that fault mode on a public component makes the compromise
    // a zero-step attack.
    const auto trivially = with_rule(lint_text("component ws node exposure=public\n"
                                               "fault ws infected compromise\n"),
                                     "model-trivially-compromised");
    ASSERT_EQ(trivially.size(), 1u);
    EXPECT_EQ(trivially[0].severity, Severity::Warning);
    EXPECT_NE(trivially[0].message.find("'ws'"), std::string::npos);
    EXPECT_NE(trivially[0].message.find("'infected'"), std::string::npos);
    EXPECT_EQ(trivially[0].loc.line, 1);
}

TEST(ModelLintTest, InternalExposureIsNotTriviallyCompromised) {
    const auto diagnostics = lint_text(
        "component ws node exposure=internal\n"
        "fault ws infected compromise\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-trivially-compromised").empty());
}

TEST(ModelLintTest, UnmatchedFaultIsNotTriviallyCompromised) {
    // No standard-matrix node technique causes a fault named "odd".
    const auto diagnostics = lint_text(
        "component ws node exposure=public\n"
        "fault ws odd omission\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-trivially-compromised").empty());
}

TEST(ModelLintTest, AssetUnreachableFromEveryEntryPointIsAWarning) {
    const auto diagnostics = lint_text(
        "component ws node exposure=internal\n"
        "component plc controller\n"
        "component island equipment\n"
        "relation ws signal_flow plc\n");
    const auto unreachable = with_rule(diagnostics, "model-unreachable-asset");
    ASSERT_EQ(unreachable.size(), 1u);
    EXPECT_EQ(unreachable[0].severity, Severity::Warning);
    EXPECT_NE(unreachable[0].message.find("'island'"), std::string::npos);
    EXPECT_EQ(unreachable[0].loc.line, 3);
}

TEST(ModelLintTest, UnreachableAssetIsSilentWithoutEntryPoints) {
    // No exposed component: nothing is reachable, but warning on every
    // component would be noise - the model simply has no attack surface.
    const auto diagnostics = lint_text(
        "component a equipment\n"
        "component b equipment\n");
    EXPECT_TRUE(with_rule(diagnostics, "model-unreachable-asset").empty());
}

TEST(ModelLintTest, ConnectedModelHasNoUnreachableAssets) {
    const auto diagnostics = lint_text(kCleanBundle);
    EXPECT_TRUE(with_rule(diagnostics, "model-unreachable-asset").empty());
    EXPECT_TRUE(with_rule(diagnostics, "model-trivially-compromised").empty());
}

TEST(ModelLintTest, GoldenDiagnosticsOverBrokenFixture) {
    const std::string dir = std::string(CPRISK_SOURCE_DIR) + "/tests/lint/fixtures";
    std::ifstream input(dir + "/broken.cpm");
    ASSERT_TRUE(input.good());
    std::ostringstream text;
    text << input.rdbuf();

    DiagnosticSink sink;
    sink.set_file("broken.cpm");
    core::BundleSourceMap source_map;
    const core::Bundle bundle = core::load_bundle_lenient(text.str(), sink, &source_map);
    lint_bundle(bundle, source_map, security::AttackMatrix::standard_ics(), sink);
    sink.sort_by_location();

    std::ifstream golden(dir + "/broken.expected");
    ASSERT_TRUE(golden.good());
    std::ostringstream expected;
    expected << golden.rdbuf();

    EXPECT_EQ(render_text(sink.diagnostics()), expected.str());
    EXPECT_GE(sink.count(Severity::Error), 3u);  // fixture holds >= 3 distinct defects
}

TEST(ModelLintTest, GoldenDiagnosticsOverNonmonotoneFixture) {
    const std::string dir = std::string(CPRISK_SOURCE_DIR) + "/tests/lint/fixtures";
    std::ifstream input(dir + "/nonmonotone.cpm");
    ASSERT_TRUE(input.good());
    std::ostringstream text;
    text << input.rdbuf();

    DiagnosticSink sink;
    sink.set_file("nonmonotone.cpm");
    core::BundleSourceMap source_map;
    const core::Bundle bundle = core::load_bundle_lenient(text.str(), sink, &source_map);
    lint_bundle(bundle, source_map, security::AttackMatrix::standard_ics(), sink);
    sink.sort_by_location();

    std::ifstream golden(dir + "/nonmonotone.expected");
    ASSERT_TRUE(golden.good());
    std::ostringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(render_text(sink.diagnostics()), expected.str());

    // Exactly the certifier note: the fixture is otherwise clean, and the
    // note severity keeps `--werror` runs passing over nonmonotone models.
    const auto notes = with_rule(sink.diagnostics(), "model-nonmonotone-fault");
    ASSERT_EQ(notes.size(), 1u);
    EXPECT_EQ(notes[0].severity, Severity::Note);
    EXPECT_NE(notes[0].message.find("scenario_fault(pump,seized)"), std::string::npos);
    EXPECT_EQ(sink.count(Severity::Error), 0u);
    EXPECT_EQ(sink.count(Severity::Warning), 0u);
}

TEST(ModelLintTest, GoldenJsonSchemaOverGraphFixture) {
    const std::string dir = std::string(CPRISK_SOURCE_DIR) + "/tests/lint/fixtures";
    std::ifstream input(dir + "/graph.cpm");
    ASSERT_TRUE(input.good());
    std::ostringstream text;
    text << input.rdbuf();

    DiagnosticSink sink;
    sink.set_file("graph.cpm");
    core::BundleSourceMap source_map;
    const core::Bundle bundle = core::load_bundle_lenient(text.str(), sink, &source_map);
    lint_bundle(bundle, source_map, security::AttackMatrix::standard_ics(), sink);
    sink.sort_by_location();

    std::ifstream golden(dir + "/graph.expected.json");
    ASSERT_TRUE(golden.good());
    std::ostringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(render_json(sink.diagnostics()), expected.str());

    // The fixture must exercise both rule packs plus the graph/taint rules,
    // so the golden pins the JSON schema for each diagnostic shape.
    std::set<std::string> rules;
    for (const Diagnostic& d : sink.diagnostics()) rules.insert(d.rule);
    for (const char* rule :
         {"asp-unstratified-negation", "asp-positive-loop", "asp-unreachable-from-show",
          "model-trivially-compromised", "model-unreachable-asset", "model-uncovered-exposure",
          "model-underivable-requirement"}) {
        EXPECT_TRUE(rules.count(rule)) << rule;
    }
}

}  // namespace
}  // namespace cprisk::lint
