# Runs the cprisk binary and fails unless it exits with the expected code.
# Invoked as:
#   cmake -DCPRISK=<binary> -DARGS="<space-separated args>" -DEXPECT=<code> \
#         -P expect_exit.cmake
# The exact code matters: 0 = clean, 1 = findings/invalid input, 2 = usage
# or I/O error - the distinction scripts and CI pipelines key off.
separate_arguments(args NATIVE_COMMAND "${ARGS}")
execute_process(COMMAND "${CPRISK}" ${args}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT result EQUAL "${EXPECT}")
  message(FATAL_ERROR
    "cprisk ${ARGS}\nexpected exit ${EXPECT}, got ${result}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
# Optional: -DMATCH=<regex> additionally requires the combined output to
# match (used for the unknown-flag suggestion and observability messages).
if(MATCH AND NOT "${out}${err}" MATCHES "${MATCH}")
  message(FATAL_ERROR
    "cprisk ${ARGS}\noutput does not match '${MATCH}'\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
# Optional: -DREAD_FILE=<path> -DFILE_MATCH=<;-separated regexes> requires a
# file the run wrote (--metrics, --trace exports) to match every regex —
# the schema checks docs/observability.md promises to downstream dashboards.
if(READ_FILE)
  if(NOT EXISTS "${READ_FILE}")
    message(FATAL_ERROR "cprisk ${ARGS}\ndid not write '${READ_FILE}'")
  endif()
  file(READ "${READ_FILE}" content)
  foreach(pattern IN LISTS FILE_MATCH)
    if(NOT content MATCHES "${pattern}")
      message(FATAL_ERROR
        "cprisk ${ARGS}\n'${READ_FILE}' does not match '${pattern}'\n"
        "content:\n${content}")
    endif()
  endforeach()
endif()
