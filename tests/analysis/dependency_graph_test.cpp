// Predicate dependency graph: SCC condensation, topological order,
// stratification, negative/positive recursion detection, and backward
// output reachability (including the temporal prev_ idiom).
#include "analysis/dependency_graph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "asp/parser.hpp"

namespace cprisk::analysis {
namespace {

using asp::Signature;

asp::Program parse(const std::string& text) {
    auto program = asp::parse_program(text);
    EXPECT_TRUE(program.ok()) << program.error() << "\n" << text;
    return program.ok() ? std::move(program).value() : asp::Program{};
}

DependencyGraph graph_of(const std::string& text) {
    return DependencyGraph::build(parse(text));
}

std::size_t node(const DependencyGraph& graph, const std::string& predicate, std::size_t arity) {
    auto index = graph.node_of(Signature{predicate, arity});
    EXPECT_TRUE(index.has_value()) << predicate << "/" << arity;
    return index.value_or(0);
}

bool has_edge(const DependencyGraph& graph, const std::string& from, const std::string& to,
              bool negative, bool temporal) {
    for (const DependencyEdge& edge : graph.edges()) {
        if (graph.node(edge.from).predicate == from && graph.node(edge.to).predicate == to &&
            edge.negative == negative && edge.temporal == temporal) {
            return true;
        }
    }
    return false;
}

TEST(DependencyGraphTest, EmptyProgramHasNoNodesAndIsStratified) {
    const auto graph = graph_of("");
    EXPECT_EQ(graph.node_count(), 0u);
    EXPECT_EQ(graph.component_count(), 0u);
    EXPECT_EQ(graph.stratum_count(), 0);
    EXPECT_TRUE(graph.is_stratified());
}

TEST(DependencyGraphTest, NegationRaisesTheStratum) {
    const auto graph = graph_of(
        "p(a). q(X) :- p(X). s(b).\n"
        "r(X) :- q(X), not s(X).\n"
        "#show r/1.\n");
    EXPECT_TRUE(graph.is_stratified());
    EXPECT_EQ(graph.stratum_of(node(graph, "p", 1)), 0);
    EXPECT_EQ(graph.stratum_of(node(graph, "q", 1)), 0);
    EXPECT_EQ(graph.stratum_of(node(graph, "s", 1)), 0);
    EXPECT_EQ(graph.stratum_of(node(graph, "r", 1)), 1);
    EXPECT_EQ(graph.stratum_count(), 2);
}

TEST(DependencyGraphTest, TopologicalOrderRespectsEveryNonTemporalEdge) {
    const auto graph = graph_of(
        "base(1). base(2).\n"
        "mid(X) :- base(X).\n"
        "top(X) :- mid(X), not base(X).\n"
        "other(X) :- base(X), mid(X).\n"
        "#show top/1. #show other/1.\n");
    for (const DependencyEdge& edge : graph.edges()) {
        if (edge.temporal) continue;
        EXPECT_LE(graph.component_of(edge.from), graph.component_of(edge.to))
            << graph.node(edge.from).to_string() << " -> " << graph.node(edge.to).to_string();
    }
}

TEST(DependencyGraphTest, RecursionThroughNegationIsUnstratified) {
    const auto graph = graph_of("a :- not b.\nb :- not a.\n#show a/0. #show b/0.\n");
    EXPECT_FALSE(graph.is_stratified());
    ASSERT_EQ(graph.unstratified_components().size(), 1u);
    const auto signatures = graph.component_signatures(graph.unstratified_components()[0]);
    ASSERT_EQ(signatures.size(), 2u);
    EXPECT_EQ(signatures[0].to_string(), "a/0");
    EXPECT_EQ(signatures[1].to_string(), "b/0");
}

TEST(DependencyGraphTest, NegativeSelfLoopIsUnstratified) {
    const auto graph = graph_of("a :- not a.\n#show a/0.\n");
    EXPECT_FALSE(graph.is_stratified());
    ASSERT_EQ(graph.unstratified_components().size(), 1u);
    EXPECT_EQ(graph.component_signatures(graph.unstratified_components()[0]).size(), 1u);
}

TEST(DependencyGraphTest, PositiveRecursionIsStratifiedButDetected) {
    const auto graph = graph_of(
        "edge(1,2). edge(2,3).\n"
        "reach(X,Y) :- edge(X,Y).\n"
        "reach(X,Z) :- reach(X,Y), edge(Y,Z).\n"
        "#show reach/2.\n");
    EXPECT_TRUE(graph.is_stratified());
    ASSERT_EQ(graph.positive_loop_components().size(), 1u);
    const auto signatures = graph.component_signatures(graph.positive_loop_components()[0]);
    ASSERT_EQ(signatures.size(), 1u);
    EXPECT_EQ(signatures[0].to_string(), "reach/2");
}

TEST(DependencyGraphTest, MixedCycleCountsAsUnstratifiedOnly) {
    // a <-> c positively, a <-> b through negation: one SCC, internally both
    // positive and negative edges. It must land in unstratified_components;
    // positive_loop_components may also list it, callers dedupe.
    const auto graph = graph_of(
        "a :- not b, c.\nb :- not a.\nc :- a.\n"
        "#show a/0. #show b/0. #show c/0.\n");
    EXPECT_FALSE(graph.is_stratified());
    ASSERT_EQ(graph.unstratified_components().size(), 1u);
    EXPECT_EQ(graph.component_signatures(graph.unstratified_components()[0]).size(), 3u);
}

TEST(DependencyGraphTest, ChoiceConditionFeedsEverySiblingElement) {
    // The documented over-approximation: item/1 conditions pick/1 but the
    // edge also reaches alt/1, so the grounder's ordering invariant holds.
    const auto graph = graph_of(
        "item(a). other(b).\n"
        "{ pick(X) : item(X) ; alt(Y) : other(Y) }.\n"
        "#show pick/1. #show alt/1.\n");
    EXPECT_TRUE(has_edge(graph, "item", "pick", false, false));
    EXPECT_TRUE(has_edge(graph, "item", "alt", false, false));
    EXPECT_TRUE(has_edge(graph, "other", "pick", false, false));
    EXPECT_TRUE(has_edge(graph, "other", "alt", false, false));
}

TEST(DependencyGraphTest, ConstraintBodiesAreOutputRoots) {
    const auto graph = graph_of(
        "p(a). q(X) :- p(X).\n"
        ":- q(X), X != a.\n"
        "helper(X) :- p(X).\n");
    EXPECT_FALSE(graph.has_show_roots());
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "q", 1)]);
    EXPECT_TRUE(reached[node(graph, "p", 1)]);
    EXPECT_FALSE(reached[node(graph, "helper", 1)]);
}

TEST(DependencyGraphTest, WeakConstraintBodiesAreOutputRoots) {
    const auto graph = graph_of(
        "p(a). cost(X) :- p(X). silent(X) :- p(X).\n"
        ":~ cost(X). [1@1, X]\n");
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "cost", 1)]);
    EXPECT_TRUE(reached[node(graph, "p", 1)]);
    EXPECT_FALSE(reached[node(graph, "silent", 1)]);
}

TEST(DependencyGraphTest, ShowDirectivesRootReachabilityBackwards) {
    const auto graph = graph_of(
        "p(a). q(X) :- p(X). dead(X) :- p(X).\n"
        "#show q/1.\n");
    EXPECT_TRUE(graph.has_show_roots());
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "q", 1)]);
    EXPECT_TRUE(reached[node(graph, "p", 1)]);
    EXPECT_FALSE(reached[node(graph, "dead", 1)]);
}

TEST(DependencyGraphTest, ExtraRootsReviveOtherwiseDeadPredicates) {
    const auto graph = graph_of(
        "p(a). q(X) :- p(X). dead(X) :- p(X).\n"
        "#show q/1.\n");
    const auto reached = graph.reachable_from_outputs({Signature{"dead", 1}});
    EXPECT_TRUE(reached[node(graph, "dead", 1)]);
}

TEST(DependencyGraphTest, AggregateConditionAtomsRootConstraintReachability) {
    const auto graph = graph_of(
        "p(1). p(2). idle(X) :- p(X).\n"
        ":- #count { X : p(X) } > 5.\n");
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "p", 1)]);
    EXPECT_FALSE(reached[node(graph, "idle", 1)]);
}

TEST(DependencyGraphTest, PrevPredicateStaysASeparateNode) {
    const auto graph = graph_of("level(X) :- prev_level(X).\n#show level/1.\n");
    // Non-temporal edge prev_level -> level; temporal feedback level -> level.
    EXPECT_TRUE(has_edge(graph, "prev_level", "level", false, false));
    EXPECT_TRUE(has_edge(graph, "level", "level", false, true));
    // The temporal edge must not merge the per-step components or recurse.
    EXPECT_NE(graph.component_of(node(graph, "prev_level", 1)),
              graph.component_of(node(graph, "level", 1)));
    EXPECT_TRUE(graph.is_stratified());
    EXPECT_TRUE(graph.positive_loop_components().empty());
}

TEST(DependencyGraphTest, ReachingPrevAlsoReachesTheBasePredicate) {
    const auto graph = graph_of(
        "level(a).\n"
        "q(X) :- prev_level(X).\n"
        "#show q/1.\n");
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "prev_level", 1)]);
    EXPECT_TRUE(reached[node(graph, "level", 1)]);
}

TEST(DependencyGraphTest, UnionBuildResolvesCrossProgramDependencies) {
    const asp::Program defines = parse("p(a). p(b).\n");
    const asp::Program uses = parse("q(X) :- p(X).\n#show q/1.\n");
    const auto graph = DependencyGraph::build({&defines, &uses});
    EXPECT_TRUE(has_edge(graph, "p", "q", false, false));
    const auto reached = graph.reachable_from_outputs();
    EXPECT_TRUE(reached[node(graph, "p", 1)]);
}

TEST(DependencyGraphTest, NodeOfUnknownSignatureIsNullopt) {
    const auto graph = graph_of("p(a).\n");
    EXPECT_FALSE(graph.node_of(Signature{"missing", 3}).has_value());
}

TEST(DependencyGraphTest, TemporalPrefixHelpers) {
    EXPECT_TRUE(has_temporal_prefix("prev_level"));
    EXPECT_FALSE(has_temporal_prefix("prev_"));
    EXPECT_FALSE(has_temporal_prefix("previous"));
    EXPECT_FALSE(has_temporal_prefix("level"));
    EXPECT_EQ(temporal_base("prev_level"), "level");
}

}  // namespace
}  // namespace cprisk::analysis
