// Attack-reachability taint pass: entry-point seeding, depth propagation,
// the reachability closure, and the watertank case-study ground truth.
#include "analysis/taint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/reachability.hpp"
#include "core/loader.hpp"
#include "security/attack_matrix.hpp"

namespace cprisk::analysis {
namespace {

core::Bundle load(const std::string& text) {
    auto bundle = core::load_bundle(text);
    EXPECT_TRUE(bundle.ok()) << bundle.error();
    return bundle.ok() ? std::move(bundle).value() : core::Bundle{};
}

TaintResult taint_of(const core::Bundle& bundle) {
    return analyze_attack_reachability(bundle.model, security::AttackMatrix::standard_ics());
}

TEST(TaintTest, PublicEntryPointStartsAtDepthZero) {
    const auto bundle = load("component ws node exposure=public\n");
    const auto result = taint_of(bundle);
    ASSERT_EQ(result.entry_points.size(), 1u);
    EXPECT_EQ(result.entry_points[0].component, "ws");
    EXPECT_EQ(result.entry_points[0].depth, 0);
    EXPECT_GE(result.entry_points[0].technique_count, 1u);
    EXPECT_FALSE(result.entry_points[0].technique_id.empty());
    EXPECT_EQ(result.depth_of("ws"), 0);
}

TEST(TaintTest, InternalEntryPointStartsAtDepthOne) {
    const auto bundle = load("component ws node exposure=internal\n");
    const auto result = taint_of(bundle);
    ASSERT_EQ(result.entry_points.size(), 1u);
    EXPECT_EQ(result.entry_points[0].depth, 1);
    EXPECT_EQ(result.depth_of("ws"), 1);
}

TEST(TaintTest, UnexposedComponentsAreNotEntryPoints) {
    const auto bundle = load("component sensor sensor\ncomponent pump actuator\n");
    const auto result = taint_of(bundle);
    EXPECT_TRUE(result.entry_points.empty());
    EXPECT_EQ(result.unreached.size(), 2u);
    EXPECT_EQ(result.depth_of("sensor"), -1);
}

TEST(TaintTest, MatchingDeclaredFaultIsRecordedOnTheEntry) {
    // The standard ICS matrix has a node technique causing fault "infected";
    // declaring that fault mode makes the compromise direct.
    const auto bundle = load(
        "component ws node exposure=public\n"
        "fault ws infected compromise\n");
    const auto result = taint_of(bundle);
    ASSERT_EQ(result.entry_points.size(), 1u);
    EXPECT_EQ(result.entry_points[0].activated_fault, "infected");
    EXPECT_FALSE(result.entry_points[0].activating_technique.empty());
}

TEST(TaintTest, UnmatchedFaultLeavesActivatedFaultEmpty) {
    const auto bundle = load(
        "component ws node exposure=public\n"
        "fault ws odd omission\n");
    const auto result = taint_of(bundle);
    ASSERT_EQ(result.entry_points.size(), 1u);
    EXPECT_TRUE(result.entry_points[0].activated_fault.empty());
}

TEST(TaintTest, DepthGrowsByOnePerPropagationHop) {
    const auto bundle = load(
        "component ws node exposure=internal\n"
        "component plc controller\n"
        "component pump actuator\n"
        "component island equipment\n"
        "relation ws signal_flow plc\n"
        "relation plc triggering pump\n");
    const auto result = taint_of(bundle);
    EXPECT_EQ(result.depth_of("ws"), 1);
    EXPECT_EQ(result.depth_of("plc"), 2);
    EXPECT_EQ(result.depth_of("pump"), 3);
    EXPECT_EQ(result.depth_of("island"), -1);
    ASSERT_EQ(result.unreached.size(), 1u);
    EXPECT_EQ(result.unreached[0], "island");
}

TEST(TaintTest, PublicSeedDominatesInternalSeed) {
    const auto bundle = load(
        "component front node exposure=public\n"
        "component back node exposure=internal\n"
        "component plant equipment\n"
        "relation front signal_flow plant\n"
        "relation back signal_flow plant\n");
    const auto result = taint_of(bundle);
    EXPECT_EQ(result.depth_of("front"), 0);
    EXPECT_EQ(result.depth_of("back"), 1);
    EXPECT_EQ(result.depth_of("plant"), 1);  // one hop from the public seed
}

TEST(TaintTest, QuantityFlowPropagatesBackwards) {
    // quantity_flow is bidirectional: compromising the consumer taints the
    // producer (e.g. closing a downstream valve backs water up the pipe).
    const auto bundle = load(
        "component ctrl controller exposure=internal\n"
        "component pipe equipment\n"
        "relation pipe quantity_flow ctrl\n");
    const auto result = taint_of(bundle);
    EXPECT_EQ(result.depth_of("pipe"), 2);
}

// Acceptance: the watertank case study's attacker-reachable set.
TEST(TaintWatertankTest, IdentifiesTheWorkstationReachableSet) {
    auto bundle = core::load_bundle_file(std::string(CPRISK_SOURCE_DIR) +
                                         "/examples/models/watertank.cpm");
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    const auto result = taint_of(bundle.value());

    std::set<model::ComponentId> entries;
    for (const AttackEntryPoint& entry : result.entry_points) {
        entries.insert(entry.component);
        EXPECT_EQ(entry.depth, 1) << entry.component;  // every exposure is internal
    }
    const std::set<model::ComponentId> expected{"in_valve_ctrl", "out_valve_ctrl", "tank_ctrl",
                                                "hmi", "workstation"};
    EXPECT_EQ(entries, expected);

    // Lateral movement from the entry set covers the whole plant.
    EXPECT_TRUE(result.unreached.empty());
    EXPECT_EQ(result.depth_of("input_valve"), 2);
    EXPECT_EQ(result.depth_of("output_valve"), 2);
    EXPECT_EQ(result.depth_of("tank"), 3);
    EXPECT_EQ(result.depth_of("level_sensor"), 4);

    // The HMI and the engineering workstation carry directly-activatable
    // declared faults (alarm suppression / malware infection).
    for (const AttackEntryPoint& entry : result.entry_points) {
        if (entry.component == "hmi") EXPECT_EQ(entry.activated_fault, "no_signal");
        if (entry.component == "workstation") EXPECT_EQ(entry.activated_fault, "infected");
        if (entry.component == "tank_ctrl") EXPECT_TRUE(entry.activated_fault.empty());
    }
}

TEST(ReachabilityClosureTest, MatchesSystemModelReachableFrom) {
    auto bundle = core::load_bundle_file(std::string(CPRISK_SOURCE_DIR) +
                                         "/examples/models/watertank.cpm");
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    const model::SystemModel& model = bundle.value().model;
    const ReachabilityClosure closure(model);
    for (const model::Component& component : model.components()) {
        EXPECT_EQ(closure.reachable_from(component.id), model.reachable_from(component.id))
            << component.id;
    }
}

TEST(ReachabilityClosureTest, ReachesIsTransitiveAndDirectional) {
    const auto bundle = load(
        "component a node exposure=internal\n"
        "component b controller\n"
        "component c actuator\n"
        "relation a signal_flow b\n"
        "relation b triggering c\n");
    const ReachabilityClosure closure(bundle.model);
    EXPECT_TRUE(closure.reaches("a", "b"));
    EXPECT_TRUE(closure.reaches("a", "c"));
    EXPECT_FALSE(closure.reaches("c", "a"));
    EXPECT_FALSE(closure.reaches("a", "a"));  // not on a cycle
    EXPECT_TRUE(closure.reachable_from("missing").empty());
    EXPECT_TRUE(closure.successors("missing").empty());
}

}  // namespace
}  // namespace cprisk::analysis
