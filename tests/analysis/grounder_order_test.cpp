// Differential test for the SCC-ordered grounder fast path: for every
// program the SCC-ordered and the global-fixpoint grounder must produce the
// same GroundProgram (same atoms, rules, weak constraints and shows). Atom
// ids and rule emission order may differ between the paths, so both sides
// are canonicalised to name-based, order-free form before comparison.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/temporal.hpp"
#include "core/loader.hpp"
#include "epa/epa.hpp"
#include "security/attack_matrix.hpp"

namespace cprisk::asp {
namespace {

std::vector<std::string> atom_names(const GroundProgram& program, const std::vector<int>& ids) {
    std::vector<std::string> names;
    names.reserve(ids.size());
    for (int id : ids) names.push_back(program.atom(id).to_string());
    std::sort(names.begin(), names.end());
    return names;
}

void append_names(std::ostringstream& out, const std::vector<std::string>& names) {
    for (const std::string& name : names) out << name << ",";
}

std::string canonical_rule(const GroundProgram& program, const GroundRule& rule) {
    std::ostringstream out;
    switch (rule.kind) {
        case GroundRule::Kind::Normal:
            out << "rule " << program.atom(rule.head).to_string();
            break;
        case GroundRule::Kind::Constraint:
            out << "constraint";
            break;
        case GroundRule::Kind::Choice:
            out << "choice ";
            if (rule.lower_bound) out << *rule.lower_bound;
            out << "{";
            append_names(out, atom_names(program, rule.choice_heads));
            out << "}";
            if (rule.upper_bound) out << *rule.upper_bound;
            break;
    }
    out << " :+ ";
    append_names(out, atom_names(program, rule.positive_body));
    out << " :- ";
    append_names(out, atom_names(program, rule.negative_body));
    std::vector<std::string> aggregates;
    for (const GroundAggregate& aggregate : rule.aggregates) {
        std::ostringstream agg;
        agg << static_cast<int>(aggregate.op) << "#" << aggregate.bound << "#";
        std::vector<std::string> elements;
        for (const GroundAggregateElement& element : aggregate.elements) {
            std::ostringstream elem;
            elem << element.weight << "@" << element.tuple << ":";
            append_names(elem, atom_names(program, element.condition));
            elements.push_back(elem.str());
        }
        std::sort(elements.begin(), elements.end());
        for (const std::string& element : elements) agg << element << ";";
        aggregates.push_back(agg.str());
    }
    std::sort(aggregates.begin(), aggregates.end());
    out << " aggs ";
    for (const std::string& aggregate : aggregates) out << aggregate << "|";
    return out.str();
}

/// Order-free, name-based serialization of a whole ground program.
std::vector<std::string> canonical(const GroundProgram& program) {
    std::vector<std::string> lines;
    for (std::size_t id = 0; id < program.atom_count(); ++id) {
        lines.push_back("atom " + program.atom(static_cast<int>(id)).to_string());
    }
    for (const GroundRule& rule : program.rules()) {
        lines.push_back(canonical_rule(program, rule));
    }
    for (const GroundWeak& weak : program.weaks()) {
        std::ostringstream out;
        out << "weak [" << weak.weight << "@" << weak.priority << "," << weak.tuple << "] :+ ";
        append_names(out, atom_names(program, weak.positive_body));
        out << " :- ";
        append_names(out, atom_names(program, weak.negative_body));
        lines.push_back(out.str());
    }
    for (const Signature& show : program.shows()) lines.push_back("show " + show.to_string());
    std::sort(lines.begin(), lines.end());
    return lines;
}

void expect_identical_grounding(const Program& program, const std::string& label) {
    GrounderOptions scc_options;
    scc_options.scc_order = true;
    GrounderOptions global_options;
    global_options.scc_order = false;

    auto scc = ground(program, scc_options);
    auto global = ground(program, global_options);
    ASSERT_TRUE(scc.ok()) << label << ": " << scc.error();
    ASSERT_TRUE(global.ok()) << label << ": " << global.error();
    EXPECT_EQ(scc.value().atom_count(), global.value().atom_count()) << label;
    EXPECT_EQ(canonical(scc.value()), canonical(global.value())) << label;
}

void expect_identical_grounding_text(const std::string& text) {
    auto program = parse_program(text);
    ASSERT_TRUE(program.ok()) << program.error() << "\n" << text;
    expect_identical_grounding(program.value(), text);
}

TEST(GrounderOrderTest, HandPickedProgramsGroundIdentically) {
    const char* programs[] = {
        "p(1). p(2). q(X) :- p(X).",
        "a :- not b. b :- not a.",
        "a :- not a.",
        // Positive recursion inside one SCC.
        "edge(1,2). edge(2,3). edge(3,1). reach(X,Y) :- edge(X,Y). "
        "reach(X,Z) :- reach(X,Y), edge(Y,Z).",
        // Mutual recursion across two predicates.
        "n(0..3). even(0). odd(Y) :- even(X), Y = X + 1, n(Y). "
        "even(Y) :- odd(X), Y = X + 1, n(Y).",
        // Choice feeding later strata.
        "item(1..4). { pick(X) : item(X) } 2. used(X) :- pick(X). "
        ":- used(X), X > 3.",
        // Choice whose condition is derived recursively.
        "edge(1,2). edge(2,3). reach(X,Y) :- edge(X,Y). "
        "reach(X,Z) :- reach(X,Y), edge(Y,Z). { cut(X,Y) : reach(X,Y) } 1.",
        // Negation between recursive components.
        "base(1..3). in(X) :- base(X), not out(X). out(X) :- base(X), not in(X). "
        "ok :- in(1). :- not ok.",
        // Aggregates in constraints over a derived domain.
        "item(1..3). { pick(X) : item(X) }. :- #count { X : pick(X) } > 2. "
        ":- #sum { X, X : pick(X) } > 4.",
        // Weak constraints over choice atoms.
        "item(1..3). { pick(X) : item(X) }. covered :- pick(X). :- not covered. "
        ":~ pick(X). [X@1, X]",
        // Arithmetic heads and comparison filters.
        "n(1..5). succ(X, X+1) :- n(X). big(X) :- n(X), X > 3. "
        "r(Y) :- succ(X, Y), big(X).",
        // Facts only.
        "p(1..4). q(a). r(f(a), g(b)).",
        // Deep stratified chain.
        "l0(1..2). l1(X) :- l0(X). l2(X) :- l1(X), not l0(3). l3(X) :- l2(X). "
        "l4(X) :- l3(X), not l1(3). #show l4/1.",
    };
    for (const char* text : programs) {
        SCOPED_TRACE(text);
        expect_identical_grounding_text(text);
    }
}

TEST(GrounderOrderTest, TemporalProgramGroundsIdenticallyAfterUnroll) {
    const std::string text =
        "#program base. level_value(low). level_value(high).\n"
        "#program initial. level(low).\n"
        "#program dynamic. level(X) :- prev_level(X), level_value(X).\n"
        "#program always. seen(X) :- level(X).\n";
    auto program = parse_program(text);
    ASSERT_TRUE(program.ok()) << program.error();
    UnrollOptions options;
    options.horizon = 5;
    auto unrolled = unroll(program.value(), options);
    ASSERT_TRUE(unrolled.ok()) << unrolled.error();
    expect_identical_grounding(unrolled.value(), "temporal");
}

/// Grounds the full EPA base program of a bundle (facts + propagation +
/// requirement compilation, unrolled to `horizon`) under both paths.
void expect_identical_bundle_grounding(const std::string& relative_path, int horizon) {
    auto bundle = core::load_bundle_file(std::string(CPRISK_SOURCE_DIR) + relative_path);
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    const auto mitigations = epa::MitigationMap::from_attack_matrix(
        bundle.value().model, security::AttackMatrix::standard_ics());
    epa::EpaOptions epa_options;
    epa_options.focus = epa::AnalysisFocus::Behavioral;
    epa_options.horizon = horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        bundle.value().model, bundle.value().effective_behavioral(), mitigations, epa_options);
    ASSERT_TRUE(analysis.ok()) << analysis.error();

    UnrollOptions unroll_options;
    unroll_options.horizon = horizon;
    auto unrolled = unroll(analysis.value().base_program(), unroll_options);
    ASSERT_TRUE(unrolled.ok()) << unrolled.error();
    expect_identical_grounding(unrolled.value(), relative_path);
}

TEST(GrounderOrderTest, WatertankBundleGroundsIdentically) {
    expect_identical_bundle_grounding("/examples/models/watertank.cpm", 6);
}

TEST(GrounderOrderTest, ReactorBundleGroundsIdentically) {
    expect_identical_bundle_grounding("/examples/models/reactor.cpm", 7);
}

}  // namespace
}  // namespace cprisk::asp
