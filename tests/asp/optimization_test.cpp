// Weak constraints, #minimize/#maximize, lexicographic priorities,
// branch-and-bound pruning.
#include <gtest/gtest.h>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

SolveResult must_solve(std::string_view text, PipelineOptions options = {}) {
    auto result = solve_text(text, options);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : SolveResult{};
}

bool model_has(const AnswerSet& model, std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    return model.contains(atom.value());
}

TEST(Optimization, PicksCheapestChoice) {
    auto result = must_solve(
        "item(a, 5). item(b, 2). item(c, 9). "
        "1 { pick(X) : picked_candidate(X) } 1. "
        "picked_candidate(X) :- item(X, _). "
        ":~ pick(X), item(X, C). [C@1, X]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "pick(b)"));
    EXPECT_EQ(result.best_cost.at(1), 2);
}

TEST(Optimization, MinimizeDirective) {
    auto result = must_solve(
        "n(1..4). 1 { sel(X) : n(X) } 1. #minimize { X@1 : sel(X) }.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "sel(1)"));
}

TEST(Optimization, MaximizeDirective) {
    auto result = must_solve(
        "n(1..4). 1 { sel(X) : n(X) } 1. #maximize { X@1 : sel(X) }.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "sel(4)"));
}

TEST(Optimization, AllOptimaReturned) {
    // Two picks tie at cost 1.
    auto result = must_solve(
        "item(a,1). item(b,1). item(c,3). cand(X) :- item(X,_). "
        "1 { pick(X) : cand(X) } 1. :~ pick(X), item(X,C). [C@1, X]");
    EXPECT_EQ(result.models.size(), 2u);
    EXPECT_EQ(result.best_cost.at(1), 1);
}

TEST(Optimization, LexicographicPriorities) {
    // Higher priority dominates: pick b (prio-2 cost 0) even though its
    // prio-1 cost is larger.
    auto result = must_solve(
        "cand(a). cand(b). 1 { pick(X) : cand(X) } 1. "
        ":~ pick(a). [1@2] "
        ":~ pick(a). [0@1] "
        ":~ pick(b). [0@2] "
        ":~ pick(b). [5@1]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "pick(b)"));
    EXPECT_EQ(result.best_cost.at(2), 0);
    EXPECT_EQ(result.best_cost.at(1), 5);
}

TEST(Optimization, DistinctTuplesCountedOnce) {
    // Two weak constraints with the same tuple at the same priority count
    // once (clingo semantics).
    auto result = must_solve(
        "a. b. "
        ":~ a. [3@1, same] "
        ":~ b. [3@1, same]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_EQ(result.best_cost.at(1), 3);
}

TEST(Optimization, DifferentTuplesAccumulate) {
    auto result = must_solve(
        "a. b. "
        ":~ a. [3@1, ta] "
        ":~ b. [4@1, tb]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_EQ(result.best_cost.at(1), 7);
}

TEST(Optimization, SubsetMinimalMitigation) {
    // Miniature of the paper's cost-benefit step: block the attack at
    // minimum cost. Blocking needs m1 (cost 2) or m2+m3 (cost 1+2=3).
    auto result = must_solve(
        "mitigation(m1, 2). mitigation(m2, 1). mitigation(m3, 2). "
        "{ active(M) : mitigation_name(M) }. "
        "mitigation_name(M) :- mitigation(M, _). "
        "blocked :- active(m1). "
        "blocked :- active(m2), active(m3). "
        ":- not blocked. "
        ":~ active(M), mitigation(M, C). [C@1, M]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "active(m1)"));
    EXPECT_FALSE(model_has(result.models[0], "active(m2)"));
    EXPECT_EQ(result.best_cost.at(1), 2);
}

TEST(Optimization, UnsatisfiableStaysUnsat) {
    auto result = must_solve("{ a }. :- a. :- not a. :~ a. [1@1]");
    EXPECT_FALSE(result.satisfiable);
    EXPECT_TRUE(result.models.empty());
}

TEST(Optimization, ZeroCostOptimum) {
    auto result = must_solve("{ a }. :~ a. [5@1]");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "a"));
    // Empty choice: no weak body holds; optimum has no cost entries.
    EXPECT_TRUE(result.best_cost.empty() || result.best_cost.at(1) == 0);
}

TEST(Optimization, NonOptimizingEnumerationKeepsAll) {
    PipelineOptions options;
    options.solve.optimize = false;
    auto result = must_solve("{ a }. :~ a. [5@1]", options);
    EXPECT_EQ(result.models.size(), 2u);
}

TEST(Optimization, NegativeWeightsViaMaximize) {
    // #maximize over multiple independent choices.
    auto result = must_solve(
        "g(1..3). { take(X) : g(X) }. #maximize { X@1, X : take(X) }.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "take(1)"));
    EXPECT_TRUE(model_has(result.models[0], "take(2)"));
    EXPECT_TRUE(model_has(result.models[0], "take(3)"));
    EXPECT_EQ(result.best_cost.at(1), -6);
}

}  // namespace
}  // namespace cprisk::asp
