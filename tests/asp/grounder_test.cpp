// Grounder behaviour: instantiation, safety, ranges, arithmetic in rules,
// domain fixpoints, limits.
#include <gtest/gtest.h>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"

namespace cprisk::asp {
namespace {

GroundProgram must_ground(std::string_view text, GrounderOptions options = {}) {
    auto program = parse_program(text);
    EXPECT_TRUE(program.ok()) << program.error();
    auto grounded = ground(program.value(), options);
    EXPECT_TRUE(grounded.ok()) << grounded.error();
    return grounded.ok() ? std::move(grounded).value() : GroundProgram{};
}

bool has_atom(const GroundProgram& p, std::string_view text) {
    auto atom = parse_atom(text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    return p.find(atom.value()) >= 0;
}

TEST(Grounder, FactsInterned) {
    auto g = must_ground("p(1). p(2).");
    EXPECT_EQ(g.atom_count(), 2u);
    EXPECT_EQ(g.rules().size(), 2u);
    EXPECT_TRUE(has_atom(g, "p(1)"));
}

TEST(Grounder, RangeFactExpansion) {
    auto g = must_ground("time(0..4).");
    EXPECT_EQ(g.rules().size(), 5u);
    EXPECT_TRUE(has_atom(g, "time(0)"));
    EXPECT_TRUE(has_atom(g, "time(4)"));
}

TEST(Grounder, RuleInstantiation) {
    auto g = must_ground("p(1). p(2). q(X) :- p(X).");
    EXPECT_TRUE(has_atom(g, "q(1)"));
    EXPECT_TRUE(has_atom(g, "q(2)"));
}

TEST(Grounder, JoinTwoPredicates) {
    auto g = must_ground("a(1). a(2). b(2). b(3). c(X) :- a(X), b(X).");
    EXPECT_TRUE(has_atom(g, "c(2)"));
    EXPECT_FALSE(has_atom(g, "c(1)"));
    EXPECT_FALSE(has_atom(g, "c(3)"));
}

TEST(Grounder, ArithmeticInHead) {
    auto g = must_ground("n(1). n(2). succ(X, X+1) :- n(X).");
    EXPECT_TRUE(has_atom(g, "succ(1,2)"));
    EXPECT_TRUE(has_atom(g, "succ(2,3)"));
}

TEST(Grounder, AssignmentBinding) {
    auto g = must_ground("n(3). double(Y) :- n(X), Y = X * 2.");
    EXPECT_TRUE(has_atom(g, "double(6)"));
}

TEST(Grounder, AssignmentRangeBinding) {
    auto g = must_ground("m(X) :- X = 1..3.");
    EXPECT_TRUE(has_atom(g, "m(1)"));
    EXPECT_TRUE(has_atom(g, "m(3)"));
    EXPECT_FALSE(has_atom(g, "m(4)"));
}

TEST(Grounder, ComparisonFilters) {
    auto g = must_ground("n(1..5). big(X) :- n(X), X > 3.");
    EXPECT_FALSE(has_atom(g, "big(3)"));
    EXPECT_TRUE(has_atom(g, "big(4)"));
    EXPECT_TRUE(has_atom(g, "big(5)"));
}

TEST(Grounder, RecursiveFixpoint) {
    auto g = must_ground(
        "edge(1,2). edge(2,3). edge(3,4). "
        "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
    EXPECT_TRUE(has_atom(g, "reach(1,4)"));
}

TEST(Grounder, UnsafeRuleFails) {
    auto program = parse_program("p(X) :- q(Y).");
    ASSERT_TRUE(program.ok());
    auto grounded = ground(program.value());
    EXPECT_FALSE(grounded.ok());
}

TEST(Grounder, UnsafeNegationOnlyFails) {
    auto program = parse_program("p(X) :- not q(X).");
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(ground(program.value()).ok());
}

TEST(Grounder, ConstSubstitution) {
    auto g = must_ground("#const n = 3. p(1..n). q :- p(n).");
    EXPECT_TRUE(has_atom(g, "p(3)"));
    EXPECT_TRUE(has_atom(g, "q"));
}

TEST(Grounder, ConstInExpression) {
    auto g = must_ground("#const n = 2. p(n * 10).");
    EXPECT_TRUE(has_atom(g, "p(20)"));
}

TEST(Grounder, NegativeBodyAtomsInterned) {
    auto g = must_ground("a. b :- a, not c.");
    EXPECT_TRUE(has_atom(g, "c"));  // interned even though underivable
}

TEST(Grounder, AtomLimitGuards) {
    GrounderOptions options;
    options.max_atoms = 10;
    auto program = parse_program("p(1..1000).");
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(ground(program.value(), options).ok());
}

TEST(Grounder, NonTerminatingGuard) {
    GrounderOptions options;
    options.max_atoms = 1000;
    auto program = parse_program("p(0). p(X + 1) :- p(X).");
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(ground(program.value(), options).ok());
}

TEST(Grounder, ChoiceOverFacts) {
    auto g = must_ground("item(1..3). { pick(X) : item(X) }.");
    EXPECT_TRUE(has_atom(g, "pick(1)"));
    EXPECT_TRUE(has_atom(g, "pick(3)"));
    std::size_t choice_rules = 0;
    for (const auto& rule : g.rules()) {
        if (rule.kind == GroundRule::Kind::Choice) {
            ++choice_rules;
            EXPECT_EQ(rule.choice_heads.size(), 3u);
        }
    }
    EXPECT_EQ(choice_rules, 1u);
}

TEST(Grounder, BoundedChoiceOverDerivedFactsOk) {
    // item/1 is derived through a rule but still certain.
    auto g = must_ground("base(1..2). item(X) :- base(X). 1 { pick(X) : item(X) } 1.");
    bool found = false;
    for (const auto& rule : g.rules()) {
        if (rule.kind == GroundRule::Kind::Choice) {
            found = true;
            EXPECT_EQ(rule.choice_heads.size(), 2u);
            EXPECT_EQ(rule.lower_bound, 1);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Grounder, BoundedChoiceOverUncertainConditionFails) {
    auto program = parse_program("{ maybe }. item(1) :- maybe. 1 { pick(X) : item(X) } 1.");
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(ground(program.value()).ok());
}

TEST(Grounder, AnonymousVariable) {
    auto g = must_ground("p(1,a). p(2,b). q(X) :- p(X, _).");
    EXPECT_TRUE(has_atom(g, "q(1)"));
    EXPECT_TRUE(has_atom(g, "q(2)"));
}

TEST(Grounder, TemporalSectionRejected) {
    auto program = parse_program("#program dynamic. p :- prev_p.");
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(ground(program.value()).ok());
}

TEST(Grounder, GroundRulesDeduplicated) {
    // Both body orders produce the same ground rule.
    auto g = must_ground("a. b. c :- a, b. c :- b, a.");
    std::size_t c_rules = 0;
    for (const auto& rule : g.rules()) {
        if (rule.kind == GroundRule::Kind::Normal && g.atom(rule.head).predicate == "c") {
            ++c_rules;
        }
    }
    EXPECT_EQ(c_rules, 1u);
}

}  // namespace
}  // namespace cprisk::asp
