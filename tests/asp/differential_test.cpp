// Differential testing of the stable-model solver against a brute-force
// reference implementation of the answer-set definition: enumerate every
// subset of ground atoms, build the reduct, compute its least model, and
// compare with the candidate. Random programs are generated from a
// deterministic PRNG so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

/// Brute-force answer sets of a ground program (atoms, normal rules with
/// default negation, constraints, unbounded choice rules).
std::vector<std::set<int>> reference_answer_sets(const GroundProgram& program) {
    const int n = static_cast<int>(program.atom_count());
    std::vector<std::set<int>> answer_sets;

    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        auto in_candidate = [&](int atom) { return (mask & (1u << atom)) != 0; };

        // Constraints must not fire.
        bool constraint_violated = false;
        for (const GroundRule& rule : program.rules()) {
            if (rule.kind != GroundRule::Kind::Constraint) continue;
            bool body = true;
            for (int p : rule.positive_body) body = body && in_candidate(p);
            for (int q : rule.negative_body) body = body && !in_candidate(q);
            if (body) {
                constraint_violated = true;
                break;
            }
        }
        if (constraint_violated) continue;

        // Cardinality bounds of choice rules.
        bool bounds_violated = false;
        for (const GroundRule& rule : program.rules()) {
            if (rule.kind != GroundRule::Kind::Choice) continue;
            if (!rule.lower_bound && !rule.upper_bound) continue;
            bool body = true;
            for (int p : rule.positive_body) body = body && in_candidate(p);
            for (int q : rule.negative_body) body = body && !in_candidate(q);
            if (!body) continue;
            long long chosen = 0;
            for (int h : rule.choice_heads) chosen += in_candidate(h) ? 1 : 0;
            if (rule.lower_bound && chosen < *rule.lower_bound) bounds_violated = true;
            if (rule.upper_bound && chosen > *rule.upper_bound) bounds_violated = true;
        }
        if (bounds_violated) continue;

        // Least model of the reduct.
        std::set<int> derived;
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (const GroundRule& rule : program.rules()) {
                if (rule.kind == GroundRule::Kind::Constraint) continue;
                bool neg_ok = true;
                for (int q : rule.negative_body) neg_ok = neg_ok && !in_candidate(q);
                if (!neg_ok) continue;
                bool pos_ok = true;
                for (int p : rule.positive_body) pos_ok = pos_ok && derived.count(p) > 0;
                if (!pos_ok) continue;
                if (rule.kind == GroundRule::Kind::Normal) {
                    if (derived.insert(rule.head).second) progressed = true;
                } else {
                    for (int h : rule.choice_heads) {
                        if (in_candidate(h) && derived.insert(h).second) progressed = true;
                    }
                }
            }
        }

        std::set<int> candidate;
        for (int a = 0; a < n; ++a) {
            if (in_candidate(a)) candidate.insert(a);
        }
        if (candidate == derived) answer_sets.push_back(std::move(candidate));
    }
    return answer_sets;
}

/// Serializes an answer set for comparison.
std::set<std::string> to_strings(const GroundProgram& program, const std::set<int>& atoms) {
    std::set<std::string> out;
    for (int a : atoms) out.insert(program.atom(a).to_string());
    return out;
}

void expect_solver_matches_reference(const std::string& text) {
    auto parsed = parse_program(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error() << "\n" << text;
    auto grounded = ground(parsed.value());
    ASSERT_TRUE(grounded.ok()) << grounded.error() << "\n" << text;
    ASSERT_LE(grounded.value().atom_count(), 18u) << "program too large for brute force";

    auto solved = solve(grounded.value());
    ASSERT_TRUE(solved.ok()) << solved.error();

    std::set<std::set<std::string>> ours;
    for (const AnswerSet& model : solved.value().models) {
        std::set<std::string> atoms;
        for (const Atom& a : model.atoms) atoms.insert(a.to_string());
        ours.insert(std::move(atoms));
    }
    std::set<std::set<std::string>> reference;
    for (const auto& answer : reference_answer_sets(grounded.value())) {
        reference.insert(to_strings(grounded.value(), answer));
    }
    EXPECT_EQ(ours, reference) << "program:\n" << text << "\nground:\n"
                               << grounded.value().to_string();
}

TEST(Differential, HandPickedPrograms) {
    const char* programs[] = {
        "a. b :- a. c :- b, not d.",
        "a :- not b. b :- not a.",
        "a :- not a.",  // unsat
        "a :- b. b :- a.",
        "a :- b. b :- a. b :- c. { c }.",
        "{ a }. { b }. :- a, b.",
        "{ a ; b ; c }. :- not a, not b, not c.",
        "1 { a ; b } 1.",
        "0 { a ; b } 1. c :- a.",
        "a :- not b. b :- not c. c :- not a.",  // odd loop through 3 -> unsat
        "{ a }. b :- a. c :- not b.",
        "p(1). p(2). { q(X) : p(X) } 1.",
        "p(1..3). q(X) :- p(X), not r(X). { r(2) }.",
        "a. { b } :- a. :- b, not c. { c } :- b.",
        "x :- y, not z. y :- x. { z }. y :- w. { w }.",
    };
    for (const char* text : programs) {
        SCOPED_TRACE(text);
        expect_solver_matches_reference(text);
    }
}

// Deterministic xorshift PRNG for reproducible random programs.
class Rng {
public:
    explicit Rng(unsigned seed) : state_(seed * 2654435761u + 1) {}
    unsigned next() {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }
    int below(int n) { return static_cast<int>(next() % static_cast<unsigned>(n)); }

private:
    unsigned state_;
};

/// Generates a random propositional program over `n_atoms` atoms a0..a{n-1}.
std::string random_program(unsigned seed, int n_atoms, int n_rules) {
    Rng rng(seed);
    auto atom = [&](int i) { return "a" + std::to_string(i); };
    std::string text;

    // A couple of choice atoms give the program non-trivial answer sets.
    const int n_choice = 1 + rng.below(2);
    for (int i = 0; i < n_choice; ++i) {
        text += "{ " + atom(rng.below(n_atoms)) + " }.\n";
    }
    for (int r = 0; r < n_rules; ++r) {
        const int kind = rng.below(10);
        std::string body;
        const int body_len = 1 + rng.below(3);
        for (int b = 0; b < body_len; ++b) {
            if (!body.empty()) body += ", ";
            if (rng.below(3) == 0) body += "not ";
            body += atom(rng.below(n_atoms));
        }
        if (kind == 0) {
            text += ":- " + body + ".\n";  // constraint
        } else {
            text += atom(rng.below(n_atoms)) + " :- " + body + ".\n";
        }
    }
    return text;
}

class DifferentialRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialRandom, RandomProgramsMatchReference) {
    const unsigned seed = GetParam();
    expect_solver_matches_reference(random_program(seed, /*n_atoms=*/5, /*n_rules=*/7));
    expect_solver_matches_reference(random_program(seed + 1000, /*n_atoms=*/7, /*n_rules=*/10));
    expect_solver_matches_reference(random_program(seed + 2000, /*n_atoms=*/4, /*n_rules=*/12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandom,
                         ::testing::Range(0u, 40u));

}  // namespace
}  // namespace cprisk::asp
