// Ternary abstract interpretation (asp/absint): bracket property, the
// well-founded fixpoint on loops, certification against the solver, and the
// model-preserving simplifier — differentially tested against full solves
// under every pin configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "asp/absint/absint.hpp"
#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "common/budget.hpp"

namespace cprisk::asp::absint {
namespace {

GroundProgram must_ground(std::string_view text) {
    auto program = parse_program(text);
    EXPECT_TRUE(program.ok()) << program.error();
    auto grounded = ground(program.value());
    EXPECT_TRUE(grounded.ok()) << grounded.error();
    return grounded.ok() ? std::move(grounded).value() : GroundProgram{};
}

Ternary value_of(const GroundProgram& program, const Analysis& analysis,
                 std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    const int id = program.find(atom.value());
    EXPECT_GE(id, 0) << atom_text << " not interned";
    return analysis.value(id);
}

TEST(Absint, StratifiedProgramIsTotalAndCertified) {
    auto ground = must_ground("r. q :- not r. p :- not q. s :- p, r.");
    auto analysis = evaluate(ground);
    EXPECT_TRUE(analysis.total);
    EXPECT_TRUE(analysis.certified);
    EXPECT_FALSE(analysis.conflict);
    EXPECT_EQ(value_of(ground, analysis, "r"), Ternary::True);
    EXPECT_EQ(value_of(ground, analysis, "q"), Ternary::False);
    EXPECT_EQ(value_of(ground, analysis, "p"), Ternary::True);
    EXPECT_EQ(value_of(ground, analysis, "s"), Ternary::True);

    // The certified model is exactly the solver's unique answer set.
    auto solved = solve(ground);
    ASSERT_TRUE(solved.ok());
    ASSERT_EQ(solved.value().models.size(), 1u);
    EXPECT_EQ(certified_model(ground, analysis), solved.value().models[0].atoms);
}

// The text pipeline's bottom-up grounder pre-filters underivable rules, so
// the no-rule and unfounded-loop shapes are built through the GroundProgram
// API directly — exactly what absint sees after simplify deletes rules.
TEST(Absint, UnderivableAtomIsFalse) {
    GroundProgram ground;
    const int a = ground.intern(parse_atom("a").value());
    const int b = ground.intern(parse_atom("b").value());
    const int c = ground.intern(parse_atom("c").value());
    GroundRule fact;
    fact.head = a;
    ground.add_rule(fact);
    GroundRule rule;
    rule.head = b;
    rule.positive_body = {c};
    ground.add_rule(rule);

    auto analysis = evaluate(ground);
    EXPECT_TRUE(analysis.total);
    EXPECT_TRUE(analysis.certified);
    EXPECT_EQ(analysis.value(a), Ternary::True);
    EXPECT_EQ(analysis.value(b), Ternary::False);
    EXPECT_EQ(analysis.value(c), Ternary::False);
}

TEST(Absint, EvenNegativeLoopStaysUnknown) {
    auto ground = must_ground("a :- not b. b :- not a. c :- a. c :- b.");
    auto analysis = evaluate(ground);
    EXPECT_FALSE(analysis.total);
    EXPECT_FALSE(analysis.certified);
    EXPECT_EQ(value_of(ground, analysis, "a"), Ternary::Unknown);
    EXPECT_EQ(value_of(ground, analysis, "b"), Ternary::Unknown);
}

TEST(Absint, UnfoundedPositiveLoopIsFalse) {
    GroundProgram ground;
    const int a = ground.intern(parse_atom("a").value());
    const int b = ground.intern(parse_atom("b").value());
    const int c = ground.intern(parse_atom("c").value());
    GroundRule r1;  // a :- b.
    r1.head = a;
    r1.positive_body = {b};
    ground.add_rule(r1);
    GroundRule r2;  // b :- a.
    r2.head = b;
    r2.positive_body = {a};
    ground.add_rule(r2);
    GroundRule r3;  // c :- not a.
    r3.head = c;
    r3.negative_body = {a};
    ground.add_rule(r3);

    auto analysis = evaluate(ground);
    EXPECT_TRUE(analysis.total);
    EXPECT_TRUE(analysis.certified);
    EXPECT_EQ(analysis.value(a), Ternary::False);
    EXPECT_EQ(analysis.value(b), Ternary::False);
    EXPECT_EQ(analysis.value(c), Ternary::True);
}

TEST(Absint, PinnedOffSupportPrunesPositiveLoop) {
    // The loop a/b is reachable only through the choice atom; pinning the
    // choice off must collapse the whole loop to false.
    auto ground = must_ground("{ seed }. a :- seed. a :- b. b :- a.");
    const int seed = ground.find(parse_atom("seed").value());
    ASSERT_GE(seed, 0);

    auto open = evaluate(ground);
    EXPECT_EQ(value_of(ground, open, "a"), Ternary::Unknown);
    EXPECT_EQ(value_of(ground, open, "b"), Ternary::Unknown);

    std::vector<std::pair<int, bool>> pins{{seed, false}};
    AbsintOptions options;
    options.pins = &pins;
    auto pinned = evaluate(ground, options);
    EXPECT_TRUE(pinned.total);
    EXPECT_TRUE(pinned.certified);
    EXPECT_EQ(value_of(ground, pinned, "a"), Ternary::False);
    EXPECT_EQ(value_of(ground, pinned, "b"), Ternary::False);
}

TEST(Absint, FoundedLoopMemberStaysTrue) {
    auto ground = must_ground("a :- b. b :- a. b. d :- a.");
    auto analysis = evaluate(ground);
    EXPECT_TRUE(analysis.total);
    EXPECT_TRUE(analysis.certified);
    EXPECT_EQ(value_of(ground, analysis, "a"), Ternary::True);
    EXPECT_EQ(value_of(ground, analysis, "d"), Ternary::True);
}

TEST(Absint, ChoiceHeadsStayUnknownWithoutPins) {
    auto ground = must_ground("{ a }. b :- a. c :- not a. d.");
    auto analysis = evaluate(ground);
    EXPECT_FALSE(analysis.total);
    EXPECT_EQ(value_of(ground, analysis, "a"), Ternary::Unknown);
    EXPECT_EQ(value_of(ground, analysis, "b"), Ternary::Unknown);
    EXPECT_EQ(value_of(ground, analysis, "c"), Ternary::Unknown);
    EXPECT_EQ(value_of(ground, analysis, "d"), Ternary::True);
}

TEST(Absint, PinsDecideChoiceAtomsAndCertify) {
    auto ground = must_ground("{ a }. b :- a. c :- not a.");
    const int a = ground.find(parse_atom("a").value());
    ASSERT_GE(a, 0);

    for (bool truth : {true, false}) {
        std::vector<std::pair<int, bool>> pins{{a, truth}};
        AbsintOptions options;
        options.pins = &pins;
        auto analysis = evaluate(ground, options);
        EXPECT_TRUE(analysis.total);
        EXPECT_TRUE(analysis.certified) << "pin a=" << truth;
        EXPECT_EQ(value_of(ground, analysis, "b"),
                  truth ? Ternary::True : Ternary::False);
        EXPECT_EQ(value_of(ground, analysis, "c"),
                  truth ? Ternary::False : Ternary::True);

        SolveOptions solve_options;
        solve_options.assumptions = pins;
        auto solved = solve(ground, solve_options);
        ASSERT_TRUE(solved.ok());
        ASSERT_EQ(solved.value().models.size(), 1u);
        EXPECT_EQ(certified_model(ground, analysis), solved.value().models[0].atoms);
    }
}

TEST(Absint, PinnedTrueAtomWithoutSupportIsNotCertified) {
    // Pinning a true while its only support x is pinned false: the solver
    // rejects every candidate as unstable (unsatisfiable); the analysis must
    // refuse to certify rather than invent a model.
    auto ground = must_ground("{ x }. a :- x. b :- not a.");
    const int a = ground.find(parse_atom("a").value());
    const int x = ground.find(parse_atom("x").value());
    ASSERT_GE(a, 0);
    ASSERT_GE(x, 0);
    std::vector<std::pair<int, bool>> pins{{a, true}, {x, false}};
    AbsintOptions options;
    options.pins = &pins;
    auto analysis = evaluate(ground, options);
    EXPECT_FALSE(analysis.certified);

    SolveOptions solve_options;
    solve_options.assumptions = pins;
    auto solved = solve(ground, solve_options);
    ASSERT_TRUE(solved.ok());
    EXPECT_FALSE(solved.value().satisfiable);
}

TEST(Absint, FiringConstraintBlocksCertification) {
    auto ground = must_ground("a. :- a.");
    auto analysis = evaluate(ground);
    EXPECT_FALSE(analysis.certified);

    auto solved = solve(ground);
    ASSERT_TRUE(solved.ok());
    EXPECT_FALSE(solved.value().satisfiable);
}

TEST(Absint, ContradictoryPinsAreAConflict) {
    auto ground = must_ground("a. b :- a.");
    const int a = ground.find(parse_atom("a").value());
    std::vector<std::pair<int, bool>> pins{{a, false}};
    AbsintOptions options;
    options.pins = &pins;
    auto analysis = evaluate(ground, options);
    EXPECT_TRUE(analysis.conflict);
    EXPECT_FALSE(analysis.certified);
}

TEST(Absint, CertifiedCostMatchesSolver) {
    auto ground = must_ground("a. b :- a. :~ a. [2@1, t1] :~ b. [3@2, t2]");
    auto analysis = evaluate(ground);
    ASSERT_TRUE(analysis.certified);
    auto solved = solve(ground);
    ASSERT_TRUE(solved.ok());
    ASSERT_EQ(solved.value().models.size(), 1u);
    EXPECT_EQ(certified_cost(ground, analysis), solved.value().models[0].cost);
}

TEST(Absint, TrippedBudgetInterruptsWithAllUnknown) {
    auto ground = must_ground("a. b :- a. c :- b. d :- c.");
    Budget budget;
    budget.set_max_steps(1);
    AbsintOptions options;
    options.budget = &budget;
    auto analysis = evaluate(ground, options);
    EXPECT_TRUE(analysis.interrupted);
    EXPECT_FALSE(analysis.certified);
    EXPECT_TRUE(std::all_of(analysis.values.begin(), analysis.values.end(),
                            [](Ternary v) { return v == Ternary::Unknown; }));
}

// --- simplify -------------------------------------------------------------

std::vector<std::vector<Atom>> all_models(const GroundProgram& program,
                                          const std::vector<std::pair<int, bool>>& pins) {
    SolveOptions options;
    options.assumptions = pins;
    options.optimize = false;
    auto result = solve(program, options);
    EXPECT_TRUE(result.ok()) << result.error();
    std::vector<std::vector<Atom>> models;
    if (!result.ok()) return models;
    for (const auto& model : result.value().models) models.push_back(model.atoms);
    std::sort(models.begin(), models.end());
    return models;
}

TEST(Absint, SimplifyPreservesModelsUnderEveryPinConfiguration) {
    const std::string text =
        "{ f1 }. { f2 }. base. "
        "x :- base. y :- x, f1. z :- y, not f2. "
        "w :- z. w :- f2. dead :- gone. "
        ":- y, f2, not x.";
    auto original = must_ground(text);
    auto simplified = must_ground(text);

    auto analysis = evaluate(simplified);
    auto stats = simplify(simplified, analysis);
    EXPECT_TRUE(stats.changed());
    EXPECT_GT(stats.facts_added, 0u);

    const int f1 = original.find(parse_atom("f1").value());
    const int f2 = original.find(parse_atom("f2").value());
    ASSERT_GE(f1, 0);
    ASSERT_GE(f2, 0);
    // Atom ids must survive simplification unchanged.
    EXPECT_EQ(simplified.find(parse_atom("f1").value()), f1);
    EXPECT_EQ(simplified.find(parse_atom("f2").value()), f2);

    for (bool v1 : {false, true}) {
        for (bool v2 : {false, true}) {
            std::vector<std::pair<int, bool>> pins{{f1, v1}, {f2, v2}};
            EXPECT_EQ(all_models(original, pins), all_models(simplified, pins))
                << "pins f1=" << v1 << " f2=" << v2;
        }
    }
}

TEST(Absint, SimplifyKeepsUnsatProgramsUnsat) {
    const std::string text = "a. b :- a. :- b.";
    auto original = must_ground(text);
    auto simplified = must_ground(text);
    auto analysis = evaluate(simplified);
    simplify(simplified, analysis);

    for (const GroundProgram* program : {&original, &simplified}) {
        auto solved = solve(*program);
        ASSERT_TRUE(solved.ok());
        EXPECT_FALSE(solved.value().satisfiable);
    }
}

TEST(Absint, SimplifyPreservesOptimizationCosts) {
    const std::string text =
        "{ pick }. cost :- pick. free :- not pick. base. "
        ":~ cost. [5@1, c] :~ base. [1@1, b]";
    auto original = must_ground(text);
    auto simplified = must_ground(text);
    auto analysis = evaluate(simplified);
    simplify(simplified, analysis);

    const int pick = original.find(parse_atom("pick").value());
    ASSERT_GE(pick, 0);
    for (bool v : {false, true}) {
        std::vector<std::pair<int, bool>> pins{{pick, v}};
        SolveOptions options;
        options.assumptions = pins;
        auto a = solve(original, options);
        auto b = solve(simplified, options);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a.value().best_cost, b.value().best_cost) << "pick=" << v;
    }
}

}  // namespace
}  // namespace cprisk::asp::absint
