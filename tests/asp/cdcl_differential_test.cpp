// Differential testing of the CDCL engine against the DPLL engine: both
// must produce the same projected answer sets, costs, and optima on random
// ground programs, including bounded choices and weak constraints. Seeds are
// deterministic so failures are reproducible.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

// Deterministic xorshift PRNG (same recipe as differential_test.cpp).
class Rng {
public:
    explicit Rng(unsigned seed) : state_(seed * 2654435761u + 1) {}
    unsigned next() {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }
    int below(int n) { return static_cast<int>(next() % static_cast<unsigned>(n)); }

private:
    unsigned state_;
};

/// Random propositional program over `n_atoms` atoms with choices (sometimes
/// bounded), normal rules, constraints, and weak constraints — the full
/// surface both engines must agree on.
std::string random_program(unsigned seed, int n_atoms, int n_rules) {
    Rng rng(seed);
    auto atom = [&](int i) { return "a" + std::to_string(i); };
    std::string text;

    const int n_choice = 1 + rng.below(3);
    for (int i = 0; i < n_choice; ++i) {
        if (rng.below(3) == 0) {
            // Bounded pair: exercises the bound-propagation learning path.
            const int x = rng.below(n_atoms);
            int y = rng.below(n_atoms);
            if (y == x) y = (y + 1) % n_atoms;
            const int lower = rng.below(2);
            text += std::to_string(lower) + " { " + atom(x) + " ; " + atom(y) + " } 1.\n";
        } else {
            text += "{ " + atom(rng.below(n_atoms)) + " }.\n";
        }
    }
    for (int r = 0; r < n_rules; ++r) {
        const int kind = rng.below(10);
        std::string body;
        const int body_len = 1 + rng.below(3);
        for (int b = 0; b < body_len; ++b) {
            if (!body.empty()) body += ", ";
            if (rng.below(3) == 0) body += "not ";
            body += atom(rng.below(n_atoms));
        }
        if (kind == 0) {
            text += ":- " + body + ".\n";
        } else {
            text += atom(rng.below(n_atoms)) + " :- " + body + ".\n";
        }
    }
    const int n_weaks = rng.below(3);
    for (int w = 0; w < n_weaks; ++w) {
        const int target = rng.below(n_atoms);
        text += ":~ " + atom(target) + ". [" + std::to_string(1 + rng.below(3)) + "@" +
                std::to_string(1 + rng.below(2)) + ", w" + std::to_string(w) + "]\n";
    }
    return text;
}

using ModelKey = std::pair<std::set<std::string>, std::vector<std::pair<long long, long long>>>;

std::vector<ModelKey> model_keys(const SolveResult& result) {
    std::vector<ModelKey> keys;
    for (const AnswerSet& model : result.models) {
        ModelKey key;
        for (const Atom& a : model.atoms) key.first.insert(a.to_string());
        for (const auto& [priority, weight] : model.cost) key.second.emplace_back(priority, weight);
        keys.push_back(std::move(key));
    }
    return keys;
}

void expect_engines_agree(const std::string& text) {
    auto parsed = parse_program(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error() << "\n" << text;
    auto grounded = ground(parsed.value());
    ASSERT_TRUE(grounded.ok()) << grounded.error() << "\n" << text;

    SolveOptions options;
    options.engine = SolverEngine::Cdcl;
    auto cdcl = solve(grounded.value(), options);
    ASSERT_TRUE(cdcl.ok()) << cdcl.error();
    options.engine = SolverEngine::Dpll;
    auto dpll = solve(grounded.value(), options);
    ASSERT_TRUE(dpll.ok()) << dpll.error();

    EXPECT_EQ(cdcl.value().satisfiable, dpll.value().satisfiable) << "program:\n" << text;
    EXPECT_EQ(cdcl.value().best_cost, dpll.value().best_cost) << "program:\n" << text;
    EXPECT_EQ(model_keys(cdcl.value()), model_keys(dpll.value()))
        << "program:\n" << text << "\nground:\n" << grounded.value().to_string();
}

class CdclDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(CdclDifferential, RandomProgramsMatchDpll) {
    const unsigned seed = GetParam();
    expect_engines_agree(random_program(seed, /*n_atoms=*/6, /*n_rules=*/8));
    expect_engines_agree(random_program(seed + 5000, /*n_atoms=*/9, /*n_rules=*/12));
    expect_engines_agree(random_program(seed + 9000, /*n_atoms=*/5, /*n_rules=*/14));
}

// 70 seeds x 3 shapes = 210 random programs.
INSTANTIATE_TEST_SUITE_P(Seeds, CdclDifferential, ::testing::Range(0u, 70u));

}  // namespace
}  // namespace cprisk::asp
