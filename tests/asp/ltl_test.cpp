// Finite-trace LTL: evaluator semantics, ASP compilation, and the
// cross-validation property that compiled verdicts match trace evaluation.
#include <gtest/gtest.h>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

using ltl::Formula;
using ltl::Trace;

Atom atom(std::string_view text) {
    auto r = parse_atom(text);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
}

Trace make_trace(std::initializer_list<std::initializer_list<const char*>> steps) {
    Trace trace;
    for (const auto& step : steps) {
        std::set<Atom> atoms;
        for (const char* a : step) atoms.insert(atom(a));
        trace.push_back(std::move(atoms));
    }
    return trace;
}

TEST(Ltl, AtomEvaluation) {
    auto trace = make_trace({{"p"}, {}});
    EXPECT_TRUE(Formula::atom(atom("p")).evaluate(trace, 0));
    EXPECT_FALSE(Formula::atom(atom("p")).evaluate(trace, 1));
}

TEST(Ltl, Booleans) {
    auto trace = make_trace({{"p"}});
    auto p = Formula::atom(atom("p"));
    auto q = Formula::atom(atom("q"));
    EXPECT_TRUE(Formula::truth().evaluate(trace));
    EXPECT_FALSE(Formula::falsity().evaluate(trace));
    EXPECT_FALSE(Formula::negate(p).evaluate(trace));
    EXPECT_FALSE(Formula::conj(p, q).evaluate(trace));
    EXPECT_TRUE(Formula::disj(p, q).evaluate(trace));
    EXPECT_FALSE(Formula::implies(p, q).evaluate(trace));
    EXPECT_TRUE(Formula::implies(q, p).evaluate(trace));
}

TEST(Ltl, StrongNextFalseAtEnd) {
    auto trace = make_trace({{"p"}, {"p"}});
    auto next_p = Formula::next(Formula::atom(atom("p")));
    EXPECT_TRUE(next_p.evaluate(trace, 0));
    EXPECT_FALSE(next_p.evaluate(trace, 1));
}

TEST(Ltl, WeakNextTrueAtEnd) {
    auto trace = make_trace({{}, {}});
    auto wnext = Formula::weak_next(Formula::atom(atom("p")));
    EXPECT_FALSE(wnext.evaluate(trace, 0));
    EXPECT_TRUE(wnext.evaluate(trace, 1));
}

TEST(Ltl, Always) {
    auto g_p = Formula::always(Formula::atom(atom("p")));
    EXPECT_TRUE(g_p.evaluate(make_trace({{"p"}, {"p"}, {"p"}})));
    EXPECT_FALSE(g_p.evaluate(make_trace({{"p"}, {}, {"p"}})));
}

TEST(Ltl, Eventually) {
    auto f_p = Formula::eventually(Formula::atom(atom("p")));
    EXPECT_TRUE(f_p.evaluate(make_trace({{}, {}, {"p"}})));
    EXPECT_FALSE(f_p.evaluate(make_trace({{}, {}, {}})));
}

TEST(Ltl, Until) {
    auto p_until_q =
        Formula::until(Formula::atom(atom("p")), Formula::atom(atom("q")));
    EXPECT_TRUE(p_until_q.evaluate(make_trace({{"p"}, {"p"}, {"q"}})));
    EXPECT_FALSE(p_until_q.evaluate(make_trace({{"p"}, {}, {"q"}})));
    EXPECT_FALSE(p_until_q.evaluate(make_trace({{"p"}, {"p"}, {"p"}})));  // q never
    EXPECT_TRUE(p_until_q.evaluate(make_trace({{"q"}})));  // immediate
}

TEST(Ltl, Release) {
    auto p_release_q =
        Formula::release(Formula::atom(atom("p")), Formula::atom(atom("q")));
    // q holds to the end -> true.
    EXPECT_TRUE(p_release_q.evaluate(make_trace({{"q"}, {"q"}})));
    // q holds until (inclusive) p -> true.
    EXPECT_TRUE(p_release_q.evaluate(make_trace({{"q"}, {"p", "q"}, {}})));
    // q dropped before p -> false.
    EXPECT_FALSE(p_release_q.evaluate(make_trace({{"q"}, {}, {"p", "q"}})));
}

TEST(Ltl, EmptyTrace) {
    Trace empty;
    EXPECT_TRUE(Formula::truth().evaluate(empty));
    EXPECT_FALSE(Formula::atom(atom("p")).evaluate(empty));
}

TEST(Ltl, ToString) {
    auto f = Formula::always(Formula::implies(Formula::atom(atom("overflow")),
                                              Formula::eventually(Formula::atom(atom("alert")))));
    EXPECT_EQ(f.to_string(), "G((overflow -> F(alert)))");
}

// --- compilation ------------------------------------------------------------

/// Solves `temporal_text` with `formula` compiled as requirement "r", at the
/// given horizon; returns whether violated(r) holds in the unique model.
bool compiled_violated(std::string_view temporal_text, const Formula& formula, int horizon) {
    auto parsed = parse_program(temporal_text);
    EXPECT_TRUE(parsed.ok()) << parsed.error();
    UnrollOptions unroll_options;
    unroll_options.horizon = horizon;
    auto unrolled = unroll(parsed.value(), unroll_options);
    EXPECT_TRUE(unrolled.ok()) << unrolled.error();
    Program program = std::move(unrolled).value();
    ltl::compile_requirement(program, "r", formula, horizon);
    auto solved = solve_program(program);
    EXPECT_TRUE(solved.ok()) << solved.error();
    EXPECT_EQ(solved.value().models.size(), 1u);
    return solved.value().models[0].contains(Atom{"violated", {Term::symbol("r")}});
}

TEST(LtlCompile, SafetyHolds) {
    // level stays normal forever: G !overflow holds.
    auto formula = Formula::always(Formula::negate(Formula::atom(atom("overflow"))));
    EXPECT_FALSE(compiled_violated(
        "#program initial. level(normal). "
        "#program dynamic. level(X) :- prev_level(X).",
        formula, 3));
}

TEST(LtlCompile, SafetyViolated) {
    auto formula = Formula::always(Formula::negate(Formula::atom(atom("overflow"))));
    EXPECT_TRUE(compiled_violated(
        "#program initial. level(normal). "
        "#program dynamic. overflow :- prev_level(normal). "
        "                  level(X) :- prev_level(X).",
        formula, 3));
}

TEST(LtlCompile, ResponseProperty) {
    // R2-style: G(overflow -> F alert).
    auto formula = Formula::always(Formula::implies(
        Formula::atom(atom("overflow")), Formula::eventually(Formula::atom(atom("alert")))));
    // Alert raised one step after overflow: requirement holds.
    EXPECT_FALSE(compiled_violated(
        "#program initial. level(normal). "
        "#program dynamic. overflow :- prev_level(normal). "
        "                  level(X) :- prev_level(X). "
        "                  alert :- prev_overflow.",
        formula, 3));
    // No alert ever: requirement violated.
    EXPECT_TRUE(compiled_violated(
        "#program initial. level(normal). "
        "#program dynamic. overflow :- prev_level(normal). "
        "                  level(X) :- prev_level(X).",
        formula, 3));
}

TEST(LtlCompile, EventuallyAtHorizonBoundary) {
    auto formula = Formula::eventually(Formula::atom(atom("done")));
    EXPECT_FALSE(compiled_violated(
        "#program final. done.", formula, 2));
    EXPECT_TRUE(compiled_violated(
        "#program initial. other.", formula, 2));
}

// Property-style sweep: the compiled verdict must agree with direct trace
// evaluation for deterministic temporal programs.
struct CrossCase {
    const char* name;
    const char* program;
    int horizon;
};

class LtlCrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(LtlCrossValidation, CompiledMatchesTraceEvaluation) {
    const auto& param = GetParam();

    std::vector<Formula> formulas = {
        Formula::always(Formula::negate(Formula::atom(atom("overflow")))),
        Formula::eventually(Formula::atom(atom("overflow"))),
        Formula::always(Formula::implies(Formula::atom(atom("overflow")),
                                         Formula::eventually(Formula::atom(atom("alert"))))),
        Formula::until(Formula::negate(Formula::atom(atom("overflow"))),
                       Formula::atom(atom("alert"))),
        Formula::next(Formula::atom(atom("overflow"))),
        Formula::weak_next(Formula::atom(atom("alert"))),
        Formula::release(Formula::atom(atom("alert")),
                         Formula::negate(Formula::atom(atom("overflow")))),
    };

    // Solve the bare program once to get the trace.
    auto parsed = parse_program(param.program);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    UnrollOptions unroll_options;
    unroll_options.horizon = param.horizon;
    auto unrolled = unroll(parsed.value(), unroll_options);
    ASSERT_TRUE(unrolled.ok()) << unrolled.error();
    auto solved = solve_program(unrolled.value());
    ASSERT_TRUE(solved.ok()) << solved.error();
    ASSERT_EQ(solved.value().models.size(), 1u);
    Trace trace = trace_from_answer(solved.value().models[0], param.horizon);

    for (std::size_t i = 0; i < formulas.size(); ++i) {
        const bool holds_on_trace = formulas[i].evaluate(trace, 0);
        const bool violated = compiled_violated(param.program, formulas[i], param.horizon);
        EXPECT_EQ(holds_on_trace, !violated)
            << "formula #" << i << " = " << formulas[i].to_string() << " on " << param.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, LtlCrossValidation,
    ::testing::Values(
        CrossCase{"steady", "#program initial. level(normal). "
                            "#program dynamic. level(X) :- prev_level(X).", 3},
        CrossCase{"overflow_no_alert",
                  "#program initial. level(normal). "
                  "#program dynamic. overflow :- prev_level(normal). "
                  "                  level(X) :- prev_level(X).", 3},
        CrossCase{"overflow_then_alert",
                  "#program initial. level(normal). "
                  "#program dynamic. overflow :- prev_level(normal). "
                  "                  level(X) :- prev_level(X). "
                  "                  alert :- prev_overflow. "
                  "                  alert :- prev_alert.", 4},
        CrossCase{"alert_immediately",
                  "#program always. alert.", 2},
        CrossCase{"overflow_everywhere",
                  "#program always. overflow. "
                  "#program dynamic. alert :- prev_overflow.", 3}),
    [](const ::testing::TestParamInfo<CrossCase>& info) { return info.param.name; });

}  // namespace
}  // namespace cprisk::asp
