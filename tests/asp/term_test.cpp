// Term and Atom value semantics, ordering, printing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "asp/term.hpp"
#include "common/error.hpp"

namespace cprisk::asp {
namespace {

TEST(Term, Kinds) {
    EXPECT_TRUE(Term::integer(3).is_integer());
    EXPECT_TRUE(Term::symbol("tank").is_symbol());
    EXPECT_TRUE(Term::variable("X").is_variable());
    EXPECT_TRUE(Term::compound("f", {Term::integer(1)}).is_compound());
}

TEST(Term, IntegerValue) {
    EXPECT_EQ(Term::integer(-42).as_int(), -42);
    EXPECT_THROW((void)Term::symbol("a").as_int(), cprisk::Error);
}

TEST(Term, Groundness) {
    EXPECT_TRUE(Term::integer(1).is_ground());
    EXPECT_TRUE(Term::symbol("a").is_ground());
    EXPECT_FALSE(Term::variable("X").is_ground());
    EXPECT_FALSE(Term::compound("f", {Term::symbol("a"), Term::variable("X")}).is_ground());
    EXPECT_TRUE(Term::compound("f", {Term::symbol("a"), Term::integer(2)}).is_ground());
}

TEST(Term, Equality) {
    EXPECT_EQ(Term::integer(1), Term::integer(1));
    EXPECT_NE(Term::integer(1), Term::integer(2));
    EXPECT_NE(Term::integer(1), Term::symbol("1x"));
    EXPECT_EQ(Term::compound("f", {Term::integer(1)}), Term::compound("f", {Term::integer(1)}));
    EXPECT_NE(Term::compound("f", {Term::integer(1)}), Term::compound("g", {Term::integer(1)}));
}

TEST(Term, TotalOrderIntegersFirst) {
    // integers < symbols < variables < compounds
    EXPECT_LT(Term::integer(99), Term::symbol("a"));
    EXPECT_LT(Term::symbol("z"), Term::variable("A"));
    EXPECT_LT(Term::variable("Z"), Term::compound("a", {}));
    EXPECT_LT(Term::integer(1), Term::integer(2));
    EXPECT_LT(Term::symbol("a"), Term::symbol("b"));
}

TEST(Term, UsableAsMapKey) {
    std::map<Term, int> m;
    m[Term::integer(1)] = 1;
    m[Term::symbol("a")] = 2;
    m[Term::compound("f", {Term::integer(1)})] = 3;
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m[Term::symbol("a")], 2);
}

TEST(Term, Printing) {
    EXPECT_EQ(Term::integer(7).to_string(), "7");
    EXPECT_EQ(Term::symbol("valve").to_string(), "valve");
    EXPECT_EQ(Term::compound("f", {Term::integer(1), Term::symbol("a")}).to_string(), "f(1,a)");
    EXPECT_EQ(Term::compound("+", {Term::variable("X"), Term::integer(1)}).to_string(), "(X+1)");
}

TEST(Term, CollectVariables) {
    std::vector<std::string> vars;
    Term::compound("f", {Term::variable("X"), Term::compound("g", {Term::variable("Y")})})
        .collect_variables(vars);
    ASSERT_EQ(vars.size(), 2u);
    EXPECT_EQ(vars[0], "X");
    EXPECT_EQ(vars[1], "Y");
}

TEST(Atom, Printing) {
    Atom a{"p", {Term::integer(1), Term::symbol("x")}};
    EXPECT_EQ(a.to_string(), "p(1,x)");
    Atom zero{"q", {}};
    EXPECT_EQ(zero.to_string(), "q");
}

TEST(Atom, Ordering) {
    Atom a{"p", {Term::integer(1)}};
    Atom b{"p", {Term::integer(2)}};
    Atom c{"q", {}};
    std::set<Atom> s{b, c, a};
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.begin()->to_string(), "p(1)");
}

TEST(Signature, ToString) {
    EXPECT_EQ((Signature{"violated", 1}).to_string(), "violated/1");
}

}  // namespace
}  // namespace cprisk::asp
