// CDCL engine behaviour (docs/solver.md): engine-vs-engine agreement on
// hand-picked programs, assumption handling and UNSAT cores, persistent
// incremental solving, the learning fault seam, and the solver pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "asp/asp.hpp"
#include "asp/cdcl.hpp"
#include "asp/incremental.hpp"
#include "common/fault_injection.hpp"

namespace cprisk::asp {
namespace {

GroundProgram must_ground(const std::string& text) {
    auto parsed = parse_program(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error() << "\n" << text;
    auto grounded = ground(parsed.value());
    EXPECT_TRUE(grounded.ok()) << grounded.error() << "\n" << text;
    return grounded.ok() ? std::move(grounded).value() : GroundProgram{};
}

int must_find(const GroundProgram& program, const std::string& atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    const int id = program.find(atom.value());
    EXPECT_GE(id, 0) << atom_text << " not interned";
    return id;
}

SolveResult must_solve(const GroundProgram& program, const SolveOptions& options) {
    auto result = solve(program, options);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : SolveResult{};
}

/// Projected model plus cost, fully comparable.
using ModelKey = std::pair<std::set<std::string>, std::vector<std::pair<long long, long long>>>;

std::vector<ModelKey> model_keys(const SolveResult& result) {
    std::vector<ModelKey> keys;
    for (const AnswerSet& model : result.models) {
        ModelKey key;
        for (const Atom& a : model.atoms) key.first.insert(a.to_string());
        for (const auto& [priority, weight] : model.cost) key.second.emplace_back(priority, weight);
        keys.push_back(std::move(key));
    }
    return keys;
}

void expect_engines_agree(const std::string& text,
                          std::vector<std::pair<std::string, bool>> assumption_atoms = {}) {
    SCOPED_TRACE(text);
    GroundProgram program = must_ground(text);
    SolveOptions options;
    for (const auto& [name, value] : assumption_atoms) {
        options.assumptions.emplace_back(must_find(program, name), value);
    }
    options.engine = SolverEngine::Cdcl;
    SolveResult cdcl = must_solve(program, options);
    options.engine = SolverEngine::Dpll;
    SolveResult dpll = must_solve(program, options);

    EXPECT_EQ(cdcl.satisfiable, dpll.satisfiable);
    EXPECT_EQ(cdcl.best_cost, dpll.best_cost);
    // Both engines sort canonically, so the full ordered lists must match.
    EXPECT_EQ(model_keys(cdcl), model_keys(dpll));
}

TEST(Cdcl, AgreesWithDpllOnHandPickedPrograms) {
    const char* programs[] = {
        "a. b :- a. c :- b, not d.",
        "a :- not b. b :- not a.",
        "a :- not a.",
        "a :- b. b :- a.",
        "a :- b. b :- a. b :- c. { c }.",
        "{ a }. { b }. :- a, b.",
        "{ a ; b ; c }. :- not a, not b, not c.",
        "1 { a ; b } 1.",
        "0 { a ; b } 1. c :- a.",
        "a :- not b. b :- not c. c :- not a.",
        "1 { a ; b } 1. 1 { b ; c } 1. 1 { c ; a } 1.",  // odd XOR cycle: unsat
        "{ a }. b :- a. c :- not b.",
        "p(1..3). q(X) :- p(X), not r(X). { r(2) }.",
        "{ a ; b }. :~ a. [2@1, a] :~ b. [1@1, b]",
        "{ a ; b ; c }. :~ a. [1@2, a] :~ b. [1@1, b] :- not a, not b, not c.",
        "{ seed }. echo :- peer. peer :- echo. echo :- seed.",
    };
    for (const char* text : programs) expect_engines_agree(text);
}

TEST(Cdcl, AssumptionsPinAtoms) {
    GroundProgram program = must_ground("{ a }. b :- a. c :- not a.");
    const int a = must_find(program, "a");

    SolveOptions options;
    options.assumptions = {{a, true}};
    SolveResult pinned_true = must_solve(program, options);
    ASSERT_EQ(pinned_true.models.size(), 1u);
    EXPECT_TRUE(pinned_true.models[0].contains(parse_atom("b").value()));

    options.assumptions = {{a, false}};
    SolveResult pinned_false = must_solve(program, options);
    ASSERT_EQ(pinned_false.models.size(), 1u);
    EXPECT_TRUE(pinned_false.models[0].contains(parse_atom("c").value()));

    expect_engines_agree("{ a }. b :- a. c :- not a.", {{"a", true}});
    expect_engines_agree("{ a }. b :- a. c :- not a.", {{"a", false}});
}

TEST(Cdcl, UnsatUnderAssumptionsYieldsCore) {
    GroundProgram program = must_ground("{ a }. { b }. { c }. :- a, b.");
    const int a = must_find(program, "a");
    const int b = must_find(program, "b");
    const int c = must_find(program, "c");

    SolveOptions options;
    options.assumptions = {{a, true}, {b, true}, {c, true}};
    SolveResult result = must_solve(program, options);
    EXPECT_FALSE(result.satisfiable);
    ASSERT_TRUE(result.assumption_core.has_value());

    // The core is a subset of the assumptions, stays unsatisfiable on its
    // own, and excludes the irrelevant pin on c.
    for (const auto& assumption : *result.assumption_core) {
        EXPECT_NE(std::find(options.assumptions.begin(), options.assumptions.end(), assumption),
                  options.assumptions.end());
        EXPECT_NE(assumption.first, c);
    }
    SolveOptions core_only;
    core_only.assumptions = *result.assumption_core;
    EXPECT_FALSE(must_solve(program, core_only).satisfiable);
}

TEST(Cdcl, SatisfiableLeavesNoCore) {
    GroundProgram program = must_ground("{ a }. b :- a.");
    SolveOptions options;
    options.assumptions = {{must_find(program, "a"), true}};
    SolveResult result = must_solve(program, options);
    EXPECT_TRUE(result.satisfiable);
    EXPECT_FALSE(result.assumption_core.has_value());
}

TEST(Cdcl, Chain6CoreIsUnsatAndContainsAMinimalCore) {
    // Six chained links derive c6, which is forbidden; four free atoms are
    // irrelevant. Pinning everything true is UNSAT with the six links as the
    // unique minimal core.
    std::string text = "{ g1 }. { g2 }. { g3 }. { g4 }.\n";
    for (int i = 1; i <= 6; ++i) {
        const std::string fi = "f" + std::to_string(i);
        text += "{ " + fi + " }.\n";
        if (i == 1) {
            text += "c1 :- f1.\n";
        } else {
            text += "c" + std::to_string(i) + " :- c" + std::to_string(i - 1) + ", " + fi + ".\n";
        }
    }
    text += ":- c6.\n";
    GroundProgram program = must_ground(text);

    std::vector<std::pair<int, bool>> assumptions;
    for (int i = 1; i <= 6; ++i) assumptions.emplace_back(must_find(program, "f" + std::to_string(i)), true);
    for (int i = 1; i <= 4; ++i) assumptions.emplace_back(must_find(program, "g" + std::to_string(i)), true);

    SolveOptions options;
    options.assumptions = assumptions;
    SolveResult result = must_solve(program, options);
    EXPECT_FALSE(result.satisfiable);
    ASSERT_TRUE(result.assumption_core.has_value());
    const std::set<std::pair<int, bool>> core(result.assumption_core->begin(),
                                              result.assumption_core->end());

    // Brute force every assumption subset; collect the minimal UNSAT ones.
    std::vector<std::set<std::pair<int, bool>>> unsat_subsets;
    for (unsigned mask = 0; mask < (1u << assumptions.size()); ++mask) {
        SolveOptions subset_options;
        std::set<std::pair<int, bool>> subset;
        for (std::size_t i = 0; i < assumptions.size(); ++i) {
            if ((mask >> i) & 1u) {
                subset_options.assumptions.push_back(assumptions[i]);
                subset.insert(assumptions[i]);
            }
        }
        if (!must_solve(program, subset_options).satisfiable) unsat_subsets.push_back(std::move(subset));
    }
    std::vector<std::set<std::pair<int, bool>>> minimal;
    for (const auto& s : unsat_subsets) {
        bool is_minimal = true;
        for (const auto& t : unsat_subsets) {
            if (t != s && std::includes(s.begin(), s.end(), t.begin(), t.end())) {
                is_minimal = false;
                break;
            }
        }
        if (is_minimal) minimal.push_back(s);
    }
    ASSERT_FALSE(minimal.empty());
    // The reported core must contain a minimal core (it is UNSAT on its own)
    // and be no larger than the full relevant chain: the four free pins
    // never participate in the conflict.
    bool contains_minimal = false;
    for (const auto& m : minimal) {
        if (std::includes(core.begin(), core.end(), m.begin(), m.end())) contains_minimal = true;
    }
    EXPECT_TRUE(contains_minimal);
    for (int i = 1; i <= 4; ++i) {
        EXPECT_EQ(core.count({must_find(program, "g" + std::to_string(i)), true}), 0u);
    }
}

TEST(Cdcl, IncrementalSolverRetainsEntailedClausesAcrossSolves) {
    // The odd XOR cycle is active only under s; pinning s true exposes the
    // conflict, so the first solve learns entailed clauses mentioning s that
    // the second solve re-uses to refute the same pin without re-searching.
    GroundProgram program = must_ground(
        "{ s }. 1 { a ; b } 1 :- s. 1 { b ; c } 1 :- s. 1 { c ; a } 1 :- s.");
    IncrementalSolver solver(program);
    EXPECT_EQ(solver.program(), &program);
    const int s = must_find(program, "s");

    SolveOptions options;
    options.assumptions = {{s, true}};
    SolveResult first = solver.solve(options);
    EXPECT_FALSE(first.satisfiable);
    EXPECT_GT(first.stats.conflicts, 0u);
    EXPECT_EQ(solver.solve_generation(), 1u);
    EXPECT_GT(solver.retained_learned(), 0u);

    SolveResult second = solver.solve(options);
    EXPECT_FALSE(second.satisfiable);
    EXPECT_EQ(solver.solve_generation(), 2u);
    // Warm solve: propagation whose reasons are clauses learned by an
    // earlier generation closes the refutation without repeating the search.
    EXPECT_GT(second.stats.reused_clause_propagations, 0u);
    EXPECT_LT(second.stats.conflicts, first.stats.conflicts);

    // Unpinned, the warm solver still sees the satisfiable program.
    SolveResult unpinned = solver.solve(SolveOptions{});
    EXPECT_TRUE(unpinned.satisfiable);
}

TEST(Cdcl, UnsatProgramIsRememberedAcrossSolves) {
    GroundProgram program = must_ground("1 { a ; b } 1. 1 { b ; c } 1. 1 { c ; a } 1.");
    IncrementalSolver solver(program);
    SolveResult first = solver.solve(SolveOptions{});
    EXPECT_FALSE(first.satisfiable);
    EXPECT_GT(first.stats.conflicts, 0u);
    // The refutation is entailed, so the second solve is immediate.
    SolveResult second = solver.solve(SolveOptions{});
    EXPECT_FALSE(second.satisfiable);
    EXPECT_EQ(second.stats.conflicts, 0u);
}

TEST(Cdcl, IncrementalSolverAgreesWithColdSolvesUnderChangingAssumptions) {
    GroundProgram program = must_ground(
        "{ f1 }. { f2 }. x :- f1, not f2. y :- f2, not f1. both :- f1, f2. :- both.");
    IncrementalSolver warm(program);
    const int f1 = must_find(program, "f1");
    const int f2 = must_find(program, "f2");
    const std::vector<std::vector<std::pair<int, bool>>> contexts = {
        {}, {{f1, true}}, {{f2, true}}, {{f1, true}, {f2, true}}, {{f1, false}, {f2, false}},
        {{f1, true}, {f2, false}}, {{f1, true}}, {},  // revisits exercise retained state
    };
    for (const auto& context : contexts) {
        SolveOptions options;
        options.assumptions = context;
        SolveResult warm_result = warm.solve(options);
        CdclSolver cold(program);
        SolveResult cold_result = cold.solve(options);
        EXPECT_EQ(warm_result.satisfiable, cold_result.satisfiable);
        EXPECT_EQ(model_keys(warm_result), model_keys(cold_result));
        EXPECT_EQ(warm_result.assumption_core.has_value(),
                  cold_result.assumption_core.has_value());
    }
}

TEST(Cdcl, LearnFaultSeamDegradesToLearningOffWithSameAnswers) {
    GroundProgram program = must_ground("1 { a ; b } 1. 1 { b ; c } 1. 1 { c ; a } 1.");
    SolveOptions options;
    SolveResult reference = must_solve(program, options);

    fault::reset();
    fault::arm("asp.cdcl.learn", 1);
    SolveResult degraded = must_solve(program, options);
    fault::reset();

    EXPECT_EQ(degraded.satisfiable, reference.satisfiable);
    EXPECT_EQ(model_keys(degraded), model_keys(reference));

    // Same seam on a satisfiable enumeration.
    GroundProgram sat = must_ground("1 { a ; b } 1. 1 { b ; c } 1.");
    SolveResult sat_reference = must_solve(sat, options);
    fault::reset();
    fault::arm("asp.cdcl.learn", 1);
    SolveResult sat_degraded = must_solve(sat, options);
    fault::reset();
    EXPECT_EQ(model_keys(sat_degraded), model_keys(sat_reference));
}

TEST(Cdcl, SolveDispatchUsesWarmSolverOnlyForMatchingProgram) {
    GroundProgram program = must_ground("{ a }. b :- a.");
    GroundProgram other = must_ground("{ x }. y :- x.");
    IncrementalSolver warm(program);

    SolveOptions options;
    options.incremental = &warm;
    SolveResult via_warm = must_solve(program, options);
    EXPECT_EQ(via_warm.models.size(), 2u);
    EXPECT_EQ(warm.solve_generation(), 1u);

    // Mismatched program: dispatch must fall back to a cold solver rather
    // than feed the wrong completion.
    SolveResult mismatched = must_solve(other, options);
    EXPECT_EQ(mismatched.models.size(), 2u);
    EXPECT_EQ(warm.solve_generation(), 1u);

    // The DPLL escape hatch ignores the warm solver entirely.
    options.engine = SolverEngine::Dpll;
    SolveResult dpll = must_solve(program, options);
    EXPECT_EQ(dpll.models.size(), 2u);
    EXPECT_EQ(warm.solve_generation(), 1u);
}

TEST(Cdcl, SolverPoolReusesIdleSolvers) {
    GroundProgram program = must_ground("{ a }. b :- a.");
    SolverPool pool(program);
    {
        SolverPool::Lease one = pool.acquire();
        SolverPool::Lease two = pool.acquire();
        ASSERT_NE(one.solver(), nullptr);
        ASSERT_NE(two.solver(), nullptr);
        EXPECT_NE(one.solver(), two.solver());
        EXPECT_EQ(pool.size(), 2u);
        SolveOptions options;
        EXPECT_TRUE(one.solver()->solve(options).satisfiable);
    }
    // Both leases returned: the next acquire re-uses a warm solver.
    SolverPool::Lease again = pool.acquire();
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(again.solver()->program(), &program);
}

TEST(Cdcl, BudgetInterruptReportsPartialResultWithoutCore) {
    GroundProgram program = must_ground(
        "{ a1 }. { a2 }. { a3 }. { a4 }. { a5 }. { a6 }. { a7 }. { a8 }.");
    SolveOptions options;
    options.max_decisions = 3;  // 256 models need far more decisions
    SolveResult result = must_solve(program, options);
    ASSERT_TRUE(result.interrupt.has_value());
    EXPECT_FALSE(result.assumption_core.has_value());
}

TEST(Cdcl, StatsExposeLearningActivity) {
    GroundProgram program = must_ground("1 { a ; b } 1. 1 { b ; c } 1. 1 { c ; a } 1.");
    SolveResult result = must_solve(program, SolveOptions{});
    EXPECT_FALSE(result.satisfiable);
    EXPECT_GT(result.stats.conflicts, 0u);
    EXPECT_GT(result.stats.learned_clauses, 0u);
    EXPECT_GT(result.stats.learned_literals, 0u);
}

}  // namespace
}  // namespace cprisk::asp
