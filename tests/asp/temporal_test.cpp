// Telingo-style temporal unrolling: sections, prev_ references, statics,
// the paper's Listing 2 fault-model idiom.
#include <gtest/gtest.h>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

SolveResult must_solve(std::string_view text, int horizon) {
    PipelineOptions options;
    options.horizon = horizon;
    auto result = solve_text(text, options);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : SolveResult{};
}

bool model_has(const AnswerSet& model, std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    return model.contains(atom.value());
}

TEST(Temporal, InitialHoldsAtZeroOnly) {
    auto result = must_solve("#program initial. s(a).", 2);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "s(a,0)"));
    EXPECT_FALSE(model_has(result.models[0], "s(a,1)"));
    EXPECT_FALSE(model_has(result.models[0], "s(a,2)"));
}

TEST(Temporal, FrameAxiomPropagatesState) {
    auto result = must_solve(
        "#program initial. level(normal). "
        "#program dynamic. level(X) :- prev_level(X).",
        3);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "level(normal,0)"));
    EXPECT_TRUE(model_has(result.models[0], "level(normal,3)"));
}

TEST(Temporal, DynamicTransition) {
    // A two-phase counter: a -> b -> b -> ...
    auto result = must_solve(
        "#program initial. phase(a). "
        "#program dynamic. phase(b) :- prev_phase(a). phase(b) :- prev_phase(b).",
        2);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "phase(a,0)"));
    EXPECT_TRUE(model_has(result.models[0], "phase(b,1)"));
    EXPECT_TRUE(model_has(result.models[0], "phase(b,2)"));
    EXPECT_FALSE(model_has(result.models[0], "phase(a,1)"));
}

TEST(Temporal, BasePredicatesStayStatic) {
    auto result = must_solve(
        "#program base. component(tank). "
        "#program always. observed(C) :- component(C).",
        1);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "component(tank)"));
    EXPECT_TRUE(model_has(result.models[0], "observed(tank,0)"));
    EXPECT_TRUE(model_has(result.models[0], "observed(tank,1)"));
}

TEST(Temporal, FinalConstraint) {
    // Choice at every step; final constraint forces on at the end.
    auto result = must_solve(
        "#program always. { on }. "
        "#program final. :- not on.",
        1);
    // on(0) free, on(1) forced true -> 2 models.
    EXPECT_EQ(result.models.size(), 2u);
    for (const auto& m : result.models) {
        EXPECT_TRUE(model_has(m, "on(1)"));
    }
}

TEST(Temporal, PaperListing2StuckAtFault) {
    // Listing 2: the component state does not change while stuck_at_x is
    // active.
    auto result = must_solve(
        "#program base. component(valve). "
        "#program initial. component_state(valve, open). "
        "#program always. active_fault(valve, stuck_at_x). "
        "#program dynamic. component_state(C, X) :- prev_component_state(C, X), "
        "                                           active_fault(C, stuck_at_x).",
        3);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "component_state(valve,open,0)"));
    EXPECT_TRUE(model_has(result.models[0], "component_state(valve,open,3)"));
}

TEST(Temporal, HorizonConstOverridesOption) {
    auto result = must_solve(
        "#const horizon = 1. "
        "#program initial. s. "
        "#program dynamic. s :- prev_s.",
        5);  // option says 5, const says 1
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "s(1)"));
    EXPECT_FALSE(model_has(result.models[0], "s(2)"));
}

TEST(Temporal, ShowArityBumpedForTemporalPredicates) {
    auto result = must_solve(
        "#program base. other. "
        "#program initial. s. "
        "#show s/0.",
        1);
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "s(0)"));
    EXPECT_FALSE(model_has(result.models[0], "other"));  // hidden by #show
}

TEST(Temporal, PrevInInitialFails) {
    Program program;
    auto parsed = parse_program("#program initial. s :- prev_s.");
    ASSERT_TRUE(parsed.ok());
    UnrollOptions options;
    options.horizon = 2;
    EXPECT_FALSE(unroll(parsed.value(), options).ok());
}

TEST(Temporal, PrevInHeadFails) {
    auto parsed = parse_program("#program dynamic. prev_s :- s.");
    ASSERT_TRUE(parsed.ok());
    UnrollOptions options;
    EXPECT_FALSE(unroll(parsed.value(), options).ok());
}

TEST(Temporal, StaticAndTemporalConflictFails) {
    auto parsed = parse_program("#program base. s(a). #program initial. s(b).");
    ASSERT_TRUE(parsed.ok());
    UnrollOptions options;
    EXPECT_FALSE(unroll(parsed.value(), options).ok());
}

TEST(Temporal, ZeroHorizonOnlyInitial) {
    auto parsed = parse_program("#program initial. s. #program dynamic. q :- prev_s.");
    ASSERT_TRUE(parsed.ok());
    UnrollOptions options;
    options.horizon = 0;
    auto unrolled = unroll(parsed.value(), options);
    ASSERT_TRUE(unrolled.ok()) << unrolled.error();
    auto solved = solve_program(unrolled.value());
    ASSERT_TRUE(solved.ok());
    ASSERT_EQ(solved.value().models.size(), 1u);
    EXPECT_TRUE(model_has(solved.value().models[0], "s(0)"));
    EXPECT_FALSE(model_has(solved.value().models[0], "q(1)"));
}

TEST(Temporal, TraceReconstruction) {
    auto result = must_solve(
        "#program initial. level(normal). "
        "#program dynamic. level(high) :- prev_level(normal). "
        "                  level(overflow) :- prev_level(high). "
        "                  level(overflow) :- prev_level(overflow).",
        2);
    ASSERT_EQ(result.models.size(), 1u);
    ltl::Trace trace = trace_from_answer(result.models[0], 2);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_TRUE(trace[0].count(parse_atom("level(normal)").value()) > 0);
    EXPECT_TRUE(trace[1].count(parse_atom("level(high)").value()) > 0);
    EXPECT_TRUE(trace[2].count(parse_atom("level(overflow)").value()) > 0);
}

TEST(Temporal, ChoicePerStepEnumerates) {
    auto result = must_solve("#program always. { act }.", 1);
    EXPECT_EQ(result.models.size(), 4u);  // 2 steps x binary choice
}

}  // namespace
}  // namespace cprisk::asp
