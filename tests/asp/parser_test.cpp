// Lexer + parser coverage: statements, operators, directives, errors.
#include <gtest/gtest.h>

#include "asp/parser.hpp"

namespace cprisk::asp {
namespace {

Program must_parse(std::string_view text) {
    auto result = parse_program(text);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : Program{};
}

TEST(Parser, Fact) {
    auto p = must_parse("p(1, a).");
    ASSERT_EQ(p.rules().size(), 1u);
    EXPECT_EQ(p.rules()[0].rule.head.kind, Head::Kind::Atom);
    EXPECT_EQ(p.rules()[0].rule.head.atom.to_string(), "p(1,a)");
    EXPECT_TRUE(p.rules()[0].rule.body.empty());
}

TEST(Parser, ZeroArityFact) {
    auto p = must_parse("alive.");
    ASSERT_EQ(p.rules().size(), 1u);
    EXPECT_EQ(p.rules()[0].rule.head.atom.predicate, "alive");
    EXPECT_TRUE(p.rules()[0].rule.head.atom.args.empty());
}

TEST(Parser, NormalRuleWithNegation) {
    auto p = must_parse("flies(X) :- bird(X), not penguin(X).");
    ASSERT_EQ(p.rules().size(), 1u);
    const Rule& rule = p.rules()[0].rule;
    ASSERT_EQ(rule.body.size(), 2u);
    EXPECT_FALSE(rule.body[0].negated);
    EXPECT_TRUE(rule.body[1].negated);
}

TEST(Parser, Constraint) {
    auto p = must_parse(":- broken(X), critical(X).");
    ASSERT_EQ(p.rules().size(), 1u);
    EXPECT_EQ(p.rules()[0].rule.head.kind, Head::Kind::Constraint);
    EXPECT_EQ(p.rules()[0].rule.body.size(), 2u);
}

TEST(Parser, Comparisons) {
    auto p = must_parse("q(X) :- p(X), X < 5, X != 3, X >= 0.");
    const Rule& rule = p.rules()[0].rule;
    ASSERT_EQ(rule.body.size(), 4u);
    EXPECT_EQ(rule.body[1].kind, Literal::Kind::Comparison);
    EXPECT_EQ(rule.body[1].op, CompareOp::Lt);
    EXPECT_EQ(rule.body[2].op, CompareOp::Ne);
    EXPECT_EQ(rule.body[3].op, CompareOp::Ge);
}

TEST(Parser, ArithmeticPrecedence) {
    auto t = parse_term("1 + 2 * 3");
    ASSERT_TRUE(t.ok()) << t.error();
    // Should parse as 1 + (2*3).
    EXPECT_EQ(t.value().to_string(), "(1+(2*3))");
}

TEST(Parser, UnaryMinusFoldsIntegers) {
    auto t = parse_term("-4");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value().as_int(), -4);
}

TEST(Parser, Interval) {
    auto p = must_parse("time(0..10).");
    const Atom& head = p.rules()[0].rule.head.atom;
    ASSERT_EQ(head.args.size(), 1u);
    EXPECT_EQ(head.args[0].to_string(), "(0..10)");
}

TEST(Parser, ChoiceRule) {
    auto p = must_parse("{ pick(X) : item(X) ; extra }.");
    const Head& head = p.rules()[0].rule.head;
    EXPECT_EQ(head.kind, Head::Kind::Choice);
    ASSERT_EQ(head.elements.size(), 2u);
    EXPECT_EQ(head.elements[0].condition.size(), 1u);
    EXPECT_TRUE(head.elements[1].condition.empty());
    EXPECT_FALSE(head.lower_bound.has_value());
}

TEST(Parser, BoundedChoice) {
    auto p = must_parse("1 { assign(N,C) : color(C) } 1 :- node(N).");
    const Head& head = p.rules()[0].rule.head;
    EXPECT_EQ(head.kind, Head::Kind::Choice);
    EXPECT_EQ(head.lower_bound, 1);
    EXPECT_EQ(head.upper_bound, 1);
    EXPECT_EQ(p.rules()[0].rule.body.size(), 1u);
}

TEST(Parser, WeakConstraint) {
    auto p = must_parse(":~ cost(X, C). [C@2, X]");
    ASSERT_EQ(p.weaks().size(), 1u);
    const WeakConstraint& w = p.weaks()[0].weak;
    EXPECT_EQ(w.priority, 2);
    EXPECT_EQ(w.weight.to_string(), "C");
    ASSERT_EQ(w.tuple.size(), 1u);
}

TEST(Parser, MinimizeDesugarsToWeak) {
    auto p = must_parse("#minimize { C@1,X : cost(X,C) }.");
    ASSERT_EQ(p.weaks().size(), 1u);
    EXPECT_EQ(p.weaks()[0].weak.body.size(), 1u);
    EXPECT_EQ(p.weaks()[0].weak.priority, 1);
}

TEST(Parser, MaximizeNegatesWeight) {
    auto p = must_parse("#maximize { 3@1 : good }.");
    ASSERT_EQ(p.weaks().size(), 1u);
    EXPECT_EQ(p.weaks()[0].weak.weight.to_string(), "(0-3)");
}

TEST(Parser, ShowDirective) {
    auto p = must_parse("#show violated/1.");
    ASSERT_EQ(p.shows().size(), 1u);
    EXPECT_EQ(p.shows()[0].predicate, "violated");
    EXPECT_EQ(p.shows()[0].arity, 1u);
}

TEST(Parser, ConstDirective) {
    auto p = must_parse("#const horizon = 5.");
    ASSERT_EQ(p.consts().size(), 1u);
    EXPECT_EQ(p.consts()[0].first, "horizon");
    EXPECT_EQ(p.consts()[0].second.as_int(), 5);
}

TEST(Parser, ProgramSections) {
    auto p = must_parse(
        "#program base. c(a). "
        "#program initial. s(x). "
        "#program dynamic. s(y) :- prev_s(x). "
        "#program final. :- s(x).");
    ASSERT_EQ(p.rules().size(), 4u);
    EXPECT_EQ(p.rules()[0].section, SectionKind::Base);
    EXPECT_EQ(p.rules()[1].section, SectionKind::Initial);
    EXPECT_EQ(p.rules()[2].section, SectionKind::Dynamic);
    EXPECT_EQ(p.rules()[3].section, SectionKind::Final);
    EXPECT_TRUE(p.is_temporal());
}

TEST(Parser, CommentsAreSkipped) {
    auto p = must_parse("% header comment\np(1). % trailing\n% footer");
    EXPECT_EQ(p.rules().size(), 1u);
}

TEST(Parser, ErrorsReportLocation) {
    auto result = parse_program("p(1).\nq(,).");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().find("line 2"), std::string::npos);
}

TEST(Parser, MissingDotFails) {
    EXPECT_FALSE(parse_program("p(1)").ok());
}

TEST(Parser, UnknownDirectiveFails) {
    EXPECT_FALSE(parse_program("#frobnicate.").ok());
}

TEST(Parser, RoundTripThroughToString) {
    const std::string text =
        "item(1..3).\n"
        "1 { pick(X) : item(X) } 2.\n"
        ":- pick(1), pick(2).\n"
        "q(X) :- pick(X), X > 1.\n";
    auto first = must_parse(text);
    auto second = parse_program(first.to_string());
    ASSERT_TRUE(second.ok()) << second.error() << "\nprinted:\n" << first.to_string();
    EXPECT_EQ(first.to_string(), second.value().to_string());
}

TEST(Parser, ParseAtomHelper) {
    auto a = parse_atom("component_state(tank, overflow)");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().predicate, "component_state");
    EXPECT_EQ(a.value().args.size(), 2u);
}

}  // namespace
}  // namespace cprisk::asp
