// Stable-model solver behaviour: facts, negation, loops, choices,
// constraints, enumeration, projection, assumptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "asp/asp.hpp"
#include "asp/parser.hpp"

namespace cprisk::asp {
namespace {

SolveResult must_solve(std::string_view text, PipelineOptions options = {}) {
    auto result = solve_text(text, options);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : SolveResult{};
}

bool model_has(const AnswerSet& model, std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    return model.contains(atom.value());
}

TEST(Solver, FactsAreDerived) {
    auto result = must_solve("p(1). p(2). q :- p(1).");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "p(1)"));
    EXPECT_TRUE(model_has(result.models[0], "p(2)"));
    EXPECT_TRUE(model_has(result.models[0], "q"));
}

TEST(Solver, ChainedDerivation) {
    auto result = must_solve("a. b :- a. c :- b. d :- c.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "d"));
}

TEST(Solver, UnderivableAtomIsFalse) {
    auto result = must_solve("a. b :- c.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "b"));
    EXPECT_FALSE(model_has(result.models[0], "c"));
}

TEST(Solver, StratifiedNegation) {
    auto result = must_solve("bird(tweety). penguin(sam). bird(sam). "
                             "flies(X) :- bird(X), not penguin(X).");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "flies(tweety)"));
    EXPECT_FALSE(model_has(result.models[0], "flies(sam)"));
}

TEST(Solver, EvenNegativeLoopHasTwoModels) {
    auto result = must_solve("a :- not b. b :- not a.");
    ASSERT_EQ(result.models.size(), 2u);
    int with_a = 0;
    for (const auto& m : result.models) {
        if (model_has(m, "a")) ++with_a;
        EXPECT_NE(model_has(m, "a"), model_has(m, "b"));
    }
    EXPECT_EQ(with_a, 1);
}

TEST(Solver, OddNegativeLoopIsUnsat) {
    auto result = must_solve("a :- not a.");
    EXPECT_FALSE(result.satisfiable);
    EXPECT_TRUE(result.models.empty());
}

TEST(Solver, PositiveLoopIsUnfounded) {
    // a and b support each other only circularly: the single answer set is {}.
    auto result = must_solve("a :- b. b :- a.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "a"));
    EXPECT_FALSE(model_has(result.models[0], "b"));
}

TEST(Solver, PositiveLoopWithExternalSupport) {
    auto result = must_solve("a :- b. b :- a. b :- c. c.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "a"));
    EXPECT_TRUE(model_has(result.models[0], "b"));
}

TEST(Solver, PositiveLoopThroughChoiceNotSelfSupporting) {
    // Choice gives b freely, which can then support a; but a cannot support
    // itself through the loop when b is not chosen.
    auto result = must_solve("{ b }. a :- b. b2 :- a.");
    ASSERT_EQ(result.models.size(), 2u);
    for (const auto& m : result.models) {
        EXPECT_EQ(model_has(m, "a"), model_has(m, "b"));
        EXPECT_EQ(model_has(m, "b2"), model_has(m, "b"));
    }
}

TEST(Solver, ConstraintEliminatesModels) {
    auto result = must_solve("{ a }. :- a.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "a"));
}

TEST(Solver, ConstraintMakesProgramUnsat) {
    auto result = must_solve("a. :- a.");
    EXPECT_FALSE(result.satisfiable);
}

TEST(Solver, ChoiceEnumeratesSubsets) {
    auto result = must_solve("item(1). item(2). item(3). { pick(X) : item(X) }.");
    EXPECT_EQ(result.models.size(), 8u);
}

TEST(Solver, CardinalityLowerBound) {
    auto result = must_solve("item(1). item(2). item(3). 2 { pick(X) : item(X) }.");
    // Subsets of size >= 2: C(3,2) + C(3,3) = 4.
    EXPECT_EQ(result.models.size(), 4u);
}

TEST(Solver, CardinalityBothBounds) {
    auto result = must_solve("item(1..4). 2 { pick(X) : item(X) } 2.");
    EXPECT_EQ(result.models.size(), 6u);  // C(4,2)
}

TEST(Solver, ChoiceWithBodyGatesTheChoice) {
    auto result = must_solve("{ a } :- b. b :- not c.");
    // b is true (c false), so a is free: 2 models.
    EXPECT_EQ(result.models.size(), 2u);
}

TEST(Solver, ChoiceBodyFalseFixesAtomFalse) {
    auto result = must_solve("{ a } :- b.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "a"));
}

TEST(Solver, ShowProjectsAndDedupes) {
    // Two choices over b, projection shows only a: distinct projected models
    // collapse.
    auto result = must_solve("{ b }. a. #show a/0.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_EQ(result.models[0].atoms.size(), 1u);
    EXPECT_EQ(result.models[0].atoms[0].predicate, "a");
}

TEST(Solver, MaxModelsLimit) {
    PipelineOptions options;
    options.solve.max_models = 3;
    auto result = must_solve("item(1..5). { pick(X) : item(X) }.", options);
    EXPECT_EQ(result.models.size(), 3u);
}

TEST(Solver, TransitiveClosure) {
    auto result = must_solve(
        "edge(a,b). edge(b,c). edge(c,d). "
        "reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "reach(a,d)"));
    EXPECT_FALSE(model_has(result.models[0], "reach(b,a)"));
}

TEST(Solver, GraphColoring) {
    // Classic 3-coloring of a triangle: 6 proper colorings.
    auto result = must_solve(
        "node(1..3). color(r). color(g). color(b). "
        "edge(1,2). edge(2,3). edge(1,3). "
        "1 { assign(N,C) : color(C) } 1 :- node(N). "
        ":- edge(X,Y), assign(X,C), assign(Y,C).");
    EXPECT_EQ(result.models.size(), 6u);
}

TEST(Solver, NegationInsideChoiceBody) {
    auto result = must_solve("{ a } :- not blocked. blocked :- c. c.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_FALSE(model_has(result.models[0], "a"));
}

TEST(Solver, DoubleNegation) {
    auto result = must_solve("a :- not b. b :- not c. c.");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "a"));
    EXPECT_FALSE(model_has(result.models[0], "b"));
}

TEST(Solver, PaperListing1FaultActivation) {
    // Listing 1 of the paper: a fault is potential if no mitigation is active.
    auto result = must_solve(
        "component(workstation). fault(malware). mitigation(malware, endpoint_security). "
        "potential_fault(C, F) :- component(C), fault(F), mitigation(F, M), "
        "                         not active_mitigation(C, M).");
    ASSERT_EQ(result.models.size(), 1u);
    EXPECT_TRUE(model_has(result.models[0], "potential_fault(workstation,malware)"));

    auto mitigated = must_solve(
        "component(workstation). fault(malware). mitigation(malware, endpoint_security). "
        "active_mitigation(workstation, endpoint_security). "
        "potential_fault(C, F) :- component(C), fault(F), mitigation(F, M), "
        "                         not active_mitigation(C, M).");
    ASSERT_EQ(mitigated.models.size(), 1u);
    EXPECT_FALSE(model_has(mitigated.models[0], "potential_fault(workstation,malware)"));
}

TEST(Solver, StatsAreTracked) {
    auto result = must_solve("{ a }. { b }.");
    EXPECT_EQ(result.models.size(), 4u);
    EXPECT_GT(result.stats.decisions, 0u);
}

// --- Assumptions (the ground-once/solve-many idiom) ---------------------

GroundProgram must_ground_text(std::string_view text) {
    auto program = parse_program(text);
    EXPECT_TRUE(program.ok()) << program.error();
    auto grounded = ground(program.value());
    EXPECT_TRUE(grounded.ok()) << grounded.error();
    return grounded.ok() ? std::move(grounded).value() : GroundProgram{};
}

int must_atom_id(const GroundProgram& program, std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    const int id = program.find(atom.value());
    EXPECT_GE(id, 0) << atom_text << " not in ground program";
    return id;
}

TEST(Solver, AssumptionPinsChoiceAtomTrue) {
    auto grounded = must_ground_text("{ a }. b :- a.");
    SolveOptions options;
    options.assumptions = {{must_atom_id(grounded, "a"), true}};
    auto result = solve(grounded, options);
    ASSERT_TRUE(result.ok()) << result.error();
    ASSERT_EQ(result.value().models.size(), 1u);
    EXPECT_TRUE(model_has(result.value().models[0], "a"));
    EXPECT_TRUE(model_has(result.value().models[0], "b"));
}

TEST(Solver, AssumptionPinsChoiceAtomFalse) {
    // A pinned-false choice atom behaves exactly as if its fact had never
    // been grounded: absent from every model, derivations disabled.
    auto grounded = must_ground_text("{ a }. b :- a. c :- not a.");
    SolveOptions options;
    options.assumptions = {{must_atom_id(grounded, "a"), false}};
    auto result = solve(grounded, options);
    ASSERT_TRUE(result.ok()) << result.error();
    ASSERT_EQ(result.value().models.size(), 1u);
    EXPECT_FALSE(model_has(result.value().models[0], "a"));
    EXPECT_FALSE(model_has(result.value().models[0], "b"));
    EXPECT_TRUE(model_has(result.value().models[0], "c"));
}

TEST(Solver, AssumptionsPinWholeDomainPerSolve) {
    // One grounding, many solves — each call re-pins the open domain.
    auto grounded = must_ground_text("{ f(1) }. { f(2) }. broken :- f(1). broken :- f(2).");
    const int f1 = must_atom_id(grounded, "f(1)");
    const int f2 = must_atom_id(grounded, "f(2)");
    for (const auto& [v1, v2] : std::vector<std::pair<bool, bool>>{
             {false, false}, {true, false}, {false, true}, {true, true}}) {
        SolveOptions options;
        options.assumptions = {{f1, v1}, {f2, v2}};
        auto result = solve(grounded, options);
        ASSERT_TRUE(result.ok()) << result.error();
        ASSERT_EQ(result.value().models.size(), 1u);
        EXPECT_EQ(model_has(result.value().models[0], "f(1)"), v1);
        EXPECT_EQ(model_has(result.value().models[0], "f(2)"), v2);
        EXPECT_EQ(model_has(result.value().models[0], "broken"), v1 || v2);
    }
}

TEST(Solver, ContradictoryAssumptionIsUnsatisfiable) {
    auto grounded = must_ground_text("a.");
    SolveOptions options;
    options.assumptions = {{must_atom_id(grounded, "a"), false}};
    auto result = solve(grounded, options);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(result.value().models.empty());
    EXPECT_FALSE(result.value().interrupt.has_value());
}

TEST(Solver, ConflictingAssumptionPairIsUnsatisfiable) {
    auto grounded = must_ground_text("{ a }.");
    const int a = must_atom_id(grounded, "a");
    SolveOptions options;
    options.assumptions = {{a, true}, {a, false}};
    auto result = solve(grounded, options);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(result.value().models.empty());
}

TEST(Solver, OutOfRangeAssumptionIsUnsatisfiableNotFatal) {
    auto grounded = must_ground_text("{ a }.");
    SolveOptions options;
    options.assumptions = {{9999, true}};
    auto result = solve(grounded, options);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(result.value().models.empty());

    options.assumptions = {{-1, false}};
    auto negative = solve(grounded, options);
    ASSERT_TRUE(negative.ok()) << negative.error();
    EXPECT_TRUE(negative.value().models.empty());
}

TEST(Solver, AssumptionsDoNotLeakAcrossSolves) {
    // The ground program is immutable: an assumed solve must not affect a
    // later unassumed solve on the same grounding.
    auto grounded = must_ground_text("{ a }.");
    SolveOptions pinned;
    pinned.assumptions = {{must_atom_id(grounded, "a"), true}};
    auto first = solve(grounded, pinned);
    ASSERT_TRUE(first.ok()) << first.error();
    ASSERT_EQ(first.value().models.size(), 1u);

    auto open = solve(grounded);
    ASSERT_TRUE(open.ok()) << open.error();
    EXPECT_EQ(open.value().models.size(), 2u);
}

}  // namespace
}  // namespace cprisk::asp
