// Body aggregates (#count / #sum) in integrity constraints.
#include <gtest/gtest.h>

#include "asp/asp.hpp"

namespace cprisk::asp {
namespace {

SolveResult must_solve(std::string_view text) {
    auto result = solve_text(text);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.ok() ? std::move(result).value() : SolveResult{};
}

bool model_has(const AnswerSet& model, std::string_view atom_text) {
    auto atom = parse_atom(atom_text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    return model.contains(atom.value());
}

TEST(Aggregates, CountUpperBound) {
    // At most 2 picks out of 4.
    auto result = must_solve(
        "item(1..4). { pick(X) : item(X) }. "
        ":- #count { X : pick(X) } > 2.");
    // C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11 models.
    EXPECT_EQ(result.models.size(), 11u);
}

TEST(Aggregates, CountLowerBound) {
    auto result = must_solve(
        "item(1..3). { pick(X) : item(X) }. "
        ":- #count { X : pick(X) } < 2.");
    EXPECT_EQ(result.models.size(), 4u);  // C(3,2)+C(3,3)
}

TEST(Aggregates, CountExact) {
    auto result = must_solve(
        "item(1..4). { pick(X) : item(X) }. "
        ":- #count { X : pick(X) } != 2.");
    EXPECT_EQ(result.models.size(), 6u);
}

TEST(Aggregates, SumBudgetConstraint) {
    // The motivating use case: mitigation selection under a budget.
    auto result = must_solve(
        "cost(m1, 3). cost(m2, 5). cost(m3, 4). "
        "{ active(M) : cost(M, _) }. "
        ":- #sum { C, M : active(M), cost(M, C) } > 7.");
    // Subsets within budget 7: {}, {m1}, {m2}, {m3}, {m1,m3}(7). {m1,m2}=8,
    // {m2,m3}=9, all=12 excluded.
    EXPECT_EQ(result.models.size(), 5u);
    for (const auto& model : result.models) {
        long long cost = 0;
        if (model_has(model, "active(m1)")) cost += 3;
        if (model_has(model, "active(m2)")) cost += 5;
        if (model_has(model, "active(m3)")) cost += 4;
        EXPECT_LE(cost, 7);
    }
}

TEST(Aggregates, SumWithNegativeWeights) {
    auto result = must_solve(
        "w(a, 2). w(b, -3). { pick(X) : w(X, _) }. "
        ":- #sum { C, X : pick(X), w(X, C) } < 0.");
    // Sums: {}=0 ok, {a}=2 ok, {b}=-3 rejected, {a,b}=-1 rejected.
    EXPECT_EQ(result.models.size(), 2u);
}

TEST(Aggregates, DistinctTuplesCountOnce) {
    // Two ways to derive the same tuple must contribute once.
    auto result = must_solve(
        "p(1). q(1). both(X) :- p(X). both(X) :- q(X). "
        "{ t }. "
        ":- #count { X : both(X) } != 1.");
    EXPECT_EQ(result.models.size(), 2u);  // aggregate satisfied; t free
}

TEST(Aggregates, BoundFromConst) {
    auto result = must_solve(
        "#const budget = 4. "
        "cost(a, 3). cost(b, 2). { active(M) : cost(M, _) }. "
        ":- #sum { C, M : active(M), cost(M, C) } > budget.");
    // {}, {a}, {b} ok; {a,b}=5 rejected.
    EXPECT_EQ(result.models.size(), 3u);
}

TEST(Aggregates, ConditionOverDerivedAtoms) {
    auto result = must_solve(
        "n(1..3). { sel(X) : n(X) }. big(X) :- sel(X), X > 1. "
        ":- #count { X : big(X) } > 1.");
    // Selections with at most one of {2,3}: subsets of {1,2,3} minus those
    // containing both 2 and 3: 8 - 2 = 6.
    EXPECT_EQ(result.models.size(), 6u);
}

TEST(Aggregates, MultipleAggregatesConjoined) {
    // Constraint fires only when BOTH aggregates hold.
    auto result = must_solve(
        "item(1..3). { pick(X) : item(X) }. "
        ":- #count { X : pick(X) } >= 2, #count { X : pick(X) } <= 2.");
    // Exactly-2 subsets are forbidden: 8 - 3 = 5 models.
    EXPECT_EQ(result.models.size(), 5u);
}

TEST(Aggregates, EmptyAggregate) {
    auto result = must_solve("{ a }. :- #count { x : b } > 0.");
    // b never holds; the aggregate is 0; constraint never fires.
    EXPECT_EQ(result.models.size(), 2u);
}

TEST(Aggregates, RejectedOutsideConstraints) {
    auto in_rule = solve_text("p :- #count { x : q } > 0. q.");
    EXPECT_FALSE(in_rule.ok());
    auto in_weak = solve_text("{ a }. :~ #count { x : a } > 0. [1@1]");
    EXPECT_FALSE(in_weak.ok());
}

TEST(Aggregates, NegatedConditionRejected) {
    EXPECT_FALSE(solve_text("{ a }. :- #count { x : not a } > 0.").ok());
}

TEST(Aggregates, NonIntegerSumWeightRejected) {
    EXPECT_FALSE(solve_text("p(a). :- #sum { X : p(X) } > 0.").ok());
}

TEST(Aggregates, RoundTripPrinting) {
    auto program = parse_program(
        "cost(m1, 3). { active(M) : cost(M, _) }. "
        ":- #sum { C, M : active(M), cost(M, C) } > 7.");
    ASSERT_TRUE(program.ok()) << program.error();
    auto reparsed = parse_program(program.value().to_string());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error() << "\n" << program.value().to_string();
    EXPECT_EQ(program.value().to_string(), reparsed.value().to_string());
}

TEST(Aggregates, InteractionWithOptimization) {
    // Budgeted minimization: minimize residual loss subject to the budget.
    auto result = must_solve(
        "cost(m1, 3). cost(m2, 5). blocks(m1, t1). blocks(m2, t2). "
        "loss(t1, 10). loss(t2, 20). threat(T) :- loss(T, _). "
        "{ active(M) : cost(M, _) }. "
        "blocked(T) :- blocks(M, T), active(M). "
        "unblocked(T) :- threat(T), not blocked(T). "
        ":- #sum { C, M : active(M), cost(M, C) } > 5. "
        ":~ unblocked(T), loss(T, L). [L@1, T]");
    ASSERT_EQ(result.models.size(), 1u);
    // Budget 5 excludes {m1,m2}; best single choice blocks t2 (loss 20).
    EXPECT_TRUE(model_has(result.models[0], "active(m2)"));
    EXPECT_FALSE(model_has(result.models[0], "active(m1)"));
    EXPECT_EQ(result.best_cost.at(1), 10);
}


TEST(Aggregates, TemporalSectionsStampConditions) {
    // A per-step cardinality cap: at most one action may be active at any
    // time step. The aggregate's condition atoms must be time-stamped.
    PipelineOptions options;
    options.horizon = 1;
    auto result = solve_text(
        "#program always. { act(a) }. { act(b) }. "
        ":- #count { X : act(X) } > 1.",
        options);
    ASSERT_TRUE(result.ok()) << result.error();
    // Per step: 3 admissible subsets ({}, {a}, {b}); 2 steps -> 9 models.
    EXPECT_EQ(result.value().models.size(), 9u);
}

TEST(Aggregates, TemporalSumOverPrevState) {
    // Aggregate over a prev_-referenced predicate inside a dynamic section.
    PipelineOptions options;
    options.horizon = 2;
    auto result = solve_text(
        "#program initial. tokens(2). "
        "#program dynamic. tokens(N) :- prev_tokens(N). "
        "#program always. :- #sum { N : tokens(N) } > 2.",
        options);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(result.value().satisfiable);
}

}  // namespace
}  // namespace cprisk::asp
