// Arithmetic evaluation, substitution, comparison, range expansion.
#include <gtest/gtest.h>

#include "asp/eval.hpp"
#include "asp/parser.hpp"

namespace cprisk::asp {
namespace {

Term t(std::string_view text) {
    auto r = parse_term(text);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
}

TEST(Eval, Arithmetic) {
    EXPECT_EQ(eval_term(t("1 + 2 * 3")).value().as_int(), 7);
    EXPECT_EQ(eval_term(t("10 - 4")).value().as_int(), 6);
    EXPECT_EQ(eval_term(t("9 / 2")).value().as_int(), 4);
    EXPECT_EQ(eval_term(t("mod(9, 4)")).value().as_int(), 1);
    EXPECT_EQ(eval_term(t("abs(-5)")).value().as_int(), 5);
    EXPECT_EQ(eval_term(t("(2 + 3) * 4")).value().as_int(), 20);
}

TEST(Eval, DivisionByZeroFails) {
    EXPECT_FALSE(eval_term(t("1 / 0")).ok());
    EXPECT_FALSE(eval_term(t("mod(1, 0)")).ok());
}

TEST(Eval, UnboundVariableFails) {
    EXPECT_FALSE(eval_term(Term::variable("X")).ok());
}

TEST(Eval, ArithmeticOnSymbolFails) {
    EXPECT_FALSE(eval_term(t("a + 1")).ok());
}

TEST(Eval, NestedCompoundsEvaluateArgs) {
    EXPECT_EQ(eval_term(t("f(1+1, g(2*2))")).value().to_string(), "f(2,g(4))");
}

TEST(Eval, Substitution) {
    Binding binding{{"X", Term::integer(3)}, {"Y", Term::symbol("tank")}};
    EXPECT_EQ(substitute(t("f(X, Y, Z)"), binding).to_string(), "f(3,tank,Z)");
    EXPECT_EQ(eval_term(substitute(t("X + 1"), binding)).value().as_int(), 4);
}

TEST(Eval, CompareIntegers) {
    EXPECT_TRUE(compare_terms(Term::integer(1), CompareOp::Lt, Term::integer(2)));
    EXPECT_FALSE(compare_terms(Term::integer(2), CompareOp::Lt, Term::integer(2)));
    EXPECT_TRUE(compare_terms(Term::integer(2), CompareOp::Le, Term::integer(2)));
    EXPECT_TRUE(compare_terms(Term::integer(3), CompareOp::Ge, Term::integer(3)));
    EXPECT_TRUE(compare_terms(Term::integer(4), CompareOp::Gt, Term::integer(3)));
    EXPECT_TRUE(compare_terms(Term::integer(4), CompareOp::Ne, Term::integer(3)));
    EXPECT_TRUE(compare_terms(Term::integer(4), CompareOp::Eq, Term::integer(4)));
}

TEST(Eval, CompareSymbolsLexicographic) {
    EXPECT_TRUE(compare_terms(Term::symbol("apple"), CompareOp::Lt, Term::symbol("banana")));
}

TEST(Eval, IntegersBeforeSymbolsInTermOrder) {
    EXPECT_TRUE(compare_terms(Term::integer(999), CompareOp::Lt, Term::symbol("a")));
}

TEST(Eval, ExpandRangeBasic) {
    auto values = expand_ranges(eval_term(t("1..4")).value());
    ASSERT_EQ(values.size(), 4u);
    EXPECT_EQ(values[0].as_int(), 1);
    EXPECT_EQ(values[3].as_int(), 4);
}

TEST(Eval, ExpandEmptyRange) {
    auto values = expand_ranges(eval_term(t("5..2")).value());
    EXPECT_TRUE(values.empty());
}

TEST(Eval, ExpandNestedRanges) {
    auto values = expand_ranges(eval_term(t("f(1..2, 1..3)")).value());
    EXPECT_EQ(values.size(), 6u);
}

TEST(Eval, ExpandAtomRanges) {
    Atom atom{"p", {eval_term(t("1..3")).value(), Term::symbol("a")}};
    auto atoms = expand_atom_ranges(atom);
    ASSERT_EQ(atoms.size(), 3u);
    EXPECT_EQ(atoms[0].to_string(), "p(1,a)");
    EXPECT_EQ(atoms[2].to_string(), "p(3,a)");
}

TEST(Eval, NoRangeNoCopy) {
    Atom atom{"p", {Term::integer(1)}};
    auto atoms = expand_atom_ranges(atom);
    ASSERT_EQ(atoms.size(), 1u);
    EXPECT_EQ(atoms[0], atom);
}

}  // namespace
}  // namespace cprisk::asp
