// Polarity/monotonicity certifier (asp/polarity): sign propagation over the
// ground dependency graph, the three rejection conditions (odd negation
// paths, input-reachable negative cycles, input-reachable sensitive sites),
// and the decided-atom refinement from a seeding ternary analysis.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "asp/absint/absint.hpp"
#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/polarity.hpp"

namespace cprisk::asp::polarity {
namespace {

GroundProgram must_ground(std::string_view text) {
    auto program = parse_program(text);
    EXPECT_TRUE(program.ok()) << program.error();
    auto grounded = ground(program.value());
    EXPECT_TRUE(grounded.ok()) << grounded.error();
    return grounded.ok() ? std::move(grounded).value() : GroundProgram{};
}

int atom_id(const GroundProgram& program, std::string_view text) {
    auto atom = parse_atom(text);
    EXPECT_TRUE(atom.ok()) << atom.error();
    const int id = program.find(atom.value());
    EXPECT_GE(id, 0) << text << " not interned";
    return id;
}

TEST(Polarity, PositiveChainIsMonotone) {
    const GroundProgram program = must_ground("{f}. a :- f. hazard :- a.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_TRUE(cert.monotone);
    EXPECT_TRUE(cert.offenders.empty());
    ASSERT_EQ(cert.hazard_sign.count(hazard), 1u);
    EXPECT_EQ(cert.hazard_sign.at(hazard), Sign::Positive);
}

TEST(Polarity, UnreachableHazardHasNoSignAndIsMonotone) {
    const GroundProgram program = must_ground("{f}. t. hazard :- t.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_TRUE(cert.monotone);
    EXPECT_EQ(cert.hazard_sign.at(hazard), Sign::None);
}

TEST(Polarity, OddNegationPathIsAnOffender) {
    const GroundProgram program = must_ground("{f}. blocked :- not f. hazard :- blocked.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_FALSE(cert.monotone);
    EXPECT_EQ(cert.hazard_sign.at(hazard), Sign::Negative);
    ASSERT_FALSE(cert.offenders.empty());
    EXPECT_EQ(cert.offenders[0].kind, Offender::Kind::OddNegation);
    EXPECT_EQ(cert.offenders[0].input_atom, f);
    EXPECT_EQ(cert.offenders[0].hazard_atom, hazard);
    EXPECT_NE(cert.offenders[0].detail.find("odd number"), std::string::npos);
}

TEST(Polarity, EvenNegationPathStaysPositive) {
    // hazard = not(not f) is monotone non-decreasing in f.
    const GroundProgram program = must_ground("{f}. a :- not f. hazard :- not a.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_TRUE(cert.monotone);
    EXPECT_EQ(cert.hazard_sign.at(hazard), Sign::Positive);
}

TEST(Polarity, BothParitiesYieldMixedSign) {
    const GroundProgram program = must_ground("{f}. hazard :- f. hazard :- not f.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_FALSE(cert.monotone);
    EXPECT_EQ(cert.hazard_sign.at(hazard), Sign::Mixed);
}

TEST(Polarity, InputReachableNegativeCycleIsRejectedEvenWithPositiveHazardSign) {
    // a/b form a negative cycle fed by f; every path f ~> hazard has even
    // parity, but the cycle makes the input-dependent slice nondeterministic.
    const GroundProgram program =
        must_ground("{f}. a :- f. a :- not b. b :- not a. hazard :- a.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_FALSE(cert.monotone);
    bool found_cycle = false;
    for (const Offender& offender : cert.offenders) {
        if (offender.kind == Offender::Kind::NegativeCycle) found_cycle = true;
    }
    EXPECT_TRUE(found_cycle);
}

TEST(Polarity, InputReachableConstraintIsRejected) {
    // Adding f can *remove* the only model via the constraint, flipping an
    // existential hazard verdict downward.
    const GroundProgram program = must_ground("{f}. g :- f. x. :- g, x. hazard :- x.");
    const int f = atom_id(program, "f");
    const int hazard = atom_id(program, "hazard");
    const MonotonicityCertificate cert = certify_monotone(program, {f}, {hazard});
    EXPECT_FALSE(cert.monotone);
    bool found_site = false;
    for (const Offender& offender : cert.offenders) {
        if (offender.kind == Offender::Kind::Constraint) found_site = true;
    }
    EXPECT_TRUE(found_site);
}

TEST(Polarity, DecidedLiteralFromSeedingAnalysisDropsTheOddPath) {
    // Without pinning: f -> sup -> (odd) -> inj makes the hazard Mixed. With
    // m pinned False the sup rule is dead, `not sup` is decided True, and
    // the only surviving path is positive — the exact shape of the EPA's
    // fault-activation rule under a fixed mitigation set.
    const GroundProgram program = must_ground(
        "{f}. {m}. sup :- f, m. inj :- f, not sup. hazard :- inj.");
    const int f = atom_id(program, "f");
    const int m = atom_id(program, "m");
    const int hazard = atom_id(program, "hazard");

    const MonotonicityCertificate open_cert = certify_monotone(program, {f}, {hazard});
    EXPECT_FALSE(open_cert.monotone);
    EXPECT_EQ(open_cert.hazard_sign.at(hazard), Sign::Mixed);

    const std::vector<std::pair<int, bool>> pins = {{m, false}};
    absint::AbsintOptions absint_options;
    absint_options.pins = &pins;
    const absint::Analysis analysis = absint::evaluate(program, absint_options);
    ASSERT_FALSE(analysis.conflict);

    PolarityOptions options;
    options.analysis = &analysis;
    const MonotonicityCertificate pinned_cert = certify_monotone(program, {f}, {hazard}, options);
    EXPECT_TRUE(pinned_cert.monotone) << pinned_cert.offenders.size() << " offenders";
    EXPECT_EQ(pinned_cert.hazard_sign.at(hazard), Sign::Positive);
}

TEST(Polarity, SignJoinLattice) {
    EXPECT_EQ(join(Sign::None, Sign::Positive), Sign::Positive);
    EXPECT_EQ(join(Sign::Positive, Sign::Negative), Sign::Mixed);
    EXPECT_EQ(join(Sign::Mixed, Sign::None), Sign::Mixed);
    EXPECT_EQ(join(Sign::Negative, Sign::Negative), Sign::Negative);
}

}  // namespace
}  // namespace cprisk::asp::polarity
