// Quantitative reactor simulator and its agreement with the qualitative
// reactor case study (second-domain cross-validation).
#include <gtest/gtest.h>

#include "core/reactor.hpp"
#include "sim/reactor.hpp"

namespace cprisk::sim {
namespace {

ReactorResult run(std::vector<ReactorFault> faults, double duration = 240.0) {
    ReactorSimulator simulator;
    std::vector<ReactorInjection> injections;
    for (ReactorFault fault : faults) injections.push_back({5.0, fault});
    return simulator.run(duration, injections);
}

TEST(ReactorSim, NominalIsSafe) {
    auto result = run({});
    EXPECT_FALSE(result.rupture);
    EXPECT_FALSE(result.alert_raised);
    for (const auto& sample : result.trace) {
        EXPECT_LT(sample.values.at("pressure"), ReactorParams{}.alarm_pressure);
    }
}

TEST(ReactorSim, SingleActuatorFaultsAreCompensated) {
    EXPECT_FALSE(run({ReactorFault::HeaterStuckOn}).rupture);
    EXPECT_FALSE(run({ReactorFault::CoolingValveStuckClosed}).rupture);
    EXPECT_FALSE(run({ReactorFault::ReliefValveStuckClosed}).rupture);
}

TEST(ReactorSim, FrozenSensorIsVentedWithAlarm) {
    auto result = run({ReactorFault::TempSensorFrozen});
    EXPECT_FALSE(result.rupture);       // the relief valve caps the pressure
    EXPECT_TRUE(result.alert_raised);   // but the operator is warned
    ASSERT_TRUE(result.alert_time.has_value());
}

TEST(ReactorSim, HeaterAndCoolingFaultsVented) {
    auto result = run({ReactorFault::HeaterStuckOn, ReactorFault::CoolingValveStuckClosed});
    EXPECT_FALSE(result.rupture);
    EXPECT_TRUE(result.alert_raised);
}

TEST(ReactorSim, TripleActuatorFaultRuptures) {
    auto result = run({ReactorFault::HeaterStuckOn, ReactorFault::CoolingValveStuckClosed,
                       ReactorFault::ReliefValveStuckClosed});
    EXPECT_TRUE(result.rupture);
    EXPECT_TRUE(result.alert_raised);  // the alarm still fires before the burst
    ASSERT_TRUE(result.alert_time.has_value());
    ASSERT_TRUE(result.rupture_time.has_value());
    EXPECT_LT(*result.alert_time, *result.rupture_time);
}

TEST(ReactorSim, ScadaCompromiseRupturesSilently) {
    auto result = run({ReactorFault::ScadaCompromise});
    EXPECT_TRUE(result.rupture);
    EXPECT_FALSE(result.alert_raised);
}

TEST(ReactorSim, FrozenSensorPlusReliefFailureRuptures) {
    auto result = run({ReactorFault::TempSensorFrozen, ReactorFault::ReliefValveStuckClosed});
    EXPECT_TRUE(result.rupture);
    EXPECT_TRUE(result.alert_raised);
}

TEST(ReactorSim, InvalidParamsRejected) {
    ReactorParams params;
    params.dt = 0;
    EXPECT_THROW(ReactorSimulator{params}, Error);
    params = {};
    params.relief_pressure = 10.0;  // above burst
    EXPECT_THROW(ReactorSimulator{params}, Error);
}

TEST(ReactorSim, AbstractionSeesCriticalPressure) {
    ReactorSimulator simulator;
    auto result = simulator.run(240.0, {{5.0, ReactorFault::TempSensorFrozen}});
    auto trajectory = simulator.abstractor().abstract_trace(result.trace);
    EXPECT_TRUE(trajectory.ever("pressure", "critical"));
    EXPECT_TRUE(trajectory.ever("alert", "on"));
}

// Cross-validation against the qualitative reactor model: R1 = rupture,
// R2 = alert on critical pressure (violated when critical pressure occurs
// without a subsequent alert).
struct CrossCase {
    const char* name;
    std::vector<ReactorFault> faults;
    std::vector<security::Mutation> mutations;
    bool r1;  ///< rupture expected
    bool r2;  ///< silent critical pressure expected
};

class ReactorSimVsEpa : public ::testing::TestWithParam<CrossCase> {};

TEST_P(ReactorSimVsEpa, ConcreteMatchesQualitative) {
    const auto& param = GetParam();

    // Concrete run.
    auto concrete = run(param.faults);
    EXPECT_EQ(concrete.rupture, param.r1) << "simulator rupture";

    // Qualitative verdict.
    auto built = core::ReactorCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    const auto& cs = built.value();
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements,
                                                          cs.mitigations, options);
    ASSERT_TRUE(analysis.ok()) << analysis.error();
    security::AttackScenario scenario;
    scenario.id = "x";
    scenario.mutations = param.mutations;
    auto verdict = analysis.value().evaluate(scenario, {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();

    EXPECT_EQ(verdict.value().violates("r1"), param.r1) << "qualitative r1";
    EXPECT_EQ(verdict.value().violates("r2"), param.r2) << "qualitative r2";
}

using core::reactor_ids::kAlarmUnit;
using core::reactor_ids::kCoolingValve;
using core::reactor_ids::kHeater;
using core::reactor_ids::kReliefValve;
using core::reactor_ids::kScada;
using core::reactor_ids::kTempSensor;

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ReactorSimVsEpa,
    ::testing::Values(
        CrossCase{"nominal", {}, {}, false, false},
        CrossCase{"heater_only",
                  {ReactorFault::HeaterStuckOn},
                  {{kHeater, "stuck_on"}}, false, false},
        CrossCase{"scada",
                  {ReactorFault::ScadaCompromise},
                  {{kScada, "compromised"}}, true, true},
        CrossCase{"triple",
                  {ReactorFault::HeaterStuckOn, ReactorFault::CoolingValveStuckClosed,
                   ReactorFault::ReliefValveStuckClosed},
                  {{kHeater, "stuck_on"},
                   {kCoolingValve, "stuck_closed"},
                   {kReliefValve, "stuck_closed"}}, true, false},
        CrossCase{"sensor_plus_relief",
                  {ReactorFault::TempSensorFrozen, ReactorFault::ReliefValveStuckClosed},
                  {{kTempSensor, "frozen_reading"}, {kReliefValve, "stuck_closed"}},
                  true, false}),
    [](const ::testing::TestParamInfo<CrossCase>& info) { return info.param.name; });

}  // namespace
}  // namespace cprisk::sim
