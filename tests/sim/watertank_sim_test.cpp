// Quantitative water-tank simulator: nominal control, fault outcomes,
// campaigns, and qualitative/quantitative cross-validation.
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "sim/campaign.hpp"
#include "sim/watertank.hpp"

namespace cprisk::sim {
namespace {

TEST(Simulator, NominalRunIsSafe) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {});
    EXPECT_FALSE(result.overflow);
    EXPECT_FALSE(result.alert_raised);
    // The controller keeps the level inside the band (with hysteresis slop).
    for (const auto& sample : result.trace) {
        EXPECT_LT(sample.values.at("level"), simulator.params().capacity);
        EXPECT_GE(sample.values.at("level"), 0.0);
    }
}

TEST(Simulator, F1InputStuckOpenIsCompensated) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::InputValveStuckOpen}});
    // Matches Table II S3: the output valve (higher drain rate) compensates.
    EXPECT_FALSE(result.overflow);
}

TEST(Simulator, F2OutputStuckClosedOverflows) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::OutputValveStuckClosed}});
    // Matches Table II S4: R1 violated, but the alert still fires (R2 ok).
    EXPECT_TRUE(result.overflow);
    EXPECT_TRUE(result.alert_raised);
    ASSERT_TRUE(result.alert_time.has_value());
}

TEST(Simulator, F2F3OverflowsSilently) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::OutputValveStuckClosed},
                                        {5.0, PlantFault::HmiNoSignal}});
    // Matches Table II S5: both R1 and R2 violated.
    EXPECT_TRUE(result.overflow);
    EXPECT_FALSE(result.alert_raised);
}

TEST(Simulator, F4CompromiseMatchesS2) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::WorkstationCompromise}});
    EXPECT_TRUE(result.overflow);
    EXPECT_FALSE(result.alert_raised);
}

TEST(Simulator, AlertPrecedesOrMeetsOverflow) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::OutputValveStuckClosed}});
    ASSERT_TRUE(result.overflow_time.has_value());
    ASSERT_TRUE(result.alert_time.has_value());
    // The alarm level sits below capacity, so the alert cannot be late.
    EXPECT_LE(*result.alert_time, *result.overflow_time);
}

TEST(Simulator, SensorFrozenDisablesControl) {
    WaterTankSimulator simulator;
    // Freeze the sensor early while filling: the controller never sees the
    // high level, the feed keeps running -> overflow without an alert.
    auto result = simulator.run(120.0, {{1.0, PlantFault::SensorFrozen}});
    EXPECT_TRUE(result.overflow);
    EXPECT_FALSE(result.alert_raised);  // frozen reading stays below alarm
}

TEST(Simulator, InvalidParamsRejected) {
    WaterTankParams params;
    params.dt = 0.0;
    EXPECT_THROW(WaterTankSimulator{params}, Error);
    params = {};
    params.low_setpoint = 90;
    params.high_setpoint = 30;
    EXPECT_THROW(WaterTankSimulator{params}, Error);
}

TEST(Abstraction, TraceAbstractsToQualitativeTrajectory) {
    WaterTankSimulator simulator;
    auto result = simulator.run(120.0, {{5.0, PlantFault::OutputValveStuckClosed}});
    auto abstractor = simulator.abstractor();
    auto trajectory = abstractor.abstract_trace(result.trace);
    EXPECT_TRUE(trajectory.ever("level", "overflow"));
    EXPECT_TRUE(trajectory.ever("alert", "on"));
    // The qualitative overflow verdict agrees with the concrete one.
    EXPECT_EQ(trajectory.ever("level", "overflow"), result.overflow);
}

TEST(Campaign, SingleRun) {
    WaterTankSimulator simulator;
    auto record = run_single(simulator, {PlantFault::OutputValveStuckClosed}, {});
    EXPECT_TRUE(record.violates_r1());
    EXPECT_FALSE(record.violates_r2());
    EXPECT_NE(record.to_string().find("output_valve_stuck_closed"), std::string::npos);
}

TEST(Campaign, FullCampaignCoverage) {
    WaterTankSimulator simulator;
    CampaignOptions options;
    options.max_simultaneous_faults = 2;
    auto records = run_campaign(simulator, options);
    // 1 golden + C(5,1) + C(5,2) = 1 + 5 + 10 = 16 runs.
    EXPECT_EQ(records.size(), 16u);
    EXPECT_FALSE(records[0].violates_r1());  // golden run is safe
}

// Cross-validation: the concrete simulator agrees with the qualitative EPA
// verdicts of Table II for the mapped fault combinations (the paper's
// abstraction-soundness argument, checked end-to-end).
struct CrossCase {
    const char* name;
    std::vector<PlantFault> faults;
    bool r1_violated;
    bool r2_violated;
};

class SimVsEpa : public ::testing::TestWithParam<CrossCase> {};

TEST_P(SimVsEpa, ConcreteMatchesQualitative) {
    const auto& param = GetParam();
    WaterTankSimulator simulator;
    auto record = run_single(simulator, param.faults, {});
    EXPECT_EQ(record.violates_r1(), param.r1_violated) << record.to_string();
    EXPECT_EQ(record.violates_r2(), param.r2_violated) << record.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Table2, SimVsEpa,
    ::testing::Values(
        CrossCase{"s1_none", {}, false, false},
        CrossCase{"s2_compromise", {PlantFault::WorkstationCompromise}, true, true},
        CrossCase{"s3_f1", {PlantFault::InputValveStuckOpen}, false, false},
        CrossCase{"s4_f2", {PlantFault::OutputValveStuckClosed}, true, false},
        CrossCase{"s5_f2_f3",
                  {PlantFault::OutputValveStuckClosed, PlantFault::HmiNoSignal}, true, true},
        CrossCase{"s6_f1_f3",
                  {PlantFault::InputValveStuckOpen, PlantFault::HmiNoSignal}, false, false},
        CrossCase{"s7_f1_f2_f3",
                  {PlantFault::InputValveStuckOpen, PlantFault::OutputValveStuckClosed,
                   PlantFault::HmiNoSignal}, true, true}),
    [](const ::testing::TestParamInfo<CrossCase>& info) { return info.param.name; });

}  // namespace
}  // namespace cprisk::sim
