// DTMC baseline: construction, bounded reachability, stationary
// distribution, and consistency with the qualitative scale.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain.hpp"

namespace cprisk::markov {
namespace {

TEST(Markov, ConstructionAndValidation) {
    MarkovChain chain;
    ASSERT_TRUE(chain.add_state("a").ok());
    ASSERT_TRUE(chain.add_state("b").ok());
    EXPECT_FALSE(chain.add_state("a").ok());
    EXPECT_FALSE(chain.add_state("").ok());
    EXPECT_FALSE(chain.validate().ok());  // rows do not sum to 1 yet
    ASSERT_TRUE(chain.set_transition("a", "b", 1.0).ok());
    ASSERT_TRUE(chain.set_transition("b", "a", 1.0).ok());
    EXPECT_TRUE(chain.validate().ok());
    EXPECT_FALSE(chain.set_transition("a", "ghost", 0.5).ok());
    EXPECT_FALSE(chain.set_transition("a", "b", 1.5).ok());
}

TEST(Markov, DeterministicCycle) {
    MarkovChain chain;
    ASSERT_TRUE(chain.add_state("a").ok());
    ASSERT_TRUE(chain.add_state("b").ok());
    ASSERT_TRUE(chain.set_transition("a", "b", 1.0).ok());
    ASSERT_TRUE(chain.set_transition("b", "a", 1.0).ok());
    auto d1 = chain.distribution_after("a", 1);
    ASSERT_TRUE(d1.ok());
    EXPECT_DOUBLE_EQ(d1.value()[1], 1.0);
    auto d2 = chain.distribution_after("a", 2);
    ASSERT_TRUE(d2.ok());
    EXPECT_DOUBLE_EQ(d2.value()[0], 1.0);
}

TEST(Markov, AbsorbingFailure) {
    auto chain = single_fault_chain(qual::Level::High);  // p = 0.1
    auto one = chain.reach_probability("ok", {"failed"}, 1);
    ASSERT_TRUE(one.ok());
    EXPECT_NEAR(one.value(), 0.1, 1e-12);
    // P(fail within k) = 1 - 0.9^k.
    auto ten = chain.reach_probability("ok", {"failed"}, 10);
    ASSERT_TRUE(ten.ok());
    EXPECT_NEAR(ten.value(), 1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(Markov, ReachabilityMonotoneInHorizon) {
    auto chain = single_fault_chain(qual::Level::Medium);
    double previous = 0.0;
    for (std::size_t horizon = 0; horizon <= 50; horizon += 5) {
        auto p = chain.reach_probability("ok", {"failed"}, horizon);
        ASSERT_TRUE(p.ok());
        EXPECT_GE(p.value(), previous);
        previous = p.value();
    }
}

TEST(Markov, QualitativeOrderPreserved) {
    // Property: the qualitative likelihood ordering maps onto a strict
    // probability ordering at any fixed horizon.
    double previous = -1.0;
    for (qual::Level level : qual::kAllLevels) {
        auto chain = single_fault_chain(level);
        auto p = chain.reach_probability("ok", {"failed"}, 20);
        ASSERT_TRUE(p.ok());
        EXPECT_GT(p.value(), previous) << qual::to_short_string(level);
        previous = p.value();
    }
}

TEST(Markov, StationaryOfSymmetricChain) {
    MarkovChain chain;
    ASSERT_TRUE(chain.add_state("x").ok());
    ASSERT_TRUE(chain.add_state("y").ok());
    ASSERT_TRUE(chain.set_transition("x", "x", 0.5).ok());
    ASSERT_TRUE(chain.set_transition("x", "y", 0.5).ok());
    ASSERT_TRUE(chain.set_transition("y", "x", 0.5).ok());
    ASSERT_TRUE(chain.set_transition("y", "y", 0.5).ok());
    auto pi = chain.stationary();
    ASSERT_TRUE(pi.ok());
    EXPECT_NEAR(pi.value()[0], 0.5, 1e-9);
    EXPECT_NEAR(pi.value()[1], 0.5, 1e-9);
}

TEST(Markov, RepairableComponentAvailability) {
    // fail p=0.1, repair p=0.5: stationary availability = r/(f+r) = 5/6.
    MarkovChain chain;
    ASSERT_TRUE(chain.add_state("up").ok());
    ASSERT_TRUE(chain.add_state("down").ok());
    ASSERT_TRUE(chain.set_transition("up", "down", 0.1).ok());
    ASSERT_TRUE(chain.set_transition("up", "up", 0.9).ok());
    ASSERT_TRUE(chain.set_transition("down", "up", 0.5).ok());
    ASSERT_TRUE(chain.set_transition("down", "down", 0.5).ok());
    auto pi = chain.stationary();
    ASSERT_TRUE(pi.ok());
    EXPECT_NEAR(pi.value()[0], 5.0 / 6.0, 1e-9);
}

TEST(Markov, WaterTankOverflowModel) {
    // A hand-built DTMC of the S4 situation: F2 occurs with its qualitative
    // probability; once active, the level walks normal -> high -> overflow.
    MarkovChain chain;
    for (const char* s : {"nominal", "f2_normal", "f2_high", "overflow"}) {
        ASSERT_TRUE(chain.add_state(s).ok());
    }
    const double p_f2 = level_to_probability(qual::Level::Low);
    ASSERT_TRUE(chain.set_transition("nominal", "f2_normal", p_f2).ok());
    ASSERT_TRUE(chain.set_transition("nominal", "nominal", 1.0 - p_f2).ok());
    ASSERT_TRUE(chain.set_transition("f2_normal", "f2_high", 1.0).ok());
    ASSERT_TRUE(chain.set_transition("f2_high", "overflow", 1.0).ok());
    ASSERT_TRUE(chain.make_absorbing("overflow").ok());

    auto p = chain.reach_probability("nominal", {"overflow"}, 100);
    ASSERT_TRUE(p.ok());
    // About 1 - (1-1e-3)^98 (two steps of lag): small but clearly non-zero.
    EXPECT_GT(p.value(), 0.05);
    EXPECT_LT(p.value(), 0.15);

    // Sanity: the qualitative verdict "S4 violates R1" corresponds to a
    // reachable overflow state here, while a chain without F2 never
    // overflows.
    MarkovChain safe;
    ASSERT_TRUE(safe.add_state("nominal").ok());
    ASSERT_TRUE(safe.set_transition("nominal", "nominal", 1.0).ok());
    auto zero = safe.reach_probability("nominal", {"nominal"}, 0);
    ASSERT_TRUE(zero.ok());
}

TEST(Markov, LevelProbabilityLadder) {
    for (std::size_t i = 0; i + 1 < qual::kLevelCount; ++i) {
        EXPECT_LT(level_to_probability(qual::level_from_index(static_cast<int>(i))),
                  level_to_probability(qual::level_from_index(static_cast<int>(i + 1))));
    }
}

}  // namespace
}  // namespace cprisk::markov
