// Differential test for the static ternary prefilter (asp/absint,
// docs/static-analysis.md): with the prefilter on (certified scenarios
// skip the DPLL search) and off (every scenario solved), every verdict
// field that carries analysis meaning must agree — over both case-study
// bundles, at jobs 1 and 4, with the ground-once cache on and off, and
// with an injected prefilter fault mid-run. Exempt by design: solver
// statistics (static verdicts report zero effort) and `provenance` (the
// one field the prefilter exists to change).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "core/reactor.hpp"
#include "core/watertank.hpp"
#include "epa/epa.hpp"
#include "obs/run_context.hpp"
#include "security/scenario.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::epa {
namespace {

/// One case study prepared for a differential run (ground_cache_test.cpp
/// idiom).
struct Study {
    std::string name;
    std::shared_ptr<void> owner;
    const model::SystemModel* system = nullptr;
    std::vector<Requirement> requirements;
    const MitigationMap* mitigations = nullptr;
    const security::AttackMatrix* matrix = nullptr;
    int horizon = 4;
};

Study make_watertank() {
    auto built = core::WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::WaterTankCaseStudy>(std::move(built).value());
    Study study;
    study.name = "watertank";
    study.system = &cs->system;
    study.requirements = cs->requirements;
    study.mitigations = &cs->mitigations;
    study.matrix = &cs->matrix;
    study.horizon = cs->horizon;
    study.owner = cs;
    return study;
}

Study make_reactor() {
    auto built = core::ReactorCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::ReactorCaseStudy>(std::move(built).value());
    Study study;
    study.name = "reactor";
    study.system = &cs->system;
    study.requirements = cs->requirements;
    study.mitigations = &cs->mitigations;
    study.matrix = &cs->matrix;
    study.horizon = cs->horizon;
    study.owner = cs;
    return study;
}

/// Everything a verdict claims about the scenario, minus search effort and
/// provenance.
std::string signature(const ScenarioVerdict& verdict) {
    std::string out = verdict.scenario_id;
    out += "|status=" + std::string(to_string(verdict.status));
    if (verdict.undetermined_reason) {
        out += "|reason=" + std::string(to_string(*verdict.undetermined_reason));
    }
    out += "|violated=";
    for (const auto& id : verdict.violated_requirements) out += id + ",";
    out += "|injected=";
    for (const auto& mutation : verdict.injected) out += mutation.to_string() + ",";
    out += "|propagation=";
    for (const auto& step : verdict.propagation) {
        out += std::to_string(step.time) + ":" + step.component + ",";
    }
    out += "|severity=" + std::string(qual::to_short_string(verdict.severity));
    out += "|likelihood=" + std::string(qual::to_short_string(verdict.likelihood));
    out += "|mitigations=";
    for (const auto& id : verdict.active_mitigations) out += id + ",";
    return out;
}

std::size_t static_count(const std::vector<ScenarioVerdict>& verdicts) {
    std::size_t count = 0;
    for (const ScenarioVerdict& verdict : verdicts) {
        if (verdict.provenance == VerdictProvenance::Static) ++count;
    }
    return count;
}

std::vector<ScenarioVerdict> run_sweep(const Study& study, const security::ScenarioSpace& space,
                                       bool prefilter, bool ground_once, std::size_t jobs,
                                       const std::vector<std::string>& active) {
    RunContext ctx;
    ctx.jobs = jobs;
    EpaOptions options;
    options.horizon = study.horizon;
    options.ground_once = ground_once;
    options.static_prefilter = prefilter;
    options.ctx = &ctx;
    auto analysis = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                     *study.mitigations, options);
    EXPECT_TRUE(analysis.ok()) << analysis.error();
    auto verdicts = analysis.value().evaluate_all(space, active);
    EXPECT_TRUE(verdicts.ok()) << verdicts.error();
    return std::move(verdicts).value();
}

class AbsintDifferential : public ::testing::TestWithParam<Study (*)()> {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_P(AbsintDifferential, PrefilterOnAndOffAgreeAcrossJobsAndCacheModes) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    security::ScenarioSpaceOptions space_options;
    space_options.include_attack_scenarios = false;
    const auto space = security::ScenarioSpace::build(
        *study.system, *study.matrix, security::standard_threat_actors(), space_options);
    ASSERT_GT(space.size(), 0u);

    // One mitigated configuration exercises the active_mitigation pins.
    std::vector<std::vector<std::string>> mitigation_sets = {{}};
    if (!study.mitigations->entries().empty()) {
        mitigation_sets.push_back({study.mitigations->entries().front().mitigation_id});
    }

    for (const auto& active : mitigation_sets) {
        for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            for (bool ground_once : {true, false}) {
                SCOPED_TRACE(study.name + " jobs=" + std::to_string(jobs) +
                             " cache=" + (ground_once ? "on" : "off") +
                             (active.empty() ? "" : " mitigated"));
                const auto on = run_sweep(study, space, true, ground_once, jobs, active);
                const auto off = run_sweep(study, space, false, ground_once, jobs, active);
                ASSERT_EQ(on.size(), off.size());
                for (std::size_t i = 0; i < on.size(); ++i) {
                    EXPECT_EQ(signature(on[i]), signature(off[i])) << "scenario " << i;
                }
                // With the prefilter off, nothing may claim static
                // provenance; the prefilter itself only exists on the
                // cached path.
                EXPECT_EQ(static_count(off), 0u);
                if (!ground_once) EXPECT_EQ(static_count(on), 0u);
            }
        }
    }
}

TEST_P(AbsintDifferential, PrefilterResolvesScenariosStaticallyOnTheCachedPath) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    security::ScenarioSpaceOptions space_options;
    space_options.include_attack_scenarios = false;
    const auto space = security::ScenarioSpace::build(
        *study.system, *study.matrix, security::standard_threat_actors(), space_options);
    const auto verdicts = run_sweep(study, space, true, true, 1, {});
    EXPECT_GT(static_count(verdicts), 0u)
        << study.name << ": the prefilter certified no scenario at all";
}

TEST_P(AbsintDifferential, InjectedPrefilterFaultDegradesToIdenticalVerdicts) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    security::ScenarioSpaceOptions space_options;
    space_options.include_attack_scenarios = false;
    const auto space = security::ScenarioSpace::build(
        *study.system, *study.matrix, security::standard_threat_actors(), space_options);
    const auto reference = run_sweep(study, space, false, true, 1, {});

    for (int countdown : {1, 4}) {
        SCOPED_TRACE(study.name + " countdown=" + std::to_string(countdown));
        fault::reset();
        fault::arm("epa.absint.prefilter", countdown);
        const auto faulted = run_sweep(study, space, true, true, 1, {});
        fault::reset();
        ASSERT_EQ(faulted.size(), reference.size());
        for (std::size_t i = 0; i < faulted.size(); ++i) {
            EXPECT_EQ(signature(faulted[i]), signature(reference[i])) << "scenario " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bundles, AbsintDifferential,
                         ::testing::Values(&make_watertank, &make_reactor),
                         [](const ::testing::TestParamInfo<Study (*)()>& info) {
                             return info.index == 0 ? "watertank" : "reactor";
                         });

}  // namespace
}  // namespace cprisk::epa
