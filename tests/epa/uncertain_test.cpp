// RST-extended EPA: hazard-region classification under epistemic
// uncertainty about the active fault set (paper §V-B).
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "epa/uncertain.hpp"

namespace cprisk::epa {
namespace {

namespace ids = core::watertank_ids;
using security::Mutation;

class UncertainFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = core::WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new core::WaterTankCaseStudy(std::move(built).value());
        EpaOptions options;
        options.focus = AnalysisFocus::Behavioral;
        options.horizon = cs_->horizon;
        auto epa = ErrorPropagationAnalysis::create(cs_->system, cs_->requirements,
                                                    cs_->mitigations, options);
        ASSERT_TRUE(epa.ok()) << epa.error();
        epa_ = new ErrorPropagationAnalysis(std::move(epa).value());
    }
    static void TearDownTestSuite() {
        delete epa_;
        delete cs_;
        epa_ = nullptr;
        cs_ = nullptr;
    }

    static core::WaterTankCaseStudy* cs_;
    static ErrorPropagationAnalysis* epa_;
};

core::WaterTankCaseStudy* UncertainFixture::cs_ = nullptr;
ErrorPropagationAnalysis* UncertainFixture::epa_ = nullptr;

TEST_F(UncertainFixture, CertainHazardIsPositive) {
    // F2 definitely active: R1 violated in every world.
    UncertainScenario scenario;
    scenario.id = "u1";
    scenario.certain = {{ids::kOutputValve, "stuck_at_closed"}};
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    EXPECT_EQ(verdict.value().regions.at("r1"), HazardRegion::Positive);
    EXPECT_EQ(verdict.value().regions.at("r2"), HazardRegion::Negative);
    EXPECT_EQ(verdict.value().worlds_evaluated, 1u);
    EXPECT_TRUE(verdict.value().certainly_hazardous());
}

TEST_F(UncertainFixture, NoFaultsIsNegative) {
    UncertainScenario scenario;
    scenario.id = "u2";
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value().regions.at("r1"), HazardRegion::Negative);
    EXPECT_FALSE(verdict.value().possibly_hazardous());
}

TEST_F(UncertainFixture, UncertainFaultGivesBoundary) {
    // Whether the output valve fault exists is unknown: R1 lands in the
    // boundary region — the §V escalation case.
    UncertainScenario scenario;
    scenario.id = "u3";
    scenario.uncertain = {{ids::kOutputValve, "stuck_at_closed"}};
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value().worlds_evaluated, 2u);
    EXPECT_EQ(verdict.value().regions.at("r1"), HazardRegion::Boundary);
    EXPECT_FALSE(verdict.value().certainly_hazardous());
    EXPECT_TRUE(verdict.value().possibly_hazardous());
    EXPECT_EQ(verdict.value().boundary_requirements(), std::vector<std::string>{"r1"});
    EXPECT_EQ(verdict.value().violating_worlds.at("r1"), 1u);
}

TEST_F(UncertainFixture, CertainPlusUncertainRefinesRegions) {
    // F2 certain; F3 (alarm suppression) uncertain: R1 positive (violated
    // regardless), R2 boundary (depends on whether the HMI is dead).
    UncertainScenario scenario;
    scenario.id = "u4";
    scenario.certain = {{ids::kOutputValve, "stuck_at_closed"}};
    scenario.uncertain = {{ids::kHmi, "no_signal"}};
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value().regions.at("r1"), HazardRegion::Positive);
    EXPECT_EQ(verdict.value().regions.at("r2"), HazardRegion::Boundary);
}

TEST_F(UncertainFixture, IrrelevantUncertaintyStaysDecided) {
    // F1 is harmless whether or not it occurs: both requirements negative.
    UncertainScenario scenario;
    scenario.id = "u5";
    scenario.uncertain = {{ids::kInputValve, "stuck_at_open"}};
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value().regions.at("r1"), HazardRegion::Negative);
    EXPECT_EQ(verdict.value().regions.at("r2"), HazardRegion::Negative);
}

TEST_F(UncertainFixture, MitigationsNarrowTheBoundary) {
    // Uncertain workstation compromise: boundary unmitigated, negative once
    // endpoint security is deployed.
    UncertainScenario scenario;
    scenario.id = "u6";
    scenario.uncertain = {{ids::kWorkstation, "infected"}};
    auto open = evaluate_uncertain(*epa_, scenario, {});
    auto hardened = evaluate_uncertain(*epa_, scenario, {"M-ENDPOINT"});
    ASSERT_TRUE(open.ok());
    ASSERT_TRUE(hardened.ok());
    EXPECT_EQ(open.value().regions.at("r1"), HazardRegion::Boundary);
    EXPECT_EQ(hardened.value().regions.at("r1"), HazardRegion::Negative);
}

TEST_F(UncertainFixture, RegionsConsistentWithWorldCounts) {
    // Property: region classification must match the per-world counts.
    UncertainScenario scenario;
    scenario.id = "u7";
    scenario.uncertain = {{ids::kOutputValve, "stuck_at_closed"}, {ids::kHmi, "no_signal"}};
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value().worlds_evaluated, 4u);
    for (const auto& [requirement, region] : verdict.value().regions) {
        const std::size_t violated = verdict.value().violating_worlds.at(requirement);
        switch (region) {
            case HazardRegion::Negative: EXPECT_EQ(violated, 0u) << requirement; break;
            case HazardRegion::Positive:
                EXPECT_EQ(violated, verdict.value().worlds_evaluated) << requirement;
                break;
            case HazardRegion::Boundary:
                EXPECT_GT(violated, 0u) << requirement;
                EXPECT_LT(violated, verdict.value().worlds_evaluated) << requirement;
                break;
        }
    }
}

TEST_F(UncertainFixture, GuardRejectsTooManyUncertainMutations) {
    UncertainScenario scenario;
    scenario.id = "u8";
    for (int i = 0; i < 13; ++i) {
        scenario.uncertain.push_back({ids::kInputValve, "stuck_at_open"});
    }
    auto verdict = evaluate_uncertain(*epa_, scenario, {});
    EXPECT_FALSE(verdict.ok());
}

}  // namespace
}  // namespace cprisk::epa
