// EPA engine on small synthetic models: propagation, mitigation suppression,
// requirement checking, both analysis focuses.
#include <gtest/gtest.h>

#include "epa/epa.hpp"

namespace cprisk::epa {
namespace {

using model::Component;
using model::ElementType;
using model::FaultMode;
using model::RelationType;
using security::AttackScenario;
using security::Mutation;

Component comp(std::string id, ElementType type, qual::Level asset = qual::Level::Medium) {
    Component c;
    c.id = std::move(id);
    c.name = c.id;
    c.type = type;
    c.asset_value = asset;
    c.fault_modes = {FaultMode{"fail", model::FaultEffect::Corruption, "", qual::Level::Medium,
                               qual::Level::Low}};
    return c;
}

/// source -> relay -> target chain.
model::SystemModel chain_model() {
    model::SystemModel m;
    EXPECT_TRUE(m.add_component(comp("source", ElementType::Node)).ok());
    EXPECT_TRUE(m.add_component(comp("relay", ElementType::Controller)).ok());
    EXPECT_TRUE(
        m.add_component(comp("target", ElementType::Equipment, qual::Level::VeryHigh)).ok());
    EXPECT_TRUE(m.add_relation({"source", "relay", RelationType::SignalFlow, ""}).ok());
    EXPECT_TRUE(m.add_relation({"relay", "target", RelationType::SignalFlow, ""}).ok());
    return m;
}

AttackScenario scenario(std::string id, std::vector<Mutation> mutations,
                        qual::Level likelihood = qual::Level::Low) {
    AttackScenario s;
    s.id = std::move(id);
    s.mutations = std::move(mutations);
    s.likelihood = likelihood;
    return s;
}

ErrorPropagationAnalysis make_epa(const model::SystemModel& m,
                                  std::vector<Requirement> requirements,
                                  const MitigationMap& map = {},
                                  AnalysisFocus focus = AnalysisFocus::Topology) {
    EpaOptions options;
    options.focus = focus;
    options.horizon = 4;
    auto epa = ErrorPropagationAnalysis::create(m, std::move(requirements), map, options);
    EXPECT_TRUE(epa.ok()) << epa.error();
    return std::move(epa).value();
}

TEST(Epa, ErrorPropagatesAlongChain) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdict = epa.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    EXPECT_TRUE(verdict.value().violates("protect_target"));
    // Propagation path is source (t0) -> relay (t1) -> target (t2).
    ASSERT_EQ(verdict.value().propagation.size(), 3u);
    EXPECT_EQ(verdict.value().propagation[0].component, "source");
    EXPECT_EQ(verdict.value().propagation[1].component, "relay");
    EXPECT_EQ(verdict.value().propagation[2].component, "target");
    EXPECT_EQ(verdict.value().propagation[2].time, 2);
}

TEST(Epa, NoFaultNoViolation) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdict = epa.evaluate(scenario("s", {}), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    EXPECT_FALSE(verdict.value().any_violation());
    EXPECT_TRUE(verdict.value().propagation.empty());
}

TEST(Epa, ErrorDoesNotFlowUpstream) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("source")});
    auto verdict = epa.evaluate(scenario("s", {{"target", "fail"}}), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    EXPECT_FALSE(verdict.value().any_violation());
}

TEST(Epa, MitigationSuppressesInjection) {
    auto m = chain_model();
    MitigationMap map;
    map.add("patch", "source", "fail");
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")}, map);

    auto unmitigated = epa.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(unmitigated.ok());
    EXPECT_TRUE(unmitigated.value().any_violation());

    auto mitigated = epa.evaluate(scenario("s", {{"source", "fail"}}), {"patch"});
    ASSERT_TRUE(mitigated.ok());
    EXPECT_FALSE(mitigated.value().any_violation());
    EXPECT_TRUE(mitigated.value().injected.empty());
}

TEST(Epa, MitigationOnlySuppressesItsOwnFault) {
    auto m = chain_model();
    MitigationMap map;
    map.add("patch", "source", "fail");
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")}, map);
    // Fault on the relay is untouched by the source patch.
    auto verdict = epa.evaluate(scenario("s", {{"relay", "fail"}}), {"patch"});
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(verdict.value().any_violation());
}

TEST(Epa, SeverityTracksReachedAssets) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdict = epa.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(verdict.ok());
    // The error reaches the VeryHigh-value target.
    EXPECT_EQ(verdict.value().severity, qual::Level::VeryHigh);
}

TEST(Epa, UnknownComponentInScenarioFails) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdict = epa.evaluate(scenario("s", {{"ghost", "fail"}}), {});
    EXPECT_FALSE(verdict.ok());
}

TEST(Epa, BehavioralFocusUsesBehaviors) {
    auto m = chain_model();
    // Behaviour: the relay raises "alarm" whenever it has an error.
    ASSERT_TRUE(m.add_behavior("relay",
                               "#program always. alarm :- error(relay).").ok());
    Requirement alarm_required = Requirement::responds(
        "alarm_on_error", "relay errors must raise the alarm",
        asp::parse_atom("error(relay)").value(), asp::parse_atom("alarm").value());

    auto behavioral = make_epa(m, {alarm_required}, {}, AnalysisFocus::Behavioral);
    auto verdict = behavioral.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    EXPECT_FALSE(verdict.value().any_violation());  // alarm fires with the error

    // Topology focus drops the behaviour: the alarm never fires, violating
    // the response requirement.
    auto topology = make_epa(m, {alarm_required}, {}, AnalysisFocus::Topology);
    auto topo_verdict = topology.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(topo_verdict.ok()) << topo_verdict.error();
    EXPECT_TRUE(topo_verdict.value().any_violation());
}

TEST(Epa, QuantityFlowPropagatesBothWays) {
    model::SystemModel m;
    ASSERT_TRUE(m.add_component(comp("pump", ElementType::Actuator)).ok());
    ASSERT_TRUE(m.add_component(comp("pipe", ElementType::Equipment)).ok());
    ASSERT_TRUE(m.add_relation({"pump", "pipe", RelationType::QuantityFlow, "flow"}).ok());
    auto epa = make_epa(m, {Requirement::no_error_reaches("pump")});
    auto verdict = epa.evaluate(scenario("s", {{"pipe", "fail"}}), {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(verdict.value().any_violation());
}

TEST(Epa, EvaluateAllCoversSpace) {
    auto m = chain_model();
    security::ScenarioSpaceOptions options;
    options.max_simultaneous_faults = 1;
    options.include_attack_scenarios = false;
    auto space = security::ScenarioSpace::build(m, security::AttackMatrix::standard_ics(),
                                                security::standard_threat_actors(), options);
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdicts = epa.evaluate_all(space, {});
    ASSERT_TRUE(verdicts.ok()) << verdicts.error();
    EXPECT_EQ(verdicts.value().size(), space.size());
    // Every single-fault scenario reaches the target in this chain.
    for (const ScenarioVerdict& verdict : verdicts.value()) {
        EXPECT_TRUE(verdict.any_violation()) << verdict.scenario_id;
    }
}

TEST(Epa, MitigationMapFromAttackMatrix) {
    model::SystemModel m;
    Component node = comp("ws", ElementType::Node);
    node.fault_modes = {FaultMode{"infected", model::FaultEffect::Compromise, "",
                                  qual::Level::High, qual::Level::Medium}};
    ASSERT_TRUE(m.add_component(node).ok());
    auto matrix = security::AttackMatrix::standard_ics();
    auto map = MitigationMap::from_attack_matrix(m, matrix);
    // T-USER-EXec causes "infected" on Node and is mitigated by training and
    // endpoint security.
    bool train = false;
    bool endpoint = false;
    for (const auto& entry : map.entries()) {
        if (entry.component == "ws" && entry.fault_id == "infected") {
            if (entry.mitigation_id == "M-TRAIN") train = true;
            if (entry.mitigation_id == "M-ENDPOINT") endpoint = true;
        }
    }
    EXPECT_TRUE(train);
    EXPECT_TRUE(endpoint);
}

TEST(Epa, InvalidModelRejected) {
    model::SystemModel m;
    ASSERT_TRUE(m.add_component(comp("a", ElementType::Node)).ok());
    ASSERT_TRUE(m.add_behavior("a", "not valid asp ((").ok());
    EpaOptions options;
    options.focus = AnalysisFocus::Behavioral;
    auto epa = ErrorPropagationAnalysis::create(m, {}, {}, options);
    EXPECT_FALSE(epa.ok());
}


TEST(Epa, CollectTraceProducesCounterexample) {
    auto m = chain_model();
    ASSERT_TRUE(m.add_behavior("relay", "#program always. alarm :- error(relay).").ok());
    EpaOptions options;
    options.focus = AnalysisFocus::Behavioral;
    options.horizon = 4;
    options.collect_trace = true;
    auto epa = ErrorPropagationAnalysis::create(
        m, {Requirement::no_error_reaches("target")}, {}, options);
    ASSERT_TRUE(epa.ok()) << epa.error();
    auto verdict = epa.value().evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();
    ASSERT_EQ(verdict.value().trace.size(), 5u);  // horizon 4 -> 5 steps
    // The counterexample shows the error at the source at t=0 and the alarm
    // once the relay is hit; internal predicates are filtered out.
    EXPECT_TRUE(verdict.value().trace[0].count(asp::parse_atom("error(source)").value()) > 0);
    EXPECT_TRUE(verdict.value().trace[1].count(asp::parse_atom("alarm").value()) > 0);
    for (const auto& step : verdict.value().trace) {
        for (const auto& atom : step) {
            EXPECT_NE(atom.predicate.substr(0, 2), "__");
        }
    }
}

TEST(Epa, TraceEmptyWithoutOption) {
    auto m = chain_model();
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto verdict = epa.evaluate(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(verdict.value().trace.empty());
}

TEST(Epa, MinViolationHorizonMatchesChainDepth) {
    auto m = chain_model();  // source -> relay -> target: 2 steps to reach
    auto epa = make_epa(m, {Requirement::no_error_reaches("target")});
    auto horizon = epa.min_violation_horizon(scenario("s", {{"source", "fail"}}), {});
    ASSERT_TRUE(horizon.ok()) << horizon.error();
    ASSERT_TRUE(horizon.value().has_value());
    EXPECT_EQ(*horizon.value(), 2);

    // A fault directly on the target violates immediately.
    auto immediate = epa.min_violation_horizon(scenario("s", {{"target", "fail"}}), {});
    ASSERT_TRUE(immediate.ok());
    ASSERT_TRUE(immediate.value().has_value());
    EXPECT_EQ(*immediate.value(), 0);

    // A safe scenario never violates within the configured horizon.
    auto safe = epa.min_violation_horizon(scenario("s", {}), {});
    ASSERT_TRUE(safe.ok());
    EXPECT_FALSE(safe.value().has_value());
}

}  // namespace
}  // namespace cprisk::epa
