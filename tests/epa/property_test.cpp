// EPA property tests over generated random models: monotonicity of
// violations in the mutation set (topology focus), anti-monotonicity in the
// mitigation set, and propagation-path invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "epa/epa.hpp"

namespace cprisk::epa {
namespace {

using model::Component;
using model::ElementType;
using model::RelationType;
using security::AttackScenario;
using security::Mutation;

class Rng {
public:
    explicit Rng(unsigned seed) : state_(seed * 2654435761u + 17) {}
    unsigned next() {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }
    int below(int n) { return static_cast<int>(next() % static_cast<unsigned>(n)); }

private:
    unsigned state_;
};

/// Random DAG model: n components, forward edges, every component carries a
/// "fail" mode.
model::SystemModel random_model(unsigned seed, int n) {
    Rng rng(seed);
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? ElementType::Equipment : ElementType::Controller;
        c.asset_value = qual::level_from_index(rng.below(5));
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        EXPECT_TRUE(m.add_component(std::move(c)).ok());
    }
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (rng.below(3) != 0) continue;
            EXPECT_TRUE(m.add_relation({"c" + std::to_string(i), "c" + std::to_string(j),
                                        RelationType::SignalFlow, ""})
                            .ok());
        }
    }
    return m;
}

AttackScenario scenario_of(std::vector<Mutation> mutations) {
    AttackScenario s;
    s.id = "p";
    s.mutations = std::move(mutations);
    return s;
}

class EpaProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(EpaProperties, ViolationsMonotoneInMutations) {
    const unsigned seed = GetParam();
    const int n = 6;
    auto m = random_model(seed, n);
    std::vector<Requirement> requirements;
    for (int i = 0; i < n; ++i) {
        requirements.push_back(Requirement::no_error_reaches("c" + std::to_string(i)));
    }
    EpaOptions options;
    options.focus = AnalysisFocus::Topology;
    options.horizon = n;
    auto epa = ErrorPropagationAnalysis::create(m, requirements, {}, options);
    ASSERT_TRUE(epa.ok()) << epa.error();

    Rng rng(seed + 99);
    std::vector<Mutation> small;
    for (int i = 0; i < n; ++i) {
        if (rng.below(3) == 0) small.push_back({"c" + std::to_string(i), "fail"});
    }
    std::vector<Mutation> large = small;
    large.push_back({"c" + std::to_string(rng.below(n)), "fail"});

    auto small_verdict = epa.value().evaluate(scenario_of(small), {});
    auto large_verdict = epa.value().evaluate(scenario_of(large), {});
    ASSERT_TRUE(small_verdict.ok()) << small_verdict.error();
    ASSERT_TRUE(large_verdict.ok()) << large_verdict.error();

    // Every violation of the smaller mutation set persists in the superset.
    for (const std::string& requirement : small_verdict.value().violated_requirements) {
        EXPECT_TRUE(large_verdict.value().violates(requirement))
            << "seed " << seed << ": adding a fault removed violation " << requirement;
    }
    // And the propagation reach can only grow.
    EXPECT_GE(large_verdict.value().propagation.size(),
              small_verdict.value().propagation.size());
}

TEST_P(EpaProperties, MitigationsAntiMonotone) {
    const unsigned seed = GetParam();
    const int n = 5;
    auto m = random_model(seed, n);
    MitigationMap map;
    for (int i = 0; i < n; ++i) {
        map.add("patch" + std::to_string(i), "c" + std::to_string(i), "fail");
    }
    std::vector<Requirement> requirements = {
        Requirement::no_error_reaches("c" + std::to_string(n - 1))};
    EpaOptions options;
    options.focus = AnalysisFocus::Topology;
    options.horizon = n;
    auto epa = ErrorPropagationAnalysis::create(m, requirements, map, options);
    ASSERT_TRUE(epa.ok()) << epa.error();

    std::vector<Mutation> mutations;
    for (int i = 0; i < n; ++i) mutations.push_back({"c" + std::to_string(i), "fail"});
    const auto scenario = scenario_of(mutations);

    std::vector<std::string> active;
    std::size_t previous_violations = requirements.size() + 1;
    for (int i = 0; i < n; ++i) {
        auto verdict = epa.value().evaluate(scenario, active);
        ASSERT_TRUE(verdict.ok()) << verdict.error();
        EXPECT_LE(verdict.value().violated_requirements.size(), previous_violations)
            << "seed " << seed << ": adding a mitigation added a violation";
        previous_violations = verdict.value().violated_requirements.size();
        active.push_back("patch" + std::to_string(i));
    }
    // With every component patched, nothing is injected.
    auto fully_mitigated = epa.value().evaluate(scenario, active);
    ASSERT_TRUE(fully_mitigated.ok());
    EXPECT_TRUE(fully_mitigated.value().injected.empty());
    EXPECT_FALSE(fully_mitigated.value().any_violation());
}

TEST_P(EpaProperties, PropagationCoversInjectedComponents) {
    const unsigned seed = GetParam();
    const int n = 6;
    auto m = random_model(seed, n);
    EpaOptions options;
    options.focus = AnalysisFocus::Topology;
    options.horizon = n;
    auto epa = ErrorPropagationAnalysis::create(m, {}, {}, options);
    ASSERT_TRUE(epa.ok()) << epa.error();

    Rng rng(seed + 7);
    std::vector<Mutation> mutations = {{"c" + std::to_string(rng.below(n)), "fail"},
                                       {"c" + std::to_string(rng.below(n)), "fail"}};
    auto verdict = epa.value().evaluate(scenario_of(mutations), {});
    ASSERT_TRUE(verdict.ok()) << verdict.error();

    // Every injected component appears in the propagation trace at t=0, and
    // the trace is a subset of the injected components' forward closures.
    for (const Mutation& mutation : verdict.value().injected) {
        const bool present = std::any_of(
            verdict.value().propagation.begin(), verdict.value().propagation.end(),
            [&](const PropagationStep& step) {
                return step.component == mutation.component && step.time == 0;
            });
        EXPECT_TRUE(present) << "seed " << seed;
    }
    std::set<model::ComponentId> closure;
    for (const Mutation& mutation : mutations) {
        closure.insert(mutation.component);
        auto reachable = m.reachable_from(mutation.component);
        closure.insert(reachable.begin(), reachable.end());
    }
    for (const PropagationStep& step : verdict.value().propagation) {
        EXPECT_TRUE(closure.count(step.component) > 0)
            << "seed " << seed << ": error appeared outside the reachable closure";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpaProperties, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace cprisk::epa
