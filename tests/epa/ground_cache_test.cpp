// Differential test for the ground-once/solve-many cache: with the cache on
// (assumption-pinned shared grounding) and off (full per-scenario reground),
// every verdict field that carries analysis meaning must agree, over both
// case-study bundles, with and without active mitigations, and in trace
// mode. Solver statistics are exempt: the two paths search different (but
// projection-equivalent) groundings.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/reactor.hpp"
#include "core/watertank.hpp"
#include "epa/epa.hpp"
#include "security/scenario.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::epa {
namespace {

/// One case study prepared for a differential run.
struct Study {
    std::string name;
    std::shared_ptr<void> owner;
    const model::SystemModel* system = nullptr;
    std::vector<Requirement> requirements;
    const MitigationMap* mitigations = nullptr;
    const security::AttackMatrix* matrix = nullptr;
    int horizon = 4;
};

Study make_watertank() {
    auto built = core::WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::WaterTankCaseStudy>(std::move(built).value());
    Study study;
    study.name = "watertank";
    study.system = &cs->system;
    study.requirements = cs->requirements;
    study.mitigations = &cs->mitigations;
    study.matrix = &cs->matrix;
    study.horizon = cs->horizon;
    study.owner = cs;
    return study;
}

Study make_reactor() {
    auto built = core::ReactorCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::ReactorCaseStudy>(std::move(built).value());
    Study study;
    study.name = "reactor";
    study.system = &cs->system;
    study.requirements = cs->requirements;
    study.mitigations = &cs->mitigations;
    study.matrix = &cs->matrix;
    study.horizon = cs->horizon;
    study.owner = cs;
    return study;
}

/// Everything a verdict claims about the scenario, minus search effort.
std::string signature(const ScenarioVerdict& verdict) {
    std::string out = verdict.scenario_id;
    out += "|status=" + std::string(to_string(verdict.status));
    if (verdict.undetermined_reason) {
        out += "|reason=" + std::string(to_string(*verdict.undetermined_reason));
    }
    out += "|violated=";
    for (const auto& id : verdict.violated_requirements) out += id + ",";
    out += "|injected=";
    for (const auto& mutation : verdict.injected) out += mutation.to_string() + ",";
    out += "|propagation=";
    for (const auto& step : verdict.propagation) {
        out += std::to_string(step.time) + ":" + step.component + ",";
    }
    out += "|severity=" + std::string(qual::to_short_string(verdict.severity));
    out += "|likelihood=" + std::string(qual::to_short_string(verdict.likelihood));
    out += "|mitigations=";
    for (const auto& id : verdict.active_mitigations) out += id + ",";
    return out;
}

class GroundCacheDifferential : public ::testing::TestWithParam<Study (*)()> {};

TEST_P(GroundCacheDifferential, CachedAndRegroundPathsAgreeOnEveryScenario) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    security::ScenarioSpaceOptions space_options;
    space_options.include_attack_scenarios = false;
    const auto space = security::ScenarioSpace::build(
        *study.system, *study.matrix, security::standard_threat_actors(), space_options);
    ASSERT_GT(space.size(), 0u);

    // One mitigated configuration exercises the active_mitigation pins.
    std::vector<std::vector<std::string>> mitigation_sets = {{}};
    if (!study.mitigations->entries().empty()) {
        mitigation_sets.push_back({study.mitigations->entries().front().mitigation_id});
    }

    for (const auto& active : mitigation_sets) {
        EpaOptions cached_options;
        cached_options.horizon = study.horizon;
        cached_options.ground_once = true;
        EpaOptions reground_options = cached_options;
        reground_options.ground_once = false;

        auto cached = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                       *study.mitigations, cached_options);
        ASSERT_TRUE(cached.ok()) << cached.error();
        auto reground = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                         *study.mitigations, reground_options);
        ASSERT_TRUE(reground.ok()) << reground.error();

        auto cached_verdicts = cached.value().evaluate_all(space, active);
        ASSERT_TRUE(cached_verdicts.ok()) << cached_verdicts.error();
        auto reground_verdicts = reground.value().evaluate_all(space, active);
        ASSERT_TRUE(reground_verdicts.ok()) << reground_verdicts.error();

        ASSERT_EQ(cached_verdicts.value().size(), reground_verdicts.value().size());
        for (std::size_t i = 0; i < cached_verdicts.value().size(); ++i) {
            EXPECT_EQ(signature(cached_verdicts.value()[i]),
                      signature(reground_verdicts.value()[i]))
                << study.name << " scenario " << i
                << (active.empty() ? "" : " (mitigated)");
        }
    }
}

TEST_P(GroundCacheDifferential, TraceModeProducesIdenticalCounterexamples) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    security::ScenarioSpaceOptions space_options;
    space_options.include_attack_scenarios = false;
    space_options.max_simultaneous_faults = 1;
    const auto space = security::ScenarioSpace::build(
        *study.system, *study.matrix, security::standard_threat_actors(), space_options);
    ASSERT_GT(space.size(), 0u);

    EpaOptions cached_options;
    cached_options.horizon = study.horizon;
    cached_options.collect_trace = true;
    cached_options.ground_once = true;
    EpaOptions reground_options = cached_options;
    reground_options.ground_once = false;

    auto cached = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                   *study.mitigations, cached_options);
    ASSERT_TRUE(cached.ok()) << cached.error();
    auto reground = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                     *study.mitigations, reground_options);
    ASSERT_TRUE(reground.ok()) << reground.error();

    for (const auto& scenario : space.scenarios()) {
        auto a = cached.value().evaluate(scenario, {});
        auto b = reground.value().evaluate(scenario, {});
        ASSERT_TRUE(a.ok()) << a.error();
        ASSERT_TRUE(b.ok()) << b.error();
        EXPECT_EQ(signature(a.value()), signature(b.value())) << scenario.id;
        // The full qualitative trace (every projected state atom per step)
        // must be identical: the cache's pinned delta atoms mirror the
        // legacy path's facts exactly.
        EXPECT_EQ(a.value().trace, b.value().trace) << scenario.id;
    }
}

INSTANTIATE_TEST_SUITE_P(Bundles, GroundCacheDifferential,
                         ::testing::Values(&make_watertank, &make_reactor),
                         [](const ::testing::TestParamInfo<Study (*)()>& info) {
                             return info.index == 0 ? "watertank" : "reactor";
                         });

}  // namespace
}  // namespace cprisk::epa
