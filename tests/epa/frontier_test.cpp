// Exhaustive hazard frontier (epa/frontier): the antichain of minimal
// hazardous fault sets must equal a brute-force 2^n ground truth on small
// models, across cache on/off x prefilter on/off x jobs {1,4}; a monotone
// certificate must prune supersets, a mixed certificate must degrade to
// full enumeration with the same antichain; --exhaustive journals resume
// byte-identically after a mid-run kill.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/antichain.hpp"
#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"
#include "epa/frontier.hpp"

namespace cprisk::epa {
namespace {

using security::Mutation;

/// A study prepared for a frontier-vs-brute-force differential.
struct Study {
    std::string name;
    std::shared_ptr<void> owner;
    const model::SystemModel* system = nullptr;
    std::vector<Requirement> requirements;
    MitigationMap mitigations;
    AnalysisFocus focus = AnalysisFocus::Behavioral;
    int horizon = 4;
    bool expect_monotone = false;
    std::size_t max_card = 0;  ///< 0 = full lattice; else layer cap for big universes
};

/// c0 -> c1 -> ... -> c{n-1}; every component has one `fail` mode and the
/// tail is the high-value asset. Negation-free under Topology focus, so the
/// polarity certifier proves it monotone.
Study make_chain(int n) {
    auto system = std::make_shared<model::SystemModel>();
    for (int i = 0; i < n; ++i) {
        model::Component component;
        component.id = "c" + std::to_string(i);
        component.name = component.id;
        component.type =
            i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        component.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        component.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                                  qual::Level::Medium, qual::Level::Low}};
        EXPECT_TRUE(system->add_component(std::move(component)).ok());
    }
    for (int i = 0; i + 1 < n; ++i) {
        EXPECT_TRUE(system
                        ->add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                                        model::RelationType::SignalFlow, ""})
                        .ok());
    }
    Study study;
    study.name = "chain" + std::to_string(n);
    study.system = system.get();
    study.owner = std::move(system);
    study.requirements = {Requirement::no_error_reaches("c" + std::to_string(n - 1))};
    study.focus = AnalysisFocus::Topology;
    study.horizon = n + 1;
    study.expect_monotone = true;
    return study;
}

/// The behavioural case study: `not eff_fault(..)` negations in the
/// fragments make the certificate mixed, exercising the degraded sweep.
Study make_watertank() {
    auto built = core::WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::WaterTankCaseStudy>(std::move(built).value());
    Study study;
    study.name = "watertank";
    study.system = &cs->system;
    study.requirements = cs->requirements;
    study.mitigations = cs->mitigations;
    study.focus = AnalysisFocus::Behavioral;
    study.horizon = cs->horizon;
    study.expect_monotone = false;
    // 14 fault modes: the full 2^14 behavioural brute force would dominate
    // the suite, so the differential covers the cardinality-<=2 layers.
    study.max_card = 2;
    study.owner = std::move(cs);
    return study;
}

/// Number of subsets of an n-element universe with cardinality <= k.
std::size_t layered_candidates(std::size_t n, std::size_t k) {
    std::size_t total = 0;
    std::size_t binom = 1;
    for (std::size_t card = 0; card <= k && card <= n; ++card) {
        total += binom;
        binom = binom * (n - card) / (card + 1);
    }
    return total;
}

std::vector<Mutation> fault_universe(const model::SystemModel& model) {
    std::vector<Mutation> universe;
    for (const model::Component& component : model.components()) {
        for (const model::FaultMode& mode : component.fault_modes) {
            universe.push_back(Mutation{component.id, mode.id});
        }
    }
    std::sort(universe.begin(), universe.end());
    return universe;
}

/// Brute-force ground truth: evaluate every subset of the universe and keep
/// the inclusion-minimal hazardous ones, as scenario-id strings.
std::set<std::string> brute_force_minimal_hazards(const ErrorPropagationAnalysis& epa,
                                                  std::size_t max_card) {
    const std::vector<Mutation> universe = fault_universe(epa.system_model());
    std::vector<std::vector<Mutation>> hazardous;
    for (std::size_t mask = 0; mask < (std::size_t{1} << universe.size()); ++mask) {
        std::vector<Mutation> subset;
        for (std::size_t i = 0; i < universe.size(); ++i) {
            if ((mask >> i) & 1u) subset.push_back(universe[i]);
        }
        if (subset.size() > max_card) continue;
        auto verdict = epa.evaluate(frontier_scenario(epa.system_model(), subset), {});
        EXPECT_TRUE(verdict.ok()) << verdict.error();
        if (verdict.ok() && verdict.value().status == VerdictStatus::Hazard) {
            hazardous.push_back(std::move(subset));
        }
    }
    std::set<std::string> minimal;
    for (const std::vector<Mutation>& subset : minimal_sets(std::move(hazardous))) {
        minimal.insert(frontier_scenario_id(subset));
    }
    return minimal;
}

std::set<std::string> frontier_ids(const FrontierResult& result) {
    std::set<std::string> ids;
    for (const ScenarioVerdict& hazard : result.minimal_hazards) {
        ids.insert(hazard.scenario_id);
    }
    return ids;
}

TEST(FrontierScenario, IdsAreDeterministic) {
    EXPECT_EQ(frontier_scenario_id({}), "exh:none");
    EXPECT_EQ(frontier_scenario_id({{"a", "f"}, {"b", "g"}}), "exh:a.f+b.g");
}

class FrontierDifferential : public ::testing::TestWithParam<Study (*)()> {};

TEST_P(FrontierDifferential, AntichainMatchesBruteForceAcrossConfigurations) {
    const Study study = GetParam()();
    ASSERT_NE(study.system, nullptr);

    // Reference ground truth from a plain cached engine.
    EpaOptions reference_options;
    reference_options.focus = study.focus;
    reference_options.horizon = study.horizon;
    auto reference = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                      study.mitigations, reference_options);
    ASSERT_TRUE(reference.ok()) << reference.error();
    const std::size_t universe_size = fault_universe(*study.system).size();
    ASSERT_TRUE(universe_size <= 10u || study.max_card > 0)
        << "unbounded brute force needs n <= 10";
    const std::size_t effective_card =
        study.max_card > 0 ? study.max_card : universe_size;
    const std::set<std::string> truth =
        brute_force_minimal_hazards(reference.value(), effective_card);
    const std::size_t expected_candidates = layered_candidates(universe_size, effective_card);

    for (const bool ground_once : {true, false}) {
        for (const bool static_prefilter : {true, false}) {
            for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
                const std::string label = study.name + " cache=" +
                                          std::to_string(ground_once) + " prefilter=" +
                                          std::to_string(static_prefilter) + " jobs=" +
                                          std::to_string(jobs);
                RunContext ctx;
                ctx.jobs = jobs;
                EpaOptions epa_options;
                epa_options.focus = study.focus;
                epa_options.horizon = study.horizon;
                epa_options.ground_once = ground_once;
                epa_options.static_prefilter = static_prefilter;
                epa_options.ctx = &ctx;
                auto epa = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                            study.mitigations, epa_options);
                ASSERT_TRUE(epa.ok()) << label << ": " << epa.error();

                FrontierOptions options;
                options.ctx = &ctx;
                options.max_card = study.max_card;
                auto result = run_frontier(epa.value(), options);
                ASSERT_TRUE(result.ok()) << label << ": " << result.error();
                const FrontierResult& frontier = result.value();

                EXPECT_EQ(frontier_ids(frontier), truth) << label;
                EXPECT_EQ(frontier.universe_size, universe_size) << label;
                EXPECT_EQ(frontier.candidates, expected_candidates) << label;
                if (!ground_once) {
                    // No cache, no certificate, no claim: degraded sweep.
                    EXPECT_FALSE(frontier.certificate.has_value()) << label;
                    EXPECT_FALSE(frontier.pruning) << label;
                    EXPECT_EQ(frontier.pruned, 0u) << label;
                } else if (study.expect_monotone) {
                    ASSERT_TRUE(frontier.certificate.has_value()) << label;
                    EXPECT_TRUE(frontier.certificate->monotone) << label;
                    EXPECT_TRUE(frontier.pruning) << label;
                    EXPECT_EQ(frontier.evaluated + frontier.pruned, frontier.candidates)
                        << label;
                    EXPECT_GT(frontier.pruned, 0u) << label;
                } else {
                    ASSERT_TRUE(frontier.certificate.has_value()) << label;
                    EXPECT_FALSE(frontier.certificate->monotone) << label;
                    EXPECT_FALSE(frontier.certificate->offenders.empty()) << label;
                    EXPECT_FALSE(frontier.pruning) << label;
                    EXPECT_EQ(frontier.evaluated, frontier.candidates) << label;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Studies, FrontierDifferential,
                         ::testing::Values(+[] { return make_chain(6); }, &make_watertank),
                         [](const ::testing::TestParamInfo<Study (*)()>& info) {
                             return info.index == 0 ? "chain6" : "watertank";
                         });

TEST(Frontier, MonotoneChainPrunesEverythingAboveTheSingletons) {
    const Study study = make_chain(5);
    EpaOptions epa_options;
    epa_options.focus = study.focus;
    epa_options.horizon = study.horizon;
    auto epa = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                study.mitigations, epa_options);
    ASSERT_TRUE(epa.ok()) << epa.error();
    auto result = run_frontier(epa.value(), {});
    ASSERT_TRUE(result.ok()) << result.error();
    const FrontierResult& frontier = result.value();
    // Every singleton fault propagates to the tail asset, so the antichain
    // is exactly the 5 singletons; the empty set plus the singletons are the
    // only evaluations, everything larger is pruned by the certificate.
    EXPECT_TRUE(frontier.pruning);
    EXPECT_EQ(frontier.minimal_hazards.size(), 5u);
    EXPECT_EQ(frontier.candidates, 32u);
    EXPECT_EQ(frontier.evaluated, 6u);
    EXPECT_EQ(frontier.pruned, 26u);
}

TEST(Frontier, MaxCardBoundsTheSweepAndComponentFilterShrinksTheUniverse) {
    const Study study = make_chain(6);
    EpaOptions epa_options;
    epa_options.focus = study.focus;
    epa_options.horizon = study.horizon;
    auto epa = ErrorPropagationAnalysis::create(*study.system, study.requirements,
                                                study.mitigations, epa_options);
    ASSERT_TRUE(epa.ok()) << epa.error();

    FrontierOptions options;
    options.max_card = 1;
    const std::set<model::ComponentId> keep = {"c0", "c2", "c4"};
    options.component_filter = &keep;
    auto result = run_frontier(epa.value(), options);
    ASSERT_TRUE(result.ok()) << result.error();
    const FrontierResult& frontier = result.value();
    EXPECT_EQ(frontier.universe_size, 3u);
    EXPECT_EQ(frontier.skipped_faults, 3u);
    EXPECT_EQ(frontier.max_card, 1u);
    EXPECT_EQ(frontier.candidates, 4u);  // empty set + 3 singletons
    EXPECT_EQ(frontier.minimal_hazards.size(), 3u);
}

/// Every user-visible rendering of a report, for byte-identity checks.
std::string renderings(const core::AssessmentReport& report) {
    return core::render_markdown(report) + "\n===\n" + core::render_risk_csv(report) +
           "\n===\n" + core::render_report_json(report);
}

class ExhaustiveJournalTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(ExhaustiveJournalTest, ResumeAfterMidRunKillReproducesCleanReport) {
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::WaterTankCaseStudy>(std::move(built).value());
    core::RiskAssessment assessment(cs->system, cs->requirements, cs->topology_requirements,
                                    cs->matrix, cs->mitigations);
    core::AssessmentConfig config;
    config.horizon = cs->horizon;
    config.include_attack_scenarios = false;
    config.exhaustive = true;
    config.max_card = 2;

    auto clean = assessment.run(config);
    ASSERT_TRUE(clean.ok()) << clean.error();
    EXPECT_TRUE(clean.value().exhaustive.enabled);

    const std::string journal = ::testing::TempDir() + "cprisk_exhaustive_kill.jsonl";
    std::remove(journal.c_str());
    core::AssessmentConfig journaled = config;
    journaled.journal_path = journal;
    fault::arm("core.journal.append", 3);
    auto killed = assessment.run(journaled);
    fault::reset();
    ASSERT_FALSE(killed.ok());

    auto contents = core::load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    EXPECT_EQ(contents.value().records.size(), 2u);

    // Resume under a different job count: frontier journals drain in strict
    // candidate order, so the bytes and the report are identical anyway.
    journaled.resume = true;
    journaled.jobs = 4;
    auto resumed = assessment.run(journaled);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));

    auto replayed = assessment.run(journaled);
    ASSERT_TRUE(replayed.ok()) << replayed.error();
    EXPECT_EQ(replayed.value().resumed_scenarios, replayed.value().scenario_count);
    EXPECT_EQ(renderings(replayed.value()), renderings(clean.value()));
    std::remove(journal.c_str());
}

TEST_F(ExhaustiveJournalTest, ExhaustiveJournalRefusesNonExhaustiveResume) {
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<core::WaterTankCaseStudy>(std::move(built).value());
    core::RiskAssessment assessment(cs->system, cs->requirements, cs->topology_requirements,
                                    cs->matrix, cs->mitigations);
    const std::string journal = ::testing::TempDir() + "cprisk_exhaustive_cfg.jsonl";
    std::remove(journal.c_str());

    core::AssessmentConfig config;
    config.horizon = cs->horizon;
    config.include_attack_scenarios = false;
    config.exhaustive = true;
    config.max_card = 2;
    config.journal_path = journal;
    ASSERT_TRUE(assessment.run(config).ok());

    core::AssessmentConfig mismatched = config;
    mismatched.resume = true;
    mismatched.exhaustive = false;
    auto refused = assessment.run(mismatched);
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.error().find("configuration"), std::string::npos) << refused.error();

    core::AssessmentConfig card_mismatch = config;
    card_mismatch.resume = true;
    card_mismatch.max_card = 3;
    auto card_refused = assessment.run(card_mismatch);
    ASSERT_FALSE(card_refused.ok());
    EXPECT_NE(card_refused.error().find("configuration"), std::string::npos)
        << card_refused.error();
    std::remove(journal.c_str());
}

}  // namespace
}  // namespace cprisk::epa
