// SystemModel graph semantics: construction, merge, refinement, propagation
// queries, validation.
#include <gtest/gtest.h>

#include "model/system_model.hpp"

namespace cprisk::model {
namespace {

Component comp(std::string id, ElementType type = ElementType::Node) {
    Component c;
    c.id = std::move(id);
    c.name = c.id;
    c.type = type;
    return c;
}

SystemModel chain3() {
    SystemModel m;
    EXPECT_TRUE(m.add_component(comp("a")).ok());
    EXPECT_TRUE(m.add_component(comp("b")).ok());
    EXPECT_TRUE(m.add_component(comp("c")).ok());
    EXPECT_TRUE(m.add_relation({"a", "b", RelationType::SignalFlow, ""}).ok());
    EXPECT_TRUE(m.add_relation({"b", "c", RelationType::SignalFlow, ""}).ok());
    return m;
}

TEST(SystemModel, AddAndLookup) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("x", ElementType::Sensor)).ok());
    EXPECT_TRUE(m.has_component("x"));
    EXPECT_EQ(m.component("x").type, ElementType::Sensor);
    EXPECT_FALSE(m.has_component("y"));
    EXPECT_THROW(m.component("y"), Error);
}

TEST(SystemModel, DuplicateIdRejected) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("x")).ok());
    EXPECT_FALSE(m.add_component(comp("x")).ok());
    EXPECT_FALSE(m.add_component(comp("")).ok());
}

TEST(SystemModel, RelationEndpointsValidated) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("x")).ok());
    EXPECT_FALSE(m.add_relation({"x", "ghost", RelationType::SignalFlow, ""}).ok());
    EXPECT_FALSE(m.add_relation({"ghost", "x", RelationType::SignalFlow, ""}).ok());
}

TEST(SystemModel, PropagationSuccessorsDirectional) {
    auto m = chain3();
    auto from_a = m.propagation_successors("a");
    ASSERT_EQ(from_a.size(), 1u);
    EXPECT_EQ(from_a[0], "b");
    EXPECT_TRUE(m.propagation_successors("c").empty());
}

TEST(SystemModel, QuantityFlowIsBidirectional) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("tank", ElementType::Equipment)).ok());
    ASSERT_TRUE(m.add_component(comp("valve", ElementType::Actuator)).ok());
    ASSERT_TRUE(m.add_relation({"valve", "tank", RelationType::QuantityFlow, "water"}).ok());
    EXPECT_EQ(m.propagation_successors("valve"), std::vector<ComponentId>{"tank"});
    EXPECT_EQ(m.propagation_successors("tank"), std::vector<ComponentId>{"valve"});
}

TEST(SystemModel, CompositionDoesNotPropagate) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("whole")).ok());
    ASSERT_TRUE(m.add_component(comp("part")).ok());
    ASSERT_TRUE(m.add_relation({"whole", "part", RelationType::Composition, ""}).ok());
    EXPECT_TRUE(m.propagation_successors("whole").empty());
}

TEST(SystemModel, Reachability) {
    auto m = chain3();
    auto reachable = m.reachable_from("a");
    EXPECT_EQ(reachable.size(), 2u);
    EXPECT_TRUE(reachable.count("c") > 0);
    EXPECT_TRUE(m.reachable_from("c").empty());
}

TEST(SystemModel, FindPaths) {
    auto m = chain3();
    auto paths = m.find_paths("a", "c");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], (std::vector<ComponentId>{"a", "b", "c"}));
    EXPECT_TRUE(m.find_paths("c", "a").empty());
    // Trivial self-path.
    auto self = m.find_paths("a", "a");
    ASSERT_EQ(self.size(), 1u);
    EXPECT_EQ(self[0].size(), 1u);
}

TEST(SystemModel, FindPathsMultipleRoutes) {
    SystemModel m;
    for (const char* id : {"s", "x", "y", "t"}) ASSERT_TRUE(m.add_component(comp(id)).ok());
    ASSERT_TRUE(m.add_relation({"s", "x", RelationType::SignalFlow, ""}).ok());
    ASSERT_TRUE(m.add_relation({"s", "y", RelationType::SignalFlow, ""}).ok());
    ASSERT_TRUE(m.add_relation({"x", "t", RelationType::SignalFlow, ""}).ok());
    ASSERT_TRUE(m.add_relation({"y", "t", RelationType::SignalFlow, ""}).ok());
    EXPECT_EQ(m.find_paths("s", "t").size(), 2u);
    EXPECT_TRUE(m.find_paths("s", "t", 2).empty());  // too short
}

TEST(SystemModel, CyclesDoNotLoopForever) {
    SystemModel m;
    ASSERT_TRUE(m.add_component(comp("a")).ok());
    ASSERT_TRUE(m.add_component(comp("b")).ok());
    ASSERT_TRUE(m.add_relation({"a", "b", RelationType::SignalFlow, ""}).ok());
    ASSERT_TRUE(m.add_relation({"b", "a", RelationType::SignalFlow, ""}).ok());
    EXPECT_EQ(m.reachable_from("a").size(), 2u);  // includes a itself via cycle
    EXPECT_EQ(m.find_paths("a", "b").size(), 1u);
}

TEST(SystemModel, MergeUnions) {
    auto m1 = chain3();
    SystemModel m2;
    ASSERT_TRUE(m2.add_component(comp("c")).ok());
    ASSERT_TRUE(m2.add_component(comp("d")).ok());
    ASSERT_TRUE(m2.add_relation({"c", "d", RelationType::SignalFlow, ""}).ok());
    ASSERT_TRUE(m1.merge(m2).ok());
    EXPECT_EQ(m1.component_count(), 4u);
    EXPECT_TRUE(m1.reachable_from("a").count("d") > 0);
}

TEST(SystemModel, MergeConflictRejected) {
    auto m1 = chain3();
    SystemModel m2;
    Component conflicting = comp("a", ElementType::Sensor);  // different type
    ASSERT_TRUE(m2.add_component(conflicting).ok());
    EXPECT_FALSE(m1.merge(m2).ok());
}

TEST(SystemModel, MergeDeduplicatesRelations) {
    auto m1 = chain3();
    auto m2 = chain3();
    ASSERT_TRUE(m1.merge(m2).ok());
    EXPECT_EQ(m1.relation_count(), 2u);
}

TEST(SystemModel, BehaviorAttachment) {
    auto m = chain3();
    ASSERT_TRUE(m.add_behavior("a", "rule1.").ok());
    ASSERT_TRUE(m.add_behavior("a", "rule2.").ok());
    EXPECT_EQ(m.behaviors("a").size(), 2u);
    EXPECT_TRUE(m.behaviors("b").empty());
    EXPECT_FALSE(m.add_behavior("ghost", "x.").ok());
}

TEST(SystemModel, RefinementRewiresPropagation) {
    auto m = chain3();
    RefinementSpec spec;
    spec.parent = "b";
    spec.parts = {comp("b1"), comp("b2")};
    spec.internal_relations = {{"b1", "b2", RelationType::SignalFlow, ""}};
    spec.entry = "b1";
    spec.exit = "b2";
    ASSERT_TRUE(m.refine(spec).ok());

    EXPECT_TRUE(m.is_refined("b"));
    EXPECT_TRUE(m.propagation_successors("b").empty());
    // a now feeds b1; b2 feeds c.
    EXPECT_EQ(m.propagation_successors("a"), std::vector<ComponentId>{"b1"});
    auto reachable = m.reachable_from("a");
    EXPECT_TRUE(reachable.count("c") > 0);
    EXPECT_EQ(m.parts_of("b").size(), 2u);
}

TEST(SystemModel, RefinementValidation) {
    auto m = chain3();
    RefinementSpec bad;
    bad.parent = "ghost";
    bad.parts = {comp("p")};
    bad.entry = "p";
    bad.exit = "p";
    EXPECT_FALSE(m.refine(bad).ok());

    RefinementSpec no_entry;
    no_entry.parent = "b";
    no_entry.parts = {comp("p")};
    no_entry.entry = "wrong";
    no_entry.exit = "p";
    EXPECT_FALSE(m.refine(no_entry).ok());

    RefinementSpec good;
    good.parent = "b";
    good.parts = {comp("p")};
    good.entry = "p";
    good.exit = "p";
    ASSERT_TRUE(m.refine(good).ok());
    EXPECT_FALSE(m.refine(good).ok());  // already refined
}

TEST(SystemModel, Validate) {
    auto m = chain3();
    EXPECT_TRUE(m.validate().ok());
}

}  // namespace
}  // namespace cprisk::model
