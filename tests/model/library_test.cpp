// Component library: registration, instantiation, the standard CPS set.
#include <gtest/gtest.h>

#include "model/component_library.hpp"

namespace cprisk::model {
namespace {

TEST(Library, StandardCpsContents) {
    auto library = ComponentLibrary::standard_cps();
    for (const char* name :
         {"water_tank", "valve_actuator", "valve_controller", "level_sensor",
          "plant_controller", "hmi", "engineering_workstation", "office_network",
          "control_network", "email_client", "web_browser", "plc"}) {
        EXPECT_TRUE(library.has(name)) << name;
    }
    EXPECT_GE(library.size(), 12u);
}

TEST(Library, InstantiateStampsComponent) {
    auto library = ComponentLibrary::standard_cps();
    SystemModel model;
    ASSERT_TRUE(library.instantiate("valve_actuator", "v1", "Valve #1", model).ok());
    const Component& v1 = model.component("v1");
    EXPECT_EQ(v1.name, "Valve #1");
    EXPECT_EQ(v1.type, ElementType::Actuator);
    EXPECT_TRUE(v1.has_fault_mode("stuck_at_open"));
    EXPECT_TRUE(v1.has_fault_mode("stuck_at_closed"));
    EXPECT_EQ(v1.properties.at("template"), "valve_actuator");
}

TEST(Library, UnknownTemplateFails) {
    auto library = ComponentLibrary::standard_cps();
    SystemModel model;
    EXPECT_FALSE(library.instantiate("warp_core", "w", "W", model).ok());
    EXPECT_FALSE(library.get("warp_core").ok());
}

TEST(Library, DuplicateInstanceFails) {
    auto library = ComponentLibrary::standard_cps();
    SystemModel model;
    ASSERT_TRUE(library.instantiate("hmi", "h", "HMI", model).ok());
    EXPECT_FALSE(library.instantiate("hmi", "h", "HMI again", model).ok());
}

TEST(Library, SelfPlaceholderSubstitution) {
    ComponentLibrary library;
    ComponentTemplate tmpl;
    tmpl.type_name = "widget";
    tmpl.element_type = ElementType::Device;
    tmpl.behavior_fragments = {"state($self, ok)."};
    library.register_template(tmpl);

    SystemModel model;
    ASSERT_TRUE(library.instantiate("widget", "w42", "Widget", model).ok());
    ASSERT_EQ(model.behaviors("w42").size(), 1u);
    EXPECT_EQ(model.behaviors("w42")[0], "state(w42, ok).");
}

TEST(Library, RegisterReplaces) {
    ComponentLibrary library;
    ComponentTemplate tmpl;
    tmpl.type_name = "x";
    tmpl.default_asset_value = qual::Level::Low;
    library.register_template(tmpl);
    tmpl.default_asset_value = qual::Level::VeryHigh;
    library.register_template(tmpl);
    EXPECT_EQ(library.size(), 1u);
    EXPECT_EQ(library.get("x").value().default_asset_value, qual::Level::VeryHigh);
}

TEST(Library, FaultModeLikelihoodsAreCalibrated) {
    // Property: compromise-class faults on IT nodes are more likely than
    // spontaneous physical stuck-at faults (cyber attack surface dominates).
    auto library = ComponentLibrary::standard_cps();
    const auto workstation = library.get("engineering_workstation").value();
    const auto valve = library.get("valve_actuator").value();
    ASSERT_FALSE(workstation.fault_modes.empty());
    ASSERT_FALSE(valve.fault_modes.empty());
    EXPECT_GT(workstation.fault_modes[0].likelihood, valve.fault_modes[0].likelihood);
}

}  // namespace
}  // namespace cprisk::model
