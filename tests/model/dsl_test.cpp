// Model DSL: parsing, error reporting, serialize/parse round-trip.
#include <gtest/gtest.h>

#include "model/dsl.hpp"

namespace cprisk::model {
namespace {

constexpr const char* kSample = R"(
# a small control loop
component sensor sensor name="Level Sensor" asset=L
component ctrl controller exposure=internal asset=H
component pump actuator

fault sensor no_reading omission severity=M likelihood=L
fault pump stuck_at_open stuck_at forced=open severity=H likelihood=VL

relation sensor signal_flow ctrl label="reading"
relation ctrl triggering pump

behavior ctrl <<<
#program always.
alarm :- error(ctrl).
>>>
)";

TEST(Dsl, ParseSample) {
    auto model = parse_model(kSample);
    ASSERT_TRUE(model.ok()) << model.error();
    const SystemModel& m = model.value();
    EXPECT_EQ(m.component_count(), 3u);
    EXPECT_EQ(m.relation_count(), 2u);

    const Component& sensor = m.component("sensor");
    EXPECT_EQ(sensor.name, "Level Sensor");
    EXPECT_EQ(sensor.type, ElementType::Sensor);
    EXPECT_EQ(sensor.asset_value, qual::Level::Low);
    ASSERT_EQ(sensor.fault_modes.size(), 1u);
    EXPECT_EQ(sensor.fault_modes[0].effect, FaultEffect::Omission);

    const Component& ctrl = m.component("ctrl");
    EXPECT_EQ(ctrl.exposure, Exposure::Internal);
    ASSERT_EQ(m.behaviors("ctrl").size(), 1u);
    EXPECT_NE(m.behaviors("ctrl")[0].find("alarm :- error(ctrl)."), std::string::npos);

    const Component& pump = m.component("pump");
    ASSERT_EQ(pump.fault_modes.size(), 1u);
    EXPECT_EQ(pump.fault_modes[0].forced_value, "open");
    EXPECT_EQ(pump.fault_modes[0].likelihood, qual::Level::VeryLow);
}

TEST(Dsl, RelationLabel) {
    auto model = parse_model(kSample);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model.value().relations()[0].label, "reading");
    EXPECT_EQ(model.value().relations()[0].type, RelationType::SignalFlow);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
    auto bad_type = parse_model("component x flux_capacitor\n");
    ASSERT_FALSE(bad_type.ok());
    EXPECT_NE(bad_type.error().find("line 1"), std::string::npos);

    auto bad_keyword = parse_model("component x node\nfrobnicate y\n");
    ASSERT_FALSE(bad_keyword.ok());
    EXPECT_NE(bad_keyword.error().find("line 2"), std::string::npos);
}

TEST(Dsl, UnknownComponentInFault) {
    EXPECT_FALSE(parse_model("fault ghost f omission\n").ok());
}

TEST(Dsl, DanglingRelationRejected) {
    EXPECT_FALSE(parse_model("component a node\nrelation a signal_flow ghost\n").ok());
}

TEST(Dsl, UnterminatedBehaviorRejected) {
    auto result = parse_model("component a node\nbehavior a <<<\nrule.\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().find("not closed"), std::string::npos);
}

TEST(Dsl, UnterminatedStringRejected) {
    EXPECT_FALSE(parse_model("component a node name=\"oops\n").ok());
}

TEST(Dsl, DuplicateComponentRejected) {
    EXPECT_FALSE(parse_model("component a node\ncomponent a node\n").ok());
}

TEST(Dsl, RoundTrip) {
    auto first = parse_model(kSample);
    ASSERT_TRUE(first.ok()) << first.error();
    const std::string serialized = serialize_model(first.value());
    auto second = parse_model(serialized);
    ASSERT_TRUE(second.ok()) << second.error() << "\nserialized:\n" << serialized;

    // Round-trip fixed point: serializing again yields the same text.
    EXPECT_EQ(serialized, serialize_model(second.value()));
    EXPECT_EQ(second.value().component_count(), first.value().component_count());
    EXPECT_EQ(second.value().relation_count(), first.value().relation_count());
    EXPECT_EQ(second.value().behaviors("ctrl"), first.value().behaviors("ctrl"));
}

TEST(Dsl, PriorOptionsParseAndRoundTripVerbatim) {
    const char* text =
        "component pump actuator\n"
        "fault pump stuck stuck_at prior=3/7\n"
        "fault pump leak corruption prior=logodds:1.5\n";
    auto model = parse_model(text);
    ASSERT_TRUE(model.ok()) << model.error();
    const auto& modes = model.value().component("pump").fault_modes;
    ASSERT_EQ(modes.size(), 2u);
    EXPECT_TRUE(modes[0].prior.present);
    EXPECT_DOUBLE_EQ(modes[0].prior.alpha, 3.0);
    EXPECT_DOUBLE_EQ(modes[0].prior.beta, 7.0);
    EXPECT_TRUE(modes[1].prior.present);

    // The spec is stored verbatim, so serialization round-trips byte-exactly
    // (logodds is NOT rewritten to pseudo-counts).
    const std::string serialized = serialize_model(model.value());
    EXPECT_NE(serialized.find("prior=3/7"), std::string::npos);
    EXPECT_NE(serialized.find("prior=logodds:1.5"), std::string::npos);
    auto reparsed = parse_model(serialized);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error();
    EXPECT_EQ(serialized, serialize_model(reparsed.value()));
}

TEST(Dsl, MalformedPriorDegradesToALikelihoodDefaultWithAWarning) {
    const char* text =
        "component pump actuator\n"
        "fault pump stuck stuck_at likelihood=H prior=banana\n";
    DiagnosticSink sink;
    const SystemModel model = parse_model_lenient(text, sink);
    // Lenient: the fault survives, only its prior is dropped.
    ASSERT_EQ(model.component("pump").fault_modes.size(), 1u);
    EXPECT_FALSE(model.component("pump").fault_modes[0].prior.present);
    EXPECT_EQ(model.component("pump").fault_modes[0].likelihood, qual::Level::High);
    ASSERT_EQ(sink.diagnostics().size(), 1u);
    EXPECT_EQ(sink.diagnostics()[0].severity, Severity::Warning);
    EXPECT_EQ(sink.diagnostics()[0].rule, "model-bad-prior");

    // Degenerate numeric specs are malformed too: zero or negative
    // pseudo-counts never produce a prior.
    DiagnosticSink zeros;
    parse_model_lenient("component p node\nfault p f omission prior=0/5\n", zeros);
    EXPECT_TRUE(zeros.has_warnings());
}

TEST(Dsl, TypeParsersRoundTrip) {
    for (int i = 0; i <= static_cast<int>(ElementType::Material); ++i) {
        const auto type = static_cast<ElementType>(i);
        EXPECT_EQ(parse_element_type(to_string(type)).value(), type);
    }
    for (int i = 0; i <= static_cast<int>(RelationType::Association); ++i) {
        const auto type = static_cast<RelationType>(i);
        EXPECT_EQ(parse_relation_type(to_string(type)).value(), type);
    }
    for (int i = 0; i <= static_cast<int>(FaultEffect::Compromise); ++i) {
        const auto effect = static_cast<FaultEffect>(i);
        EXPECT_EQ(parse_fault_effect(to_string(effect)).value(), effect);
    }
    EXPECT_FALSE(parse_element_type("nonsense").ok());
}

TEST(Dsl, ParsedModelIsAnalyzable) {
    // A DSL model feeds straight into to_asp (integration touchpoint).
    auto model = parse_model(kSample);
    ASSERT_TRUE(model.ok());
    EXPECT_TRUE(model.value().validate().ok());
}

}  // namespace
}  // namespace cprisk::model
