// Model-to-ASP translation: fact emission and behaviour inclusion.
#include <gtest/gtest.h>

#include "asp/asp.hpp"
#include "model/aspects.hpp"
#include "model/to_asp.hpp"

namespace cprisk::model {
namespace {

SystemModel small_model() {
    SystemModel m;
    Component sensor;
    sensor.id = "s";
    sensor.name = "Sensor";
    sensor.type = ElementType::Sensor;
    sensor.exposure = Exposure::None;
    sensor.asset_value = qual::Level::Low;
    sensor.fault_modes = {FaultMode{"no_reading", FaultEffect::Omission, "", qual::Level::Medium,
                                    qual::Level::Low}};
    EXPECT_TRUE(m.add_component(sensor).ok());

    Component controller;
    controller.id = "c";
    controller.name = "Controller";
    controller.type = ElementType::Controller;
    controller.exposure = Exposure::Internal;
    controller.asset_value = qual::Level::High;
    EXPECT_TRUE(m.add_component(controller).ok());

    EXPECT_TRUE(m.add_relation({"s", "c", RelationType::SignalFlow, "measurement"}).ok());
    return m;
}

/// Solves the translated program and returns the single answer set.
asp::AnswerSet solve_facts(const SystemModel& m, ToAspOptions options = {}) {
    auto program = to_asp(m, options);
    EXPECT_TRUE(program.ok()) << program.error();
    auto solved = asp::solve_program(program.value());
    EXPECT_TRUE(solved.ok()) << solved.error();
    EXPECT_EQ(solved.value().models.size(), 1u);
    return solved.value().models.empty() ? asp::AnswerSet{} : solved.value().models[0];
}

bool has(const asp::AnswerSet& answer, std::string_view atom) {
    return answer.contains(asp::parse_atom(atom).value());
}

TEST(ToAsp, ComponentFacts) {
    auto answer = solve_facts(small_model());
    EXPECT_TRUE(has(answer, "component(s)"));
    EXPECT_TRUE(has(answer, "component_type(s, sensor)"));
    EXPECT_TRUE(has(answer, "component_layer(s, physical)"));
    EXPECT_TRUE(has(answer, "ot_component(s)"));
    EXPECT_TRUE(has(answer, "ot_component(c)")) << "controllers live on the OT side";
    EXPECT_FALSE(has(answer, "it_component(c)"));
    EXPECT_TRUE(has(answer, "exposure(c, internal)"));
    EXPECT_TRUE(has(answer, "asset_value(c, 3)"));
}

TEST(ToAsp, FaultFacts) {
    auto answer = solve_facts(small_model());
    EXPECT_TRUE(has(answer, "fault(s, no_reading)"));
    EXPECT_TRUE(has(answer, "fault_effect(s, no_reading, omission)"));
    EXPECT_TRUE(has(answer, "fault_severity(s, no_reading, 2)"));
    EXPECT_TRUE(has(answer, "fault_likelihood(s, no_reading, 1)"));
}

TEST(ToAsp, FaultFactsCanBeExcluded) {
    ToAspOptions options;
    options.include_fault_facts = false;
    auto answer = solve_facts(small_model(), options);
    EXPECT_FALSE(has(answer, "fault(s, no_reading)"));
}

TEST(ToAsp, RelationAndConnectedFacts) {
    auto answer = solve_facts(small_model());
    EXPECT_TRUE(has(answer, "relation(s, c, signal_flow)"));
    EXPECT_TRUE(has(answer, "connected(s, c)"));
    EXPECT_FALSE(has(answer, "connected(c, s)"));  // signal flow is directional
}

TEST(ToAsp, QuantityFlowEmitsBothDirections) {
    auto m = small_model();
    Component tank;
    tank.id = "t";
    tank.name = "Tank";
    tank.type = ElementType::Equipment;
    ASSERT_TRUE(m.add_component(tank).ok());
    ASSERT_TRUE(m.add_relation({"t", "s", RelationType::QuantityFlow, "water"}).ok());
    auto answer = solve_facts(m);
    EXPECT_TRUE(has(answer, "connected(t, s)"));
    EXPECT_TRUE(has(answer, "connected(s, t)"));
}

TEST(ToAsp, RefinedCompositeExcludedFromConnected) {
    auto m = small_model();
    RefinementSpec spec;
    Component part;
    part.id = "c1";
    part.name = "part";
    part.type = ElementType::Controller;
    spec.parent = "c";
    spec.parts = {part};
    spec.entry = "c1";
    spec.exit = "c1";
    ASSERT_TRUE(m.refine(spec).ok());
    auto answer = solve_facts(m);
    EXPECT_TRUE(has(answer, "refined(c)"));
    EXPECT_TRUE(has(answer, "part_of(c, c1)"));
    EXPECT_TRUE(has(answer, "connected(s, c1)"));  // rewired to entry
    EXPECT_FALSE(has(answer, "connected(s, c)"));
}

TEST(ToAsp, BehaviorsAreParsedAndIncluded) {
    auto m = small_model();
    ASSERT_TRUE(m.add_behavior("s", "calibrated(s).").ok());
    auto answer = solve_facts(m);
    EXPECT_TRUE(has(answer, "calibrated(s)"));
}

TEST(ToAsp, BadBehaviorFails) {
    auto m = small_model();
    ASSERT_TRUE(m.add_behavior("s", "this is not asp ((").ok());
    EXPECT_FALSE(to_asp(m).ok());
}

TEST(ToAsp, BehaviorsCanBeExcluded) {
    auto m = small_model();
    ASSERT_TRUE(m.add_behavior("s", "calibrated(s).").ok());
    ToAspOptions options;
    options.include_behaviors = false;
    auto answer = solve_facts(m, options);
    EXPECT_FALSE(has(answer, "calibrated(s)"));
}

TEST(Aspects, MergeProducesValidatedModel) {
    AspectModel architecture{Aspect::Architecture, small_model()};
    AspectModel deployment{Aspect::Deployment, {}};
    Component app;
    app.id = "scada";
    app.name = "SCADA";
    app.type = ElementType::ApplicationComponent;
    ASSERT_TRUE(deployment.model.add_component(app).ok());
    Component node = small_model().component("c");
    ASSERT_TRUE(deployment.model.add_component(node).ok());
    ASSERT_TRUE(deployment.model.add_relation({"scada", "c", RelationType::Assignment, ""}).ok());

    auto merged = merge_aspects({architecture, deployment});
    ASSERT_TRUE(merged.ok()) << merged.error();
    EXPECT_EQ(merged.value().component_count(), 3u);
    EXPECT_TRUE(merged.value().has_component("scada"));
}

TEST(Aspects, ConflictReported) {
    AspectModel a1{Aspect::Architecture, small_model()};
    AspectModel a2{Aspect::Dynamics, {}};
    Component conflicting;
    conflicting.id = "s";
    conflicting.name = "Different Sensor";
    conflicting.type = ElementType::Node;  // type conflict
    ASSERT_TRUE(a2.model.add_component(conflicting).ok());
    auto merged = merge_aspects({a1, a2});
    EXPECT_FALSE(merged.ok());
    EXPECT_NE(merged.error().find("dynamics"), std::string::npos);
}

}  // namespace
}  // namespace cprisk::model
