// Element/relation taxonomy invariants.
#include <gtest/gtest.h>

#include "model/element.hpp"

namespace cprisk::model {
namespace {

TEST(Element, LayerAssignment) {
    EXPECT_EQ(layer_of(ElementType::Actor), Layer::Business);
    EXPECT_EQ(layer_of(ElementType::ApplicationComponent), Layer::Application);
    EXPECT_EQ(layer_of(ElementType::Node), Layer::Technology);
    EXPECT_EQ(layer_of(ElementType::Equipment), Layer::Physical);
    EXPECT_EQ(layer_of(ElementType::Sensor), Layer::Physical);
}

TEST(Element, OtClassification) {
    EXPECT_TRUE(is_ot(ElementType::Actuator));
    EXPECT_TRUE(is_ot(ElementType::Controller));
    EXPECT_TRUE(is_ot(ElementType::Equipment));
    EXPECT_FALSE(is_ot(ElementType::Node));
    EXPECT_FALSE(is_ot(ElementType::ApplicationComponent));
    EXPECT_FALSE(is_ot(ElementType::HumanMachineInterface));
}

TEST(Element, OtImpliesPhysicalLayer) {
    for (int i = 0; i <= static_cast<int>(ElementType::Material); ++i) {
        const auto type = static_cast<ElementType>(i);
        if (is_ot(type)) {
            EXPECT_EQ(layer_of(type), Layer::Physical) << to_string(type);
        }
    }
}

TEST(Relation, PropagationFlags) {
    EXPECT_TRUE(propagates(RelationType::SignalFlow));
    EXPECT_TRUE(propagates(RelationType::QuantityFlow));
    EXPECT_TRUE(propagates(RelationType::Serving));
    EXPECT_FALSE(propagates(RelationType::Composition));
    EXPECT_FALSE(propagates(RelationType::Association));
}

TEST(Relation, OnlyQuantityFlowBidirectional) {
    for (int i = 0; i <= static_cast<int>(RelationType::Association); ++i) {
        const auto type = static_cast<RelationType>(i);
        EXPECT_EQ(is_bidirectional(type), type == RelationType::QuantityFlow) << to_string(type);
    }
}

TEST(Element, NamesAreValidIdentifiers) {
    // Element/relation names feed ASP constants; they must be lowercase.
    for (int i = 0; i <= static_cast<int>(ElementType::Material); ++i) {
        const auto name = to_string(static_cast<ElementType>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(name[0]))) << name;
    }
    for (int i = 0; i <= static_cast<int>(RelationType::Association); ++i) {
        const auto name = to_string(static_cast<RelationType>(i));
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(name[0]))) << name;
    }
}

}  // namespace
}  // namespace cprisk::model
