// Retry observability contract (common/retry.hpp, docs/serve.md): a
// transient injected solver fault repaired by one retry leaves the same
// counters — epa.retry.attempts == 1, no exhaustion — and the same verdicts
// at any job count, because the armed fault fires exactly once globally no
// matter which lane draws it. Exhausted retries are counted separately, and
// the backoff schedule itself is deterministic.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/retry.hpp"
#include "epa/epa.hpp"
#include "epa/requirement.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "security/scenario.hpp"

namespace cprisk {
namespace {

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

struct SweepResult {
    std::string metrics_json;
    std::vector<epa::ScenarioVerdict> verdicts;
};

/// Runs an 8-scenario sweep on the DPLL path (prefilter off, so the armed
/// asp.solver.solve seam is actually consulted) with the given lane count
/// and retry budget.
SweepResult faulted_sweep(std::size_t jobs, std::size_t retries) {
    const int n = 4;
    auto m = chain_model(n);

    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.jobs = jobs;
    ctx.metrics = &metrics;
    ctx.retry.max_retries = retries;
    ctx.retry.base_backoff = std::chrono::milliseconds(1);  // keep the test fast
    ctx.retry.max_backoff = std::chrono::milliseconds(2);

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.static_prefilter = false;
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c3")}, {}, options);
    EXPECT_TRUE(analysis.ok()) << analysis.error();

    std::vector<security::AttackScenario> list;
    for (int i = 0; i < 8; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % n), "fail"}};
        s.likelihood = qual::Level::Low;
        list.push_back(std::move(s));
    }
    auto verdicts =
        analysis.value().evaluate_all(security::ScenarioSpace(std::move(list)), {}).value();
    EXPECT_EQ(verdicts.size(), 8u);
    return {metrics.export_json(), std::move(verdicts)};
}

std::string counters_section(const std::string& json) {
    const std::size_t from = json.find("\"counters\":");
    const std::size_t to = json.find("\"gauges\":");
    EXPECT_NE(from, std::string::npos);
    return json.substr(from, to - from);
}

std::string verdict_summary(const std::vector<epa::ScenarioVerdict>& verdicts) {
    std::string out;
    for (const auto& v : verdicts) {
        out += v.scenario_id + "=" + std::to_string(static_cast<int>(v.status)) + ";";
    }
    return out;
}

class RetryMetricsTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(RetryMetricsTest, RepairedTransientFaultIsJobsInvariant) {
    // The armed fault fires on exactly one solve call, whichever lane draws
    // it; one retry repairs it. Counters and verdicts must not depend on the
    // lane count.
    fault::arm("asp.solver.solve", 1);
    const SweepResult sequential = faulted_sweep(1, 1);
    EXPECT_NE(sequential.metrics_json.find("\"epa.retry.attempts\":1"), std::string::npos)
        << sequential.metrics_json;
    EXPECT_EQ(sequential.metrics_json.find("\"epa.retry.exhausted\""), std::string::npos);

    fault::reset();
    fault::arm("asp.solver.solve", 1);
    const SweepResult parallel = faulted_sweep(4, 1);

    EXPECT_EQ(counters_section(sequential.metrics_json),
              counters_section(parallel.metrics_json));
    EXPECT_EQ(verdict_summary(sequential.verdicts), verdict_summary(parallel.verdicts));

    // And both match a run that never saw the fault at all.
    fault::reset();
    const SweepResult clean = faulted_sweep(1, 1);
    EXPECT_EQ(verdict_summary(clean.verdicts), verdict_summary(sequential.verdicts));
    for (const auto& v : clean.verdicts) {
        EXPECT_NE(v.status, epa::VerdictStatus::Undetermined) << v.scenario_id;
    }
}

TEST_F(RetryMetricsTest, DisabledRetryLeavesTheFaultAsSolverError) {
    fault::arm("asp.solver.solve", 1);
    const SweepResult result = faulted_sweep(1, 0);
    EXPECT_EQ(result.metrics_json.find("\"epa.retry.attempts\""), std::string::npos);
    std::size_t solver_errors = 0;
    for (const auto& v : result.verdicts) {
        if (v.status == epa::VerdictStatus::Undetermined &&
            v.undetermined_reason == epa::UndeterminedReason::SolverError) {
            ++solver_errors;
        }
    }
    EXPECT_EQ(solver_errors, 1u);
}

TEST_F(RetryMetricsTest, ExhaustedRetriesAreCounted) {
    // The registry's trigger is one-shot, so a persistent fault is staged by
    // re-arming the site during the victim's backoff sleep: the generous
    // base_backoff guarantees the helper thread lands its re-arm before the
    // retry's solve call.
    const int n = 4;
    auto m = chain_model(n);

    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.jobs = 1;
    ctx.metrics = &metrics;
    ctx.retry.max_retries = 1;
    ctx.retry.base_backoff = std::chrono::milliseconds(200);
    ctx.retry.max_backoff = std::chrono::milliseconds(200);

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.static_prefilter = false;
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c3")}, {}, options);
    ASSERT_TRUE(analysis.ok()) << analysis.error();

    security::AttackScenario victim;
    victim.id = "victim";
    victim.mutations = {{"c0", "fail"}};
    victim.likelihood = qual::Level::Low;

    fault::arm("asp.solver.solve", 1);
    std::thread rearm([] {
        while (fault::hits("asp.solver.solve") < 1) std::this_thread::yield();
        fault::arm("asp.solver.solve", 1);  // re-trip the retry attempt too
    });
    auto verdicts =
        analysis.value().evaluate_all(security::ScenarioSpace({victim}), {}).value();
    rearm.join();

    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].status, epa::VerdictStatus::Undetermined);
    EXPECT_EQ(verdicts[0].undetermined_reason, epa::UndeterminedReason::SolverError);
    const std::string exported = metrics.export_json();
    EXPECT_NE(exported.find("\"epa.retry.attempts\":1"), std::string::npos) << exported;
    EXPECT_NE(exported.find("\"epa.retry.exhausted\":1"), std::string::npos) << exported;
}

TEST_F(RetryMetricsTest, BackoffScheduleIsDeterministicJitteredAndClamped) {
    RetryPolicy policy;
    policy.max_retries = 3;
    policy.base_backoff = std::chrono::milliseconds(10);
    policy.max_backoff = std::chrono::milliseconds(35);
    const auto first = policy.backoff(0, 42);
    const auto second = policy.backoff(1, 42);
    const auto third = policy.backoff(2, 42);
    // Jittered into [ceil(step/2), step], exponentially growing, clamped.
    EXPECT_GE(first.count(), 5);
    EXPECT_LE(first.count(), 10);
    EXPECT_GE(second.count(), 10);
    EXPECT_LE(second.count(), 20);
    EXPECT_GE(third.count(), 18);
    EXPECT_LE(third.count(), 35);
    // Deterministic: same (seed, salt, attempt) => same delay, every time.
    EXPECT_EQ(policy.backoff(1, 42), policy.backoff(1, 42));
    EXPECT_EQ(policy.backoff(2, 7), policy.backoff(2, 7));
}

}  // namespace
}  // namespace cprisk
