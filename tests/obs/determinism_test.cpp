// Cross-jobs observability determinism (docs/observability.md): the same
// sweep run at --jobs 1 and --jobs 8 must produce
//
//  - trace exports that are byte-identical once the wall-clock fields
//    (ts/dur/tid) are masked, and
//  - metrics exports whose counters and histograms sections are
//    byte-identical (gauges are schedule-dependent by contract and are
//    excluded).
#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "epa/requirement.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "security/scenario.hpp"

namespace cprisk {
namespace {

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

struct ObservedSweep {
    std::string trace_json;
    std::string metrics_json;
};

/// Runs a 12-scenario sweep on chain(5) with the given lane count, recording
/// through a fresh trace sink + metrics registry.
ObservedSweep observed_sweep(std::size_t jobs) {
    const int n = 5;
    auto m = chain_model(n);

    obs::ChromeTraceSink trace;
    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.jobs = jobs;
    ctx.trace = &trace;
    ctx.metrics = &metrics;

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c4")}, {}, options);

    std::vector<security::AttackScenario> list;
    for (int i = 0; i < 12; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % n), "fail"}};
        s.likelihood = qual::Level::Low;
        list.push_back(std::move(s));
    }
    auto verdicts =
        analysis.value().evaluate_all(security::ScenarioSpace(std::move(list)), {}).value();
    EXPECT_EQ(verdicts.size(), 12u);

    return {trace.export_json(), metrics.export_json()};
}

std::string mask_wall_clock(const std::string& json) {
    std::string out = std::regex_replace(json, std::regex("\"ts\":-?[0-9]+"), "\"ts\":0");
    out = std::regex_replace(out, std::regex("\"dur\":-?[0-9]+"), "\"dur\":0");
    return std::regex_replace(out, std::regex("\"tid\":[0-9]+"), "\"tid\":0");
}

/// Extracts one top-level section ("counters", "histograms") from a metrics
/// export; the sections appear in a fixed order, so substring splicing is
/// exact.
std::string section(const std::string& json, const std::string& name,
                    const std::string& next) {
    const std::size_t from = json.find("\"" + name + "\":");
    const std::size_t to = next.empty() ? json.size() : json.find("\"" + next + "\":");
    EXPECT_NE(from, std::string::npos);
    EXPECT_NE(to, std::string::npos);
    return json.substr(from, to - from);
}

TEST(ObsDeterminismTest, TraceExportIsJobsInvariantModuloWallClock) {
    const ObservedSweep sequential = observed_sweep(1);
    const ObservedSweep parallel = observed_sweep(8);
    EXPECT_EQ(mask_wall_clock(sequential.trace_json), mask_wall_clock(parallel.trace_json));
}

TEST(ObsDeterminismTest, CountersAndHistogramsAreJobsInvariant) {
    const ObservedSweep sequential = observed_sweep(1);
    const ObservedSweep parallel = observed_sweep(8);
    EXPECT_EQ(section(sequential.metrics_json, "counters", "gauges"),
              section(parallel.metrics_json, "counters", "gauges"));
    EXPECT_EQ(section(sequential.metrics_json, "histograms", ""),
              section(parallel.metrics_json, "histograms", ""));
}

TEST(ObsDeterminismTest, RepeatedSequentialRunsAreByteIdentical) {
    const ObservedSweep first = observed_sweep(1);
    const ObservedSweep second = observed_sweep(1);
    EXPECT_EQ(mask_wall_clock(first.trace_json), mask_wall_clock(second.trace_json));
    EXPECT_EQ(section(first.metrics_json, "counters", "gauges"),
              section(second.metrics_json, "counters", "gauges"));
}

TEST(ObsDeterminismTest, SweepRecordsTheExpectedInstruments) {
    const ObservedSweep run = observed_sweep(2);
    // Spot-check the instrument taxonomy (docs/observability.md).
    EXPECT_NE(run.trace_json.find("\"name\":\"epa.evaluate\""), std::string::npos);
    EXPECT_NE(run.trace_json.find("\"name\":\"epa.absint_prefilter\""), std::string::npos);
    EXPECT_NE(run.metrics_json.find("\"epa.ground_cache.hits\":"), std::string::npos);
    // The static prefilter decides every scenario of this model, so the
    // solver counters are absent; the ground and absint instruments replace
    // them (docs/static-analysis.md).
    EXPECT_NE(run.metrics_json.find("\"asp.ground.calls\":"), std::string::npos);
    EXPECT_NE(run.metrics_json.find("\"epa.absint.atoms_decided\":"), std::string::npos);
    EXPECT_NE(run.metrics_json.find("\"epa.pool.lanes\":"), std::string::npos);
}

}  // namespace
}  // namespace cprisk
