// Tests for the hierarchical trace sink and Span RAII guard
// (docs/observability.md): null-sink inertness, scope inheritance,
// deterministic drain order, idempotent close(), and the Chrome
// trace-event JSON shape.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cprisk::obs {
namespace {

TEST(SpanTest, NullSinkPointerIsInert) {
    Span span(nullptr, "work", "solve");
    EXPECT_FALSE(span.active());
    span.arg("key", "value");  // no-ops, must not crash
    span.arg("n", 42LL);
    span.close();
}

TEST(SpanTest, BaseTraceSinkIsTheNullSink) {
    TraceSink null_sink;
    EXPECT_FALSE(null_sink.enabled());
    Span span(&null_sink, "work", "solve");
    EXPECT_FALSE(span.active());
}

TEST(SpanTest, RecordsOneEventOnDestruction) {
    ChromeTraceSink sink;
    EXPECT_TRUE(sink.enabled());
    {
        Span span(&sink, "asp.solve", "solve", "s1");
        EXPECT_TRUE(span.active());
        span.arg("decisions", 7LL);
        span.arg("verdict", "safe");
    }
    ASSERT_EQ(sink.event_count(), 1u);
    const std::vector<TraceEvent> events = sink.drain_ordered();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "asp.solve");
    EXPECT_EQ(events[0].category, "solve");
    EXPECT_EQ(events[0].scope, "s1");
    EXPECT_EQ(events[0].depth, 0);
    ASSERT_EQ(events[0].args.size(), 2u);
    EXPECT_EQ(events[0].args[0].first, "decisions");
    EXPECT_EQ(events[0].args[0].second, "7");
    EXPECT_EQ(events[0].args[1].second, "safe");
    EXPECT_GE(events[0].duration_us, 0);
}

TEST(SpanTest, NestedSpansInheritEnclosingScope) {
    ChromeTraceSink sink;
    {
        Span outer(&sink, "epa.evaluate", "scenario", "s7");
        {
            Span inner(&sink, "asp.ground", "ground");  // no explicit scope
            Span innermost(&sink, "asp.solve", "solve");
            EXPECT_TRUE(inner.active());
        }
    }
    const std::vector<TraceEvent> events = sink.drain_ordered();
    ASSERT_EQ(events.size(), 3u);
    // All three land in scope "s7"; recording order is close order.
    for (const TraceEvent& event : events) EXPECT_EQ(event.scope, "s7");
    EXPECT_EQ(events[0].name, "asp.solve");
    EXPECT_EQ(events[0].depth, 2);
    EXPECT_EQ(events[1].name, "asp.ground");
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_EQ(events[2].name, "epa.evaluate");
    EXPECT_EQ(events[2].depth, 0);
}

TEST(SpanTest, CloseIsIdempotentAndDisarmsDestructor) {
    ChromeTraceSink sink;
    {
        Span span(&sink, "phase", "pipeline");
        span.close();
        EXPECT_FALSE(span.active());
        span.close();                 // second close: no second event
        span.arg("late", "ignored");  // args after close are dropped
    }                                 // destructor: no third event
    EXPECT_EQ(sink.event_count(), 1u);
    const std::vector<TraceEvent> events = sink.drain_ordered();
    EXPECT_TRUE(events[0].args.empty());
}

TEST(ChromeTraceSinkTest, DrainOrdersGlobalScopeFirstThenScenarioIds) {
    ChromeTraceSink sink;
    { Span s(&sink, "scenario.b", "scenario", "b"); }
    { Span s(&sink, "assess.ground", "pipeline"); }  // global "" scope
    { Span s(&sink, "scenario.a", "scenario", "a"); }
    const std::vector<TraceEvent> events = sink.drain_ordered();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].scope, "");
    EXPECT_EQ(events[0].name, "assess.ground");
    EXPECT_EQ(events[1].scope, "a");
    EXPECT_EQ(events[2].scope, "b");
}

TEST(ChromeTraceSinkTest, ConcurrentRecordingKeepsPerScopeOrder) {
    ChromeTraceSink sink;
    auto worker = [&sink](const std::string& scope) {
        for (int i = 0; i < 16; ++i) {
            Span span(&sink, "step" + std::to_string(i), "solve", scope);
        }
    };
    std::thread a(worker, "sa");
    std::thread b(worker, "sb");
    a.join();
    b.join();
    const std::vector<TraceEvent> events = sink.drain_ordered();
    ASSERT_EQ(events.size(), 32u);
    // Scope "sa" block precedes "sb", each in its own recording order.
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(events[static_cast<std::size_t>(i)].scope, "sa");
        EXPECT_EQ(events[static_cast<std::size_t>(i)].name, "step" + std::to_string(i));
        EXPECT_EQ(events[static_cast<std::size_t>(16 + i)].scope, "sb");
        EXPECT_EQ(events[static_cast<std::size_t>(16 + i)].name,
                  "step" + std::to_string(i));
    }
}

// --- JSON schema -----------------------------------------------------------

TEST(ChromeTraceSinkTest, ExportMatchesChromeTraceEventSchema) {
    ChromeTraceSink sink;
    {
        Span span(&sink, "epa.evaluate", "scenario", "s1");
        span.arg("verdict", "hazard");
    }
    const std::string json = sink.export_json();
    EXPECT_NE(json.find("{\"schema_version\":2,\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // Every event is a complete-duration ("ph":"X") record with the
    // required chrome://tracing keys.
    for (const char* key :
         {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":", "\"pid\":",
          "\"tid\":", "\"args\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
    }
    EXPECT_NE(json.find("\"scope\":\"s1\""), std::string::npos);
    EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
}

/// Masks the wall-clock fields (ts/dur/tid) of a trace export — what the
/// cross-jobs determinism comparison ignores.
std::string mask_wall_clock(const std::string& json) {
    std::string out = std::regex_replace(json, std::regex("\"ts\":-?[0-9]+"), "\"ts\":0");
    out = std::regex_replace(out, std::regex("\"dur\":-?[0-9]+"), "\"dur\":0");
    return std::regex_replace(out, std::regex("\"tid\":[0-9]+"), "\"tid\":0");
}

TEST(ChromeTraceSinkTest, ExportGoldenModuloWallClock) {
    ChromeTraceSink sink;
    {
        Span span(&sink, "asp.solve", "solve", "s1");
        span.arg("models", 1LL);
    }
    const std::string expected =
        "{\"schema_version\":2,"
        "\"traceEvents\":[{\"name\":\"asp.solve\",\"cat\":\"solve\",\"ph\":\"X\","
        "\"ts\":0,\"dur\":0,\"pid\":0,\"tid\":0,\"args\":{\"scope\":\"s1\","
        "\"depth\":0,\"models\":\"1\"}}],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(mask_wall_clock(sink.export_json()), expected);
}

TEST(ChromeTraceSinkTest, WriteFileRoundTrips) {
    ChromeTraceSink sink;
    { Span span(&sink, "work", "solve", "s1"); }
    const std::string path = testing::TempDir() + "/trace_test_out.json";
    const Result<void> written = sink.write_file(path);
    ASSERT_TRUE(written.ok()) << written.error();
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), sink.export_json());
}

TEST(ChromeTraceSinkTest, WriteFileToBadPathFails) {
    ChromeTraceSink sink;
    const Result<void> written = sink.write_file("/no/such/dir/trace.json");
    EXPECT_FALSE(written.ok());
}

}  // namespace
}  // namespace cprisk::obs
