// Tests for the MetricsRegistry (docs/observability.md): counter/gauge/
// histogram semantics, null-tolerant helpers, concurrent updates, and the
// sorted byte-deterministic JSON export.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cprisk::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
    MetricsRegistry registry;
    registry.counter("epa.scenarios.safe").add();
    registry.counter("epa.scenarios.safe").add(4);
    EXPECT_EQ(registry.counter("epa.scenarios.safe").value(), 5u);
    EXPECT_EQ(registry.counter("epa.scenarios.hazard").value(), 0u);
}

TEST(MetricsTest, CounterHandleStaysStable) {
    MetricsRegistry registry;
    MetricsRegistry::Counter& handle = registry.counter("asp.solve.calls");
    registry.counter("zzz");  // later find-or-create must not invalidate
    handle.add(3);
    EXPECT_EQ(registry.counter("asp.solve.calls").value(), 3u);
}

TEST(MetricsTest, GaugeLastWriterWins) {
    MetricsRegistry registry;
    registry.set_gauge("epa.pool.lanes", 4);
    registry.set_gauge("epa.pool.lanes", 2);
    const std::string json = registry.export_json();
    EXPECT_NE(json.find("\"epa.pool.lanes\":2"), std::string::npos);
    EXPECT_EQ(json.find("\"epa.pool.lanes\":4"), std::string::npos);
}

TEST(MetricsTest, HistogramPowerOfTwoBuckets) {
    MetricsRegistry registry;
    MetricsRegistry::Histogram& h = registry.histogram("epa.solve.decisions");
    // bucket 0 counts {0, 1}; bucket i counts (2^(i-1), 2^i].
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(3);
    h.observe(4);
    h.observe(5);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 15u);
    EXPECT_EQ(h.bucket(0), 2u);  // 0, 1
    EXPECT_EQ(h.bucket(1), 1u);  // 2
    EXPECT_EQ(h.bucket(2), 2u);  // 3, 4
    EXPECT_EQ(h.bucket(3), 1u);  // 5
}

TEST(MetricsTest, HistogramLastBucketIsOpenEnded) {
    MetricsRegistry registry;
    MetricsRegistry::Histogram& h = registry.histogram("big");
    h.observe(std::uint64_t{1} << 40);  // beyond 2^23
    EXPECT_EQ(h.bucket(MetricsRegistry::Histogram::kBuckets - 1), 1u);
}

TEST(MetricsTest, NullTolerantHelpersAreNoOps) {
    add_counter(nullptr, "x");
    set_gauge(nullptr, "x", 1);
    observe(nullptr, "x", 1);

    MetricsRegistry registry;
    add_counter(&registry, "x", 2);
    set_gauge(&registry, "g", 7);
    observe(&registry, "h", 3);
    EXPECT_EQ(registry.counter("x").value(), 2u);
    EXPECT_EQ(registry.histogram("h").count(), 1u);
}

TEST(MetricsTest, ConcurrentCountingIsLossless) {
    MetricsRegistry registry;
    auto worker = [&registry]() {
        for (int i = 0; i < 1000; ++i) {
            add_counter(&registry, "shared");
            observe(&registry, "samples", static_cast<std::uint64_t>(i % 7));
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(registry.counter("shared").value(), 4000u);
    EXPECT_EQ(registry.histogram("samples").count(), 4000u);
}

// --- JSON schema -----------------------------------------------------------

TEST(MetricsTest, ExportGoldenByteExact) {
    // The export is fully deterministic given the recorded values: sections
    // in counters/gauges/histograms order, each sorted by instrument name,
    // histogram buckets sparse.
    MetricsRegistry registry;
    registry.counter("b.count").add(2);
    registry.counter("a.count").add(1);
    registry.set_gauge("z.gauge", -3);
    registry.histogram("h.dist").observe(0);
    registry.histogram("h.dist").observe(4);
    const std::string expected =
        "{\"schema_version\":2,"
        "\"counters\":{\"a.count\":1,\"b.count\":2},"
        "\"gauges\":{\"z.gauge\":-3},"
        "\"histograms\":{\"h.dist\":{\"count\":2,\"sum\":4,"
        "\"buckets\":{\"le_2^0\":1,\"le_2^2\":1}}}}\n";
    EXPECT_EQ(registry.export_json(), expected);
}

TEST(MetricsTest, ExportSectionsPresentWhenEmpty) {
    MetricsRegistry registry;
    EXPECT_EQ(registry.export_json(),
              "{\"schema_version\":2,\"counters\":{},\"gauges\":{},\"histograms\":{}}\n");
}

TEST(MetricsTest, WriteFileRoundTrips) {
    MetricsRegistry registry;
    registry.counter("x").add();
    const std::string path = testing::TempDir() + "/metrics_test_out.json";
    const Result<void> written = registry.write_file(path);
    ASSERT_TRUE(written.ok()) << written.error();
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), registry.export_json());
}

TEST(MetricsTest, WriteFileToBadPathFails) {
    MetricsRegistry registry;
    EXPECT_FALSE(registry.write_file("/no/such/dir/metrics.json").ok());
}

}  // namespace
}  // namespace cprisk::obs
