// RunContext tests (docs/observability.md): defaults reproduce the old
// behaviour exactly, the pool is built lazily and shared, and the EpaOptions/
// CegarOptions accessors resolve everything through the attached context
// (plain options without one run sequential and unbudgeted).
#include "obs/run_context.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "epa/requirement.hpp"
#include "hierarchy/cegar.hpp"
#include "security/scenario.hpp"

namespace cprisk {
namespace {

TEST(RunContextTest, DefaultsMatchLegacyBehaviour) {
    RunContext ctx;
    EXPECT_EQ(ctx.jobs, 1u);
    EXPECT_EQ(ctx.trace, nullptr);
    EXPECT_EQ(ctx.metrics, nullptr);
    EXPECT_EQ(ctx.faults, &fault::global_registry());
    EXPECT_FALSE(ctx.budget.limited());
}

TEST(RunContextTest, PoolIsLazyAndSticky) {
    RunContext ctx;
    ctx.jobs = 2;
    ThreadPool& pool = ctx.pool();
    EXPECT_EQ(pool.jobs(), 2u);
    ctx.jobs = 8;  // post-construction change has no effect on the pool
    EXPECT_EQ(&ctx.pool(), &pool);
    EXPECT_EQ(ctx.pool().jobs(), 2u);
}

TEST(RunContextTest, EpaOptionsResolveThroughContext) {
    epa::EpaOptions options;
    // No context: sequential, unbudgeted, uninstrumented.
    EXPECT_EQ(options.effective_jobs(), 1u);
    EXPECT_EQ(options.effective_budget(), nullptr);
    EXPECT_EQ(options.trace_sink(), nullptr);
    EXPECT_EQ(options.metrics_sink(), nullptr);

    RunContext ctx;
    ctx.jobs = 2;
    obs::MetricsRegistry metrics;
    ctx.metrics = &metrics;
    options.ctx = &ctx;
    EXPECT_EQ(options.effective_jobs(), 2u);
    EXPECT_EQ(options.effective_budget(), &ctx.budget);
    EXPECT_EQ(options.metrics_sink(), &metrics);
}

TEST(RunContextTest, CegarOptionsResolveThroughContext) {
    hierarchy::CegarOptions options;
    EXPECT_EQ(options.effective_jobs(), 1u);
    EXPECT_EQ(options.effective_budget(), nullptr);
    RunContext ctx;
    ctx.jobs = 3;
    obs::ChromeTraceSink trace;
    ctx.trace = &trace;
    options.ctx = &ctx;
    EXPECT_EQ(options.effective_jobs(), 3u);
    EXPECT_EQ(options.trace_sink(), &trace);
}

// --- context-vs-plain equivalence on a real sweep ---------------------------

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

security::ScenarioSpace single_fault_space(int scenarios, int chain) {
    std::vector<security::AttackScenario> list;
    for (int i = 0; i < scenarios; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % chain), "fail"}};
        s.likelihood = qual::Level::Low;
        list.push_back(std::move(s));
    }
    return security::ScenarioSpace(std::move(list));
}

std::vector<epa::ScenarioVerdict> run_sweep(epa::EpaOptions options) {
    const int n = 4;
    auto m = chain_model(n);
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c3")}, {}, options);
    return analysis.value().evaluate_all(single_fault_space(8, n), {}).value();
}

TEST(RunContextTest, ContextSweepMatchesPlainSweep) {
    const auto plain_verdicts = run_sweep(epa::EpaOptions{});

    RunContext ctx;
    ctx.jobs = 2;
    epa::EpaOptions bundled;
    bundled.ctx = &ctx;
    const auto ctx_verdicts = run_sweep(bundled);

    ASSERT_EQ(plain_verdicts.size(), ctx_verdicts.size());
    for (std::size_t i = 0; i < plain_verdicts.size(); ++i) {
        EXPECT_EQ(plain_verdicts[i].scenario_id, ctx_verdicts[i].scenario_id);
        EXPECT_EQ(plain_verdicts[i].status, ctx_verdicts[i].status);
        EXPECT_EQ(plain_verdicts[i].violated_requirements,
                  ctx_verdicts[i].violated_requirements);
        EXPECT_EQ(plain_verdicts[i].severity, ctx_verdicts[i].severity);
    }
}

TEST(RunContextTest, ContextBudgetGovernsTheRun) {
    RunContext ctx;
    CancelToken cancel;
    cancel.request_cancel();  // starved from the first budget check
    ctx.budget.set_cancel_token(cancel);
    epa::EpaOptions options;
    options.ctx = &ctx;
    const auto verdicts = run_sweep(options);
    ASSERT_FALSE(verdicts.empty());
    for (const auto& verdict : verdicts) {
        EXPECT_EQ(verdict.status, epa::VerdictStatus::Undetermined) << verdict.scenario_id;
    }
}

}  // namespace
}  // namespace cprisk
