// Solver metrics taxonomy (docs/solver.md, docs/observability.md): the CDCL
// counters asp.solve.{restarts,learned_clauses,reused_propagations,core_size}
// are recorded, and they stay jobs-invariant on the two workload shapes that
// guarantee it by construction:
//
//  - hazard-core probes, which run sequentially after each frontier layer
//    barrier (epa/frontier.cpp), and
//  - propagation-only scenario sweeps, where no search means no learning and
//    the warm pool has nothing schedule-dependent to accumulate.
//
// Search-heavy sweeps at jobs > 1 are deliberately NOT asserted invariant:
// each pool solver learns its own clauses, so the learned/reused totals scale
// with lease scheduling while the verdicts stay identical (the contract the
// engine differential pins instead).
#include <gtest/gtest.h>

#include <string>

#include "epa/epa.hpp"
#include "epa/frontier.hpp"
#include "epa/requirement.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "security/scenario.hpp"

namespace cprisk {
namespace {

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

/// Extracts one top-level section ("counters", "histograms") from a metrics
/// export; the sections appear in a fixed order, so substring splicing is
/// exact (the determinism_test idiom).
std::string section(const std::string& json, const std::string& name, const std::string& next) {
    const std::size_t from = json.find("\"" + name + "\":");
    const std::size_t to = next.empty() ? json.size() : json.find("\"" + next + "\":");
    EXPECT_NE(from, std::string::npos);
    EXPECT_NE(to, std::string::npos);
    return json.substr(from, to - from);
}

/// Full-lattice frontier over chain(n) at the given lane count. The chain is
/// negation-free under Topology focus, so the certificate is monotone,
/// supersets prune, and every confirmed hazard fires a hazard-core probe —
/// a real (UNSAT) CDCL solve with an assumption core.
std::string frontier_metrics(int n, std::size_t jobs) {
    auto m = chain_model(n);
    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.jobs = jobs;
    ctx.metrics = &metrics;

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    EXPECT_TRUE(analysis.ok()) << analysis.error();

    epa::FrontierOptions frontier_options;
    frontier_options.ctx = &ctx;
    auto frontier = epa::run_frontier(analysis.value(), frontier_options);
    EXPECT_TRUE(frontier.ok()) << frontier.error();
    EXPECT_TRUE(frontier.value().pruning);
    EXPECT_EQ(frontier.value().minimal_hazards.size(), static_cast<std::size_t>(n));
    return metrics.export_json();
}

/// 12-scenario sweep on chain(5) with the static prefilter disabled, so every
/// scenario reaches the solver but the negation-free program needs no search.
std::string prefilter_off_sweep_metrics(std::size_t jobs) {
    const int n = 5;
    auto m = chain_model(n);
    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.jobs = jobs;
    ctx.metrics = &metrics;

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.static_prefilter = false;
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c4")}, {}, options);
    EXPECT_TRUE(analysis.ok()) << analysis.error();

    std::vector<security::AttackScenario> list;
    for (int i = 0; i < 12; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % n), "fail"}};
        s.likelihood = qual::Level::Low;
        list.push_back(std::move(s));
    }
    auto verdicts =
        analysis.value().evaluate_all(security::ScenarioSpace(std::move(list)), {}).value();
    EXPECT_EQ(verdicts.size(), 12u);
    return metrics.export_json();
}

TEST(SolverMetricsTest, FrontierProbesRecordTheCdclCounters) {
    const std::string json = frontier_metrics(6, 2);
    // Hazard-core probes are cold CDCL solves, so the engine counters appear
    // even though the scenario verdicts themselves were decided statically.
    EXPECT_NE(json.find("\"asp.solve.calls\":"), std::string::npos);
    EXPECT_NE(json.find("\"asp.solve.restarts\":"), std::string::npos);
    EXPECT_NE(json.find("\"asp.solve.learned_clauses\":"), std::string::npos);
    EXPECT_NE(json.find("\"asp.solve.reused_propagations\":"), std::string::npos);
    // Every probe refutes its violation-free pin set, so each completed solve
    // carries an assumption core and the core-size counter fires.
    EXPECT_NE(json.find("\"asp.solve.core_size\":"), std::string::npos);
    EXPECT_NE(json.find("\"epa.hazard_core.extracted\":"), std::string::npos);
}

TEST(SolverMetricsTest, FrontierCountersAreJobsInvariant) {
    const std::string sequential = frontier_metrics(6, 1);
    const std::string parallel = frontier_metrics(6, 8);
    // Probes run sequentially after each layer barrier, so even the
    // learning-dependent counters agree byte-for-byte across lane counts.
    EXPECT_EQ(section(sequential, "counters", "gauges"), section(parallel, "counters", "gauges"));
    EXPECT_EQ(section(sequential, "histograms", ""), section(parallel, "histograms", ""));
}

TEST(SolverMetricsTest, PropagationOnlySweepCountersAreJobsInvariant) {
    const std::string sequential = prefilter_off_sweep_metrics(1);
    const std::string parallel = prefilter_off_sweep_metrics(8);
    EXPECT_NE(sequential.find("\"asp.solve.calls\":"), std::string::npos);
    // No conflicts means no learning, so the warm pool accumulates nothing
    // schedule-dependent and the CDCL counters stay invariant.
    EXPECT_EQ(section(sequential, "counters", "gauges"), section(parallel, "counters", "gauges"));
}

}  // namespace
}  // namespace cprisk
