// Report emitters and §II-A parameter-criticality support.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

const AssessmentReport& sample_report() {
    static const AssessmentReport report = [] {
        auto built = WaterTankCaseStudy::build();
        EXPECT_TRUE(built.ok()) << built.error();
        RiskAssessment assessment(built.value().system, built.value().requirements,
                                  built.value().topology_requirements, built.value().matrix,
                                  built.value().mitigations);
        AssessmentConfig config;
        config.horizon = built.value().horizon;
        config.include_attack_scenarios = false;
        config.phase_budget = 6;
        auto run = assessment.run(config);
        EXPECT_TRUE(run.ok()) << run.error();
        return run.ok() ? std::move(run).value() : AssessmentReport{};
    }();
    return report;
}

TEST(Report, MarkdownSections) {
    const std::string md = render_markdown(sample_report());
    EXPECT_NE(md.find("# Preliminary risk assessment"), std::string::npos);
    EXPECT_NE(md.find("## System"), std::string::npos);
    EXPECT_NE(md.find("## Refinement trace (CEGAR)"), std::string::npos);
    EXPECT_NE(md.find("## Hazards and qualitative risk"), std::string::npos);
    EXPECT_NE(md.find("## Critical parameter estimates"), std::string::npos);
    EXPECT_NE(md.find("## Mitigation strategy"), std::string::npos);
    EXPECT_NE(md.find("### Phased roll-out"), std::string::npos);
}

TEST(Report, MarkdownOptionsToggleSections) {
    ReportOptions options;
    options.include_sensitivity = false;
    options.include_cegar_trace = false;
    options.title = "Custom title";
    const std::string md = render_markdown(sample_report(), options);
    EXPECT_NE(md.find("# Custom title"), std::string::npos);
    EXPECT_EQ(md.find("## Critical parameter estimates"), std::string::npos);
    EXPECT_EQ(md.find("## Refinement trace"), std::string::npos);
}

TEST(Report, CsvHasOneRowPerHazard) {
    const std::string csv = render_risk_csv(sample_report());
    const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(lines, sample_report().risks.size() + 1);  // header + rows
    EXPECT_NE(csv.find("Scenario,LM,LEF,Risk"), std::string::npos);
}

TEST(Report, CriticalityMatchesOraMatrix) {
    const auto criticality = analyze_parameter_criticality(sample_report());
    ASSERT_EQ(criticality.size(), sample_report().risks.size());
    for (std::size_t i = 0; i < criticality.size(); ++i) {
        const auto& c = criticality[i];
        const auto& risk = sample_report().risks[i];
        EXPECT_EQ(c.rating, risk.risk);
        // The unperturbed rating lies inside both sweep ranges.
        EXPECT_TRUE(c.rating_range_severity.contains(c.rating));
        EXPECT_TRUE(c.rating_range_likelihood.contains(c.rating));
        // Sensitivity flags match the ranges.
        EXPECT_EQ(c.sensitive_to_severity, !c.rating_range_severity.is_exact());
        EXPECT_EQ(c.sensitive_to_likelihood, !c.rating_range_likelihood.is_exact());
    }
}

TEST(Report, SaturatedEstimatesAreRobust) {
    // A hazard with VH severity and VH likelihood rates VH under any one-step
    // perturbation (Table I corner) — criticality must report insensitive
    // only if the matrix says so.
    AssessmentReport report;
    ScenarioRisk risk;
    risk.scenario_id = "corner";
    risk.loss_magnitude = qual::Level::VeryHigh;
    risk.loss_event_frequency = qual::Level::VeryHigh;
    risk.risk = risk::ora_risk(risk.loss_magnitude, risk.loss_event_frequency);
    report.risks.push_back(risk);
    const auto criticality = analyze_parameter_criticality(report);
    ASSERT_EQ(criticality.size(), 1u);
    // Risk(H,VH) = VH and Risk(VH,H) = VH: the corner is insensitive.
    EXPECT_FALSE(criticality[0].sensitive_to_severity);
    EXPECT_FALSE(criticality[0].sensitive_to_likelihood);
}

}  // namespace
}  // namespace cprisk::core
