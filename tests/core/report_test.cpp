// Report emitters and §II-A parameter-criticality support.
#include <gtest/gtest.h>

#include "common/schema.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

const AssessmentReport& sample_report() {
    static const AssessmentReport report = [] {
        auto built = WaterTankCaseStudy::build();
        EXPECT_TRUE(built.ok()) << built.error();
        RiskAssessment assessment(built.value().system, built.value().requirements,
                                  built.value().topology_requirements, built.value().matrix,
                                  built.value().mitigations);
        AssessmentConfig config;
        config.horizon = built.value().horizon;
        config.include_attack_scenarios = false;
        config.phase_budget = 6;
        auto run = assessment.run(config);
        EXPECT_TRUE(run.ok()) << run.error();
        return run.ok() ? std::move(run).value() : AssessmentReport{};
    }();
    return report;
}

TEST(Report, MarkdownSections) {
    const std::string md = render_markdown(sample_report());
    EXPECT_NE(md.find("# Preliminary risk assessment"), std::string::npos);
    EXPECT_NE(md.find("## System"), std::string::npos);
    EXPECT_NE(md.find("## Refinement trace (CEGAR)"), std::string::npos);
    EXPECT_NE(md.find("## Hazards and qualitative risk"), std::string::npos);
    EXPECT_NE(md.find("## Critical parameter estimates"), std::string::npos);
    EXPECT_NE(md.find("## Mitigation strategy"), std::string::npos);
    EXPECT_NE(md.find("### Phased roll-out"), std::string::npos);
}

TEST(Report, MarkdownOptionsToggleSections) {
    ReportOptions options;
    options.include_sensitivity = false;
    options.include_cegar_trace = false;
    options.title = "Custom title";
    const std::string md = render_markdown(sample_report(), options);
    EXPECT_NE(md.find("# Custom title"), std::string::npos);
    EXPECT_EQ(md.find("## Critical parameter estimates"), std::string::npos);
    EXPECT_EQ(md.find("## Refinement trace"), std::string::npos);
}

TEST(Report, CsvHasOneRowPerHazard) {
    const std::string csv = render_risk_csv(sample_report());
    const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(lines, sample_report().risks.size() + 1);  // header + rows
    EXPECT_NE(csv.find("Scenario,LM,LEF,Risk"), std::string::npos);
}

TEST(Report, CriticalityMatchesOraMatrix) {
    const auto criticality = analyze_parameter_criticality(sample_report());
    ASSERT_EQ(criticality.size(), sample_report().risks.size());
    for (std::size_t i = 0; i < criticality.size(); ++i) {
        const auto& c = criticality[i];
        const auto& risk = sample_report().risks[i];
        EXPECT_EQ(c.rating, risk.risk);
        // The unperturbed rating lies inside both sweep ranges.
        EXPECT_TRUE(c.rating_range_severity.contains(c.rating));
        EXPECT_TRUE(c.rating_range_likelihood.contains(c.rating));
        // Sensitivity flags match the ranges.
        EXPECT_EQ(c.sensitive_to_severity, !c.rating_range_severity.is_exact());
        EXPECT_EQ(c.sensitive_to_likelihood, !c.rating_range_likelihood.is_exact());
    }
}

TEST(Report, JsonExportLeadsWithTheSchemaVersion) {
    const std::string json = render_report_json(sample_report());
    const std::string expected =
        "{\"schema_version\":" + std::to_string(kSchemaVersion) + ",";
    EXPECT_EQ(json.rfind(expected, 0), 0u) << json.substr(0, 60);
}

TEST(Report, CompletenessCarriesThePriorityCoverageSummary) {
    // sample_report runs under the default ExpectedRisk policy.
    ASSERT_TRUE(sample_report().priority.enabled);
    const std::string md = render_markdown(sample_report());
    EXPECT_NE(md.find("- priority policy: expected_risk"), std::string::npos);
    EXPECT_NE(md.find("- expected-risk coverage: "), std::string::npos);
    // A complete run covers the whole mass and bounds near certainty.
    EXPECT_EQ(sample_report().priority.covered_risk_micros,
              sample_report().priority.total_risk_micros);

    const std::string json = render_report_json(sample_report());
    EXPECT_NE(json.find("\"priority\":{\"policy\":\"expected_risk\""), std::string::npos);
    EXPECT_NE(json.find("\"covered_risk_micros\":"), std::string::npos);
    EXPECT_NE(json.find("\"coverage_lower_bound_micros\":"), std::string::npos);
}

TEST(Report, ParetoSectionRendersOnlyWhenComputed) {
    // The base report was run without --pareto: no section, empty table,
    // empty CSV, knee index -1.
    EXPECT_FALSE(sample_report().pareto.has_value());
    EXPECT_EQ(render_markdown(sample_report()).find("### Pareto front"),
              std::string::npos);
    EXPECT_TRUE(render_pareto_csv(sample_report()).empty());
    EXPECT_EQ(render_report_json(sample_report()).find("\"pareto\""), std::string::npos);

    auto built = WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    RiskAssessment assessment(built.value().system, built.value().requirements,
                              built.value().topology_requirements, built.value().matrix,
                              built.value().mitigations);
    AssessmentConfig config;
    config.horizon = built.value().horizon;
    config.include_attack_scenarios = false;
    config.pareto = true;
    auto run = assessment.run(config);
    ASSERT_TRUE(run.ok()) << run.error();
    const AssessmentReport& report = run.value();
    ASSERT_TRUE(report.pareto.has_value());
    ASSERT_FALSE(report.pareto->empty());

    const std::string md = render_markdown(report);
    EXPECT_NE(md.find("### Pareto front (cost / residual risk / coverage)"),
              std::string::npos);
    // Exactly one row wears the knee marker.
    const std::string csv = render_pareto_csv(report);
    EXPECT_FALSE(csv.empty());
    std::size_t knees = 0;
    std::size_t from = 0;
    while ((from = csv.find("*", from)) != std::string::npos) {
        ++knees;
        ++from;
    }
    EXPECT_EQ(knees, 1u);

    const std::string json = render_report_json(report);
    EXPECT_NE(json.find("\"pareto\":{\"points\":["), std::string::npos);
    EXPECT_NE(json.find("\"knee\":"), std::string::npos);
    // The knee the JSON names is the front's knee() point.
    const auto knee_pos = json.find("\"knee\":", json.find("\"pareto\":"));
    ASSERT_NE(knee_pos, std::string::npos);
    const long long knee_index = std::stoll(json.substr(knee_pos + 7));
    ASSERT_GE(knee_index, 0);
    ASSERT_LT(static_cast<std::size_t>(knee_index), report.pareto->size());
    EXPECT_EQ(&report.pareto->points()[static_cast<std::size_t>(knee_index)],
              &report.pareto->knee());
}

TEST(Report, SensitivityBandWidthFollowsThePriorRadius) {
    AssessmentReport report;
    for (const int radius : {0, 1, 2}) {
        ScenarioRisk risk;
        risk.scenario_id = "r" + std::to_string(radius);
        risk.loss_magnitude = qual::Level::Medium;
        risk.loss_event_frequency = qual::Level::Medium;
        risk.risk = risk::ora_risk(risk.loss_magnitude, risk.loss_event_frequency);
        risk.likelihood_band_radius = radius;
        report.risks.push_back(risk);
    }
    const auto criticality = analyze_parameter_criticality(report);
    ASSERT_EQ(criticality.size(), 3u);
    // Radius 0: the likelihood sweep is a point — never sensitive.
    EXPECT_EQ(criticality[0].likelihood_band_radius, 0);
    EXPECT_TRUE(criticality[0].rating_range_likelihood.is_exact());
    EXPECT_FALSE(criticality[0].sensitive_to_likelihood);
    // Wider radii sweep wider level bands (M±1 vs M±2 on the LEF axis).
    EXPECT_EQ(criticality[1].likelihood_band_radius, 1);
    EXPECT_EQ(criticality[2].likelihood_band_radius, 2);
    // The markdown table spells the band out per row.
    const std::string md = render_markdown(report);
    EXPECT_NE(md.find("| likelihood band |"), std::string::npos);
    EXPECT_NE(md.find("(+/-0)"), std::string::npos);
    EXPECT_NE(md.find("(+/-2)"), std::string::npos);
}

TEST(Report, SaturatedEstimatesAreRobust) {
    // A hazard with VH severity and VH likelihood rates VH under any one-step
    // perturbation (Table I corner) — criticality must report insensitive
    // only if the matrix says so.
    AssessmentReport report;
    ScenarioRisk risk;
    risk.scenario_id = "corner";
    risk.loss_magnitude = qual::Level::VeryHigh;
    risk.loss_event_frequency = qual::Level::VeryHigh;
    risk.risk = risk::ora_risk(risk.loss_magnitude, risk.loss_event_frequency);
    report.risks.push_back(risk);
    const auto criticality = analyze_parameter_criticality(report);
    ASSERT_EQ(criticality.size(), 1u);
    // Risk(H,VH) = VH and Risk(VH,H) = VH: the corner is insensitive.
    EXPECT_FALSE(criticality[0].sensitive_to_severity);
    EXPECT_FALSE(criticality[0].sensitive_to_likelihood);
}

}  // namespace
}  // namespace cprisk::core
