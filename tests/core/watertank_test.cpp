// Integration tests on the §VII water-tank case study: Table II row-for-row,
// mitigation effects, and model structure.
#include <gtest/gtest.h>

#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

namespace ids = watertank_ids;

class WaterTankFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        case_study_ = new WaterTankCaseStudy(std::move(built).value());

        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = case_study_->horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(
            case_study_->system, case_study_->requirements, case_study_->mitigations, options);
        ASSERT_TRUE(epa.ok()) << epa.error();
        epa_ = new epa::ErrorPropagationAnalysis(std::move(epa).value());
    }
    static void TearDownTestSuite() {
        delete epa_;
        delete case_study_;
        epa_ = nullptr;
        case_study_ = nullptr;
    }

    static epa::ScenarioVerdict evaluate(const Table2Row& row) {
        auto verdict = epa_->evaluate(row.scenario, row.active_mitigations);
        EXPECT_TRUE(verdict.ok()) << verdict.error();
        return verdict.ok() ? std::move(verdict).value() : epa::ScenarioVerdict{};
    }

    static WaterTankCaseStudy* case_study_;
    static epa::ErrorPropagationAnalysis* epa_;
};

WaterTankCaseStudy* WaterTankFixture::case_study_ = nullptr;
epa::ErrorPropagationAnalysis* WaterTankFixture::epa_ = nullptr;

TEST_F(WaterTankFixture, ModelStructure) {
    EXPECT_EQ(case_study_->system.component_count(), 9u);
    EXPECT_TRUE(case_study_->system.has_component(ids::kTank));
    EXPECT_TRUE(case_study_->system.has_component(ids::kWorkstation));
    EXPECT_TRUE(case_study_->system.validate().ok());
    // The workstation reaches the valve controllers (the IT/OT bridge).
    auto reachable = case_study_->system.reachable_from(ids::kWorkstation);
    EXPECT_TRUE(reachable.count(ids::kInputValve) > 0);
    EXPECT_TRUE(reachable.count(ids::kTank) > 0);
    EXPECT_TRUE(reachable.count(ids::kHmi) > 0);
}

// --- Table II row-for-row ----------------------------------------------------

TEST_F(WaterTankFixture, S1_NoFaults_NoViolation) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[0]);
    EXPECT_FALSE(verdict.any_violation()) << verdict.violated_requirements.size();
}

TEST_F(WaterTankFixture, S2_CompromisedWorkstation_ViolatesBoth) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[1]);
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_TRUE(verdict.violates("r2"));
}

TEST_F(WaterTankFixture, S3_InputValveStuckOpen_NoViolation) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[2]);
    EXPECT_FALSE(verdict.any_violation());
}

TEST_F(WaterTankFixture, S4_OutputValveStuckClosed_ViolatesR1Only) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[3]);
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_FALSE(verdict.violates("r2"));
}

TEST_F(WaterTankFixture, S5_OutputStuckAndHmiDead_ViolatesBoth) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[4]);
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_TRUE(verdict.violates("r2"));
}

TEST_F(WaterTankFixture, S6_InputStuckAndHmiDead_NoViolation) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[5]);
    EXPECT_FALSE(verdict.any_violation());
}

TEST_F(WaterTankFixture, S7_AllPhysicalFaults_SameViolationsAsS5) {
    auto rows = case_study_->table2_rows();
    auto s5 = evaluate(rows[4]);
    auto s7 = evaluate(rows[6]);
    EXPECT_TRUE(s7.violates("r1"));
    EXPECT_TRUE(s7.violates("r2"));
    EXPECT_EQ(s5.violated_requirements, s7.violated_requirements);
    // "the potential probability of the simultaneous occurrence of all
    // faults is much lower" — S7 is less likely than S5.
    EXPECT_LE(s7.likelihood, s5.likelihood);
}

// --- mitigation effects -------------------------------------------------------

TEST_F(WaterTankFixture, MitigationsSuppressWorkstationCompromise) {
    auto rows = case_study_->table2_rows();
    Table2Row s2_mitigated = rows[1];
    s2_mitigated.active_mitigations = {"M-TRAIN", "M-ENDPOINT"};
    auto verdict = evaluate(s2_mitigated);
    EXPECT_FALSE(verdict.any_violation());
    EXPECT_TRUE(verdict.injected.empty());  // fault suppressed at activation
}

TEST_F(WaterTankFixture, SingleMitigationIsEnough) {
    auto rows = case_study_->table2_rows();
    Table2Row s2_train_only = rows[1];
    s2_train_only.active_mitigations = {"M-TRAIN"};
    EXPECT_FALSE(evaluate(s2_train_only).any_violation());
}

TEST_F(WaterTankFixture, MitigationsDoNotSuppressPhysicalFaults) {
    // M1/M2 address the cyber path; a spontaneous valve fault still violates.
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[3]);  // S4 has both mitigations active
    EXPECT_TRUE(verdict.violates("r1"));
}

// --- richer checks -------------------------------------------------------------

TEST_F(WaterTankFixture, S2PropagationReachesPhysical) {
    auto rows = case_study_->table2_rows();
    auto verdict = evaluate(rows[1]);
    // The topology error spread starts at the workstation.
    ASSERT_FALSE(verdict.propagation.empty());
    EXPECT_EQ(verdict.propagation.front().component, ids::kWorkstation);
    bool reaches_tank = false;
    for (const auto& step : verdict.propagation) {
        if (step.component == ids::kTank) reaches_tank = true;
    }
    EXPECT_TRUE(reaches_tank);
}

TEST_F(WaterTankFixture, SeverityRanking) {
    auto rows = case_study_->table2_rows();
    auto s2 = evaluate(rows[1]);
    auto s4 = evaluate(rows[3]);
    // The workstation compromise endangers the highest-value asset set.
    EXPECT_GE(s2.severity, s4.severity);
    EXPECT_GE(s2.severity, qual::Level::High);
}

TEST_F(WaterTankFixture, WorkstationRefinementApplies) {
    auto built = WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    auto refined = built.value().system;
    auto spec = WaterTankCaseStudy::workstation_refinement();
    auto applied = refined.refine(spec);
    ASSERT_TRUE(applied.ok()) << applied.error();
    EXPECT_TRUE(refined.is_refined(ids::kWorkstation));
    EXPECT_EQ(refined.parts_of(ids::kWorkstation).size(), 3u);
    // The attack chain of Fig. 4 exists inside the refinement.
    auto paths = refined.find_paths("email_client", "infected_computer");
    ASSERT_FALSE(paths.empty());
    EXPECT_EQ(paths[0].size(), 3u);  // email -> browser -> infected
    // Outbound propagation now leaves via the refined exit.
    auto reachable = refined.reachable_from("infected_computer");
    EXPECT_TRUE(reachable.count(ids::kInValveCtrl) > 0);
}

}  // namespace
}  // namespace cprisk::core
