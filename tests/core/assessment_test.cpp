// Full seven-step pipeline on the case study.
#include <gtest/gtest.h>

#include "core/assessment.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

class AssessmentFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new WaterTankCaseStudy(std::move(built).value());
        assessment_ = new RiskAssessment(cs_->system, cs_->requirements,
                                         cs_->topology_requirements, cs_->matrix,
                                         cs_->mitigations);
    }
    static void TearDownTestSuite() {
        delete assessment_;
        delete cs_;
        assessment_ = nullptr;
        cs_ = nullptr;
    }

    static WaterTankCaseStudy* cs_;
    static RiskAssessment* assessment_;
};

WaterTankCaseStudy* AssessmentFixture::cs_ = nullptr;
RiskAssessment* AssessmentFixture::assessment_ = nullptr;

TEST_F(AssessmentFixture, FullPipelineRuns) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.max_simultaneous_faults = 2;
    config.include_attack_scenarios = false;

    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok()) << report.error();
    const AssessmentReport& r = report.value();

    EXPECT_EQ(r.component_count, 9u);
    EXPECT_GT(r.scenario_count, 0u);
    EXPECT_FALSE(r.hazards.empty());
    EXPECT_EQ(r.risks.size(), r.hazards.size());
    EXPECT_GT(r.spurious_eliminated, 0u);
    EXPECT_EQ(r.cegar_iterations.size(), 2u);
    // Risks are sorted descending.
    for (std::size_t i = 0; i + 1 < r.risks.size(); ++i) {
        EXPECT_GE(r.risks[i].risk, r.risks[i + 1].risk);
    }
    // The optimizer proposes something against the confirmed hazards.
    EXPECT_FALSE(r.selection.chosen.empty());
}

TEST_F(AssessmentFixture, CegarOffGivesSameHazards) {
    AssessmentConfig with_cegar;
    with_cegar.horizon = cs_->horizon;
    with_cegar.include_attack_scenarios = false;
    with_cegar.use_cegar = true;

    AssessmentConfig without = with_cegar;
    without.use_cegar = false;

    auto a = assessment_->run(with_cegar);
    auto b = assessment_->run(without);
    ASSERT_TRUE(a.ok()) << a.error();
    ASSERT_TRUE(b.ok()) << b.error();
    ASSERT_EQ(a.value().hazards.size(), b.value().hazards.size());
    for (std::size_t i = 0; i < a.value().hazards.size(); ++i) {
        EXPECT_EQ(a.value().hazards[i].scenario_id, b.value().hazards[i].scenario_id);
    }
}

TEST_F(AssessmentFixture, DeployedMitigationsReduceHazards) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.include_attack_scenarios = false;
    auto baseline = assessment_->run(config);
    config.active_mitigations = {"M-TRAIN", "M-ENDPOINT"};
    auto hardened = assessment_->run(config);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(hardened.ok());
    EXPECT_LT(hardened.value().hazards.size(), baseline.value().hazards.size());
}

TEST_F(AssessmentFixture, BudgetLimitsSelection) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.include_attack_scenarios = false;
    config.budget = 2;  // only User Training is affordable
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok()) << report.error();
    EXPECT_LE(report.value().selection.mitigation_cost, 2);
}

TEST_F(AssessmentFixture, MultiPhasePlanning) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.include_attack_scenarios = false;
    config.phase_budget = 4;
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok()) << report.error();
    EXPECT_FALSE(report.value().phases.empty());
    for (const auto& phase : report.value().phases) {
        EXPECT_LE(phase.selection.mitigation_cost, 4);
    }
}

TEST_F(AssessmentFixture, RiskRatingsUseOraMatrix) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.include_attack_scenarios = false;
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok());
    for (const ScenarioRisk& risk : report.value().risks) {
        EXPECT_EQ(risk.risk, risk::ora_risk(risk.loss_magnitude, risk.loss_event_frequency));
        EXPECT_FALSE(risk.violated_requirements.empty());
    }
}

TEST_F(AssessmentFixture, ReportTablesRender) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.include_attack_scenarios = false;
    config.phase_budget = 4;
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report.value().hazard_table().rows(), 0u);
    EXPECT_GT(report.value().risk_table().rows(), 0u);
    EXPECT_GT(report.value().mitigation_table().rows(), 0u);
    EXPECT_NE(report.value().risk_table().render().find("Risk"), std::string::npos);
}

TEST_F(AssessmentFixture, AttackScenariosIncluded) {
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.max_simultaneous_faults = 1;
    config.include_attack_scenarios = true;
    auto with_attacks = assessment_->run(config);
    config.include_attack_scenarios = false;
    auto without = assessment_->run(config);
    ASSERT_TRUE(with_attacks.ok()) << with_attacks.error();
    ASSERT_TRUE(without.ok());
    EXPECT_GT(with_attacks.value().scenario_count, without.value().scenario_count);
}


TEST_F(AssessmentFixture, CatalogAddsVulnerabilityScenarios) {
    RiskAssessment with_catalog(cs_->system, cs_->requirements, cs_->topology_requirements,
                                cs_->matrix, cs_->mitigations, &cs_->catalog);
    AssessmentConfig config;
    config.horizon = cs_->horizon;
    config.max_simultaneous_faults = 1;
    config.include_attack_scenarios = false;
    auto with = with_catalog.run(config);
    auto without = assessment_->run(config);
    ASSERT_TRUE(with.ok()) << with.error();
    ASSERT_TRUE(without.ok());
    EXPECT_GT(with.value().scenario_count, without.value().scenario_count);
}

}  // namespace
}  // namespace cprisk::core
