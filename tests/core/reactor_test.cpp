// Second case study (batch reactor): designed verdicts, defence-in-depth
// behaviour, and mitigation effects.
#include <gtest/gtest.h>

#include "core/reactor.hpp"

namespace cprisk::core {
namespace {

namespace ids = reactor_ids;
using security::AttackScenario;
using security::Mutation;

class ReactorFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = ReactorCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new ReactorCaseStudy(std::move(built).value());
        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = cs_->horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(cs_->system, cs_->requirements,
                                                         cs_->mitigations, options);
        ASSERT_TRUE(epa.ok()) << epa.error();
        epa_ = new epa::ErrorPropagationAnalysis(std::move(epa).value());
    }
    static void TearDownTestSuite() {
        delete epa_;
        delete cs_;
        epa_ = nullptr;
        cs_ = nullptr;
    }

    static epa::ScenarioVerdict evaluate(std::vector<Mutation> mutations,
                                         std::vector<std::string> mitigations = {}) {
        AttackScenario scenario;
        scenario.id = "t";
        scenario.mutations = std::move(mutations);
        scenario.likelihood = qual::Level::Low;
        auto verdict = epa_->evaluate(scenario, mitigations);
        EXPECT_TRUE(verdict.ok()) << verdict.error();
        return verdict.ok() ? std::move(verdict).value() : epa::ScenarioVerdict{};
    }

    static ReactorCaseStudy* cs_;
    static epa::ErrorPropagationAnalysis* epa_;
};

ReactorCaseStudy* ReactorFixture::cs_ = nullptr;
epa::ErrorPropagationAnalysis* ReactorFixture::epa_ = nullptr;

TEST_F(ReactorFixture, NominalOperationIsSafe) {
    auto verdict = evaluate({});
    EXPECT_FALSE(verdict.any_violation());
}

TEST_F(ReactorFixture, SingleFaultsAreCompensated) {
    // Defence in depth: each single fault is caught by another layer.
    EXPECT_FALSE(evaluate({{ids::kHeater, "stuck_on"}}).any_violation());
    EXPECT_FALSE(evaluate({{ids::kCoolingValve, "stuck_closed"}}).any_violation());
    EXPECT_FALSE(evaluate({{ids::kReliefValve, "stuck_closed"}}).any_violation());
    EXPECT_FALSE(evaluate({{ids::kAlarmUnit, "no_signal"}}).any_violation());
}

TEST_F(ReactorFixture, FrozenSensorAloneIsVented) {
    // The blind controller keeps heating, but the healthy relief valve vents:
    // no rupture, and the pressure alert still reaches the operator.
    auto verdict = evaluate({{ids::kTempSensor, "frozen_reading"}});
    EXPECT_FALSE(verdict.any_violation());
}

TEST_F(ReactorFixture, HeaterAndCoolingFaultsAreStillVented) {
    auto verdict = evaluate(
        {{ids::kHeater, "stuck_on"}, {ids::kCoolingValve, "stuck_closed"}});
    EXPECT_FALSE(verdict.violates("r1"));  // relief valve saves the vessel
    EXPECT_FALSE(verdict.violates("r2"));  // and the alarm fires
}

TEST_F(ReactorFixture, TripleActuatorFaultRuptures) {
    auto verdict = evaluate({{ids::kHeater, "stuck_on"},
                             {ids::kCoolingValve, "stuck_closed"},
                             {ids::kReliefValve, "stuck_closed"}});
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_FALSE(verdict.violates("r2"));  // the alarm still fires
}

TEST_F(ReactorFixture, FrozenSensorPlusReliefFailureRuptures) {
    auto verdict = evaluate(
        {{ids::kTempSensor, "frozen_reading"}, {ids::kReliefValve, "stuck_closed"}});
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_FALSE(verdict.violates("r2"));
}

TEST_F(ReactorFixture, ScadaCompromiseRupturesSilently) {
    auto verdict = evaluate({{ids::kScada, "compromised"}});
    EXPECT_TRUE(verdict.violates("r1"));
    EXPECT_TRUE(verdict.violates("r2"));
    EXPECT_EQ(verdict.severity, qual::Level::VeryHigh);
}

TEST_F(ReactorFixture, HardenedScadaIsSafe) {
    auto verdict = evaluate({{ids::kScada, "compromised"}}, {"M-ENDPOINT"});
    EXPECT_FALSE(verdict.any_violation());
    EXPECT_TRUE(verdict.injected.empty());
    auto segmented = evaluate({{ids::kScada, "compromised"}}, {"M-SEGMENT"});
    EXPECT_FALSE(segmented.any_violation());
}

TEST_F(ReactorFixture, AlarmFaultOnlyMattersUnderPressure) {
    // Alarm dead + critical pressure (via sensor freeze): R2 violated, but
    // the relief valve still prevents rupture.
    auto verdict = evaluate(
        {{ids::kAlarmUnit, "no_signal"}, {ids::kTempSensor, "frozen_reading"}});
    EXPECT_FALSE(verdict.violates("r1"));
    EXPECT_TRUE(verdict.violates("r2"));
}

TEST_F(ReactorFixture, TopologySoundness) {
    // Every behaviourally confirmed hazard is flagged by the abstract
    // topology analysis (CEGAR soundness on the second case study).
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = cs_->horizon;
    auto topo = epa::ErrorPropagationAnalysis::create(
        cs_->system, cs_->topology_requirements, cs_->mitigations, options);
    ASSERT_TRUE(topo.ok()) << topo.error();

    const std::vector<std::vector<Mutation>> hazardous = {
        {{ids::kScada, "compromised"}},
        {{ids::kHeater, "stuck_on"},
         {ids::kCoolingValve, "stuck_closed"},
         {ids::kReliefValve, "stuck_closed"}},
        {{ids::kTempSensor, "frozen_reading"}, {ids::kReliefValve, "stuck_closed"}},
    };
    for (const auto& mutations : hazardous) {
        AttackScenario scenario;
        scenario.id = "t";
        scenario.mutations = mutations;
        auto verdict = topo.value().evaluate(scenario, {});
        ASSERT_TRUE(verdict.ok()) << verdict.error();
        EXPECT_TRUE(verdict.value().any_violation())
            << "abstraction missed a concrete hazard";
    }
}

TEST_F(ReactorFixture, ModelValidates) {
    EXPECT_TRUE(cs_->system.validate().ok());
    EXPECT_EQ(cs_->system.component_count(), 9u);
}

}  // namespace
}  // namespace cprisk::core
