// Bundle loader: the DSL + requirement declarations, and the loaded bundle's
// equivalence with the programmatic case study.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/loader.hpp"
#include "core/watertank.hpp"
#include "epa/epa.hpp"

namespace cprisk::core {
namespace {

constexpr const char* kBundle = R"cpm(
component tank equipment asset=VH
component valve actuator
fault valve stuck_at_open stuck_at forced=open likelihood=L
relation valve quantity_flow tank

requirement r1 never "overflow(tank)"
requirement r2 responds "overflow(tank)" alert
requirement guard protects tank
)cpm";

TEST(Loader, ParsesModelAndRequirements) {
    auto bundle = load_bundle(kBundle);
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    EXPECT_EQ(bundle.value().model.component_count(), 2u);
    ASSERT_EQ(bundle.value().behavioral_requirements.size(), 2u);
    ASSERT_EQ(bundle.value().topology_requirements.size(), 1u);
    EXPECT_EQ(bundle.value().behavioral_requirements[0].id, "r1");
    EXPECT_EQ(bundle.value().topology_requirements[0].id, "guard");
}

TEST(Loader, EffectiveFallbacks) {
    auto only_protects = load_bundle(
        "component a node\nrequirement g protects a\n");
    ASSERT_TRUE(only_protects.ok()) << only_protects.error();
    EXPECT_EQ(only_protects.value().effective_behavioral().size(), 1u);
    EXPECT_EQ(only_protects.value().effective_topology().size(), 1u);

    auto only_never = load_bundle(
        "component a node\nrequirement n never \"bad(a)\"\n");
    ASSERT_TRUE(only_never.ok());
    EXPECT_EQ(only_never.value().effective_topology().size(), 1u);
}

TEST(Loader, ProtectsUnknownComponentFails) {
    auto bundle = load_bundle("component a node\nrequirement g protects ghost\n");
    ASSERT_FALSE(bundle.ok());
    EXPECT_NE(bundle.error().find("ghost"), std::string::npos);
}

TEST(Loader, BadRequirementKind) {
    auto bundle = load_bundle("component a node\nrequirement r forbids a\n");
    ASSERT_FALSE(bundle.ok());
    EXPECT_NE(bundle.error().find("unknown requirement kind"), std::string::npos);
}

TEST(Loader, RequirementInsideBehaviorBlockIsAspText) {
    // The word "requirement ..." inside a behaviour block must not be eaten
    // by the requirement scanner.
    auto bundle = load_bundle(
        "component a node\n"
        "behavior a <<<\n"
        "% requirement commentary inside ASP\n"
        "ok(a).\n"
        ">>>\n");
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    ASSERT_EQ(bundle.value().model.behaviors("a").size(), 1u);
    EXPECT_NE(bundle.value().model.behaviors("a")[0].find("requirement commentary"),
              std::string::npos);
}

TEST(Loader, FileLoading) {
    const std::string path = ::testing::TempDir() + "/loader_test_bundle.cpm";
    {
        std::ofstream file(path);
        file << kBundle;
    }
    auto bundle = load_bundle_file(path);
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    EXPECT_EQ(bundle.value().model.component_count(), 2u);
    EXPECT_FALSE(load_bundle_file("/nonexistent/path.cpm").ok());
}

TEST(Loader, ShippedWatertankBundleMatchesProgrammaticCaseStudy) {
    // The bundle in examples/models must reproduce Table II exactly like the
    // C++-built case study.
    auto bundle = load_bundle_file("../../examples/models/watertank.cpm");
    if (!bundle.ok()) {
        // Running from a different cwd: locate via source dir fallback.
        bundle = load_bundle_file(std::string(CPRISK_SOURCE_DIR) +
                                  "/examples/models/watertank.cpm");
    }
    ASSERT_TRUE(bundle.ok()) << bundle.error();
    const auto& b = bundle.value();
    EXPECT_EQ(b.model.component_count(), 9u);

    auto built = WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    const auto& cs = built.value();

    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    const auto matrix = security::AttackMatrix::standard_ics();
    auto mitigations = epa::MitigationMap::from_attack_matrix(b.model, matrix);
    mitigations.add("M-TRAIN", "workstation", "infected");
    mitigations.add("M-ENDPOINT", "workstation", "infected");
    auto epa = epa::ErrorPropagationAnalysis::create(b.model, b.behavioral_requirements,
                                                     mitigations, options);
    ASSERT_TRUE(epa.ok()) << epa.error();

    for (const auto& row : cs.table2_rows()) {
        auto from_bundle = epa.value().evaluate(row.scenario, row.active_mitigations);
        ASSERT_TRUE(from_bundle.ok()) << from_bundle.error();
        // Compare against the programmatic model's verdicts.
        epa::EpaOptions cs_options = options;
        auto cs_epa = epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements,
                                                            cs.mitigations, cs_options);
        ASSERT_TRUE(cs_epa.ok());
        auto reference = cs_epa.value().evaluate(row.scenario, row.active_mitigations);
        ASSERT_TRUE(reference.ok());
        EXPECT_EQ(from_bundle.value().violated_requirements,
                  reference.value().violated_requirements)
            << row.scenario.id;
    }
}

}  // namespace
}  // namespace cprisk::core
