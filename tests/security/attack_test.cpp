// Attack matrix, threat actors, attack graph, scenario space.
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "security/attack_graph.hpp"
#include "security/scenario.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::security {
namespace {

namespace ids = core::watertank_ids;

const model::SystemModel& watertank() {
    static const model::SystemModel model = [] {
        auto built = core::WaterTankCaseStudy::build();
        EXPECT_TRUE(built.ok()) << built.error();
        return built.value().system;
    }();
    return model;
}

ThreatActor actor_by_id(const std::string& id) {
    for (const ThreatActor& actor : standard_threat_actors()) {
        if (actor.id == id) return actor;
    }
    ADD_FAILURE() << "unknown actor " << id;
    return {};
}

TEST(AttackMatrix, StandardContents) {
    auto matrix = AttackMatrix::standard_ics();
    EXPECT_NE(matrix.find_mitigation("M-TRAIN"), nullptr);
    EXPECT_NE(matrix.find_mitigation("M-ENDPOINT"), nullptr);
    EXPECT_NE(matrix.find_technique("T-REMOTE-EXPLOIT"), nullptr);
    EXPECT_GE(matrix.techniques().size(), 8u);
    EXPECT_GE(matrix.mitigations().size(), 6u);
}

TEST(AttackMatrix, EveryTechniqueHasKnownMitigations) {
    auto matrix = AttackMatrix::standard_ics();
    for (const Technique& technique : matrix.techniques()) {
        EXPECT_FALSE(technique.mitigated_by.empty()) << technique.id;
        for (const std::string& m : technique.mitigated_by) {
            EXPECT_NE(matrix.find_mitigation(m), nullptr)
                << technique.id << " references " << m;
        }
    }
}

TEST(AttackMatrix, TechniquesByTactic) {
    auto matrix = AttackMatrix::standard_ics();
    auto initial = matrix.techniques_in(Tactic::InitialAccess);
    EXPECT_GE(initial.size(), 2u);
    for (const Technique* t : initial) EXPECT_EQ(t->tactic, Tactic::InitialAccess);
}

TEST(ThreatActors, CapabilityOrdering) {
    auto apt = actor_by_id("A-APT");
    auto script = actor_by_id("A-SCRIPT");
    EXPECT_GT(apt.capability, script.capability);
    EXPECT_TRUE(apt.capable_of(qual::Level::VeryHigh));
    EXPECT_FALSE(script.capable_of(qual::Level::High));
}

TEST(ThreatActors, Reachability) {
    auto script = actor_by_id("A-SCRIPT");
    EXPECT_TRUE(script.can_reach(model::Exposure::Public));
    EXPECT_FALSE(script.can_reach(model::Exposure::Internal));
    auto insider = actor_by_id("A-INSIDER");
    EXPECT_TRUE(insider.can_reach(model::Exposure::Internal));
}

TEST(AttackGraph, EntryPointsRespectExposure) {
    auto matrix = AttackMatrix::standard_ics();
    auto graph = AttackGraph::build(watertank(), matrix, actor_by_id("A-SCRIPT"));
    // Nothing in the base water-tank model is Public, so the opportunistic
    // actor has no entry.
    EXPECT_TRUE(graph.entry_points().empty());

    auto insider_graph = AttackGraph::build(watertank(), matrix, actor_by_id("A-INSIDER"));
    EXPECT_FALSE(insider_graph.entry_points().empty());
}

TEST(AttackGraph, AptReachesThePhysicalProcess) {
    auto matrix = AttackMatrix::standard_ics();
    auto graph = AttackGraph::build(watertank(), matrix, actor_by_id("A-APT"));
    auto compromisable = graph.compromisable();
    EXPECT_FALSE(compromisable.empty());
    // The APT can chain from the workstation into the valve controllers.
    bool reaches_ctrl = false;
    for (const auto& id : compromisable) {
        if (id == ids::kInValveCtrl || id == ids::kOutValveCtrl) reaches_ctrl = true;
    }
    EXPECT_TRUE(reaches_ctrl);
}

TEST(AttackGraph, PathsThroughRefinedWorkstation) {
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    auto refined = built.value().system;
    ASSERT_TRUE(refined.refine(core::WaterTankCaseStudy::workstation_refinement()).ok());

    auto matrix = AttackMatrix::standard_ics();
    auto graph = AttackGraph::build(refined, matrix, actor_by_id("A-CRIME"));
    // Fig. 4 chain: the cybercriminal enters via the public e-mail client.
    bool email_entry = false;
    for (const AttackStep& step : graph.entry_points()) {
        if (step.component == "email_client") email_entry = true;
    }
    EXPECT_TRUE(email_entry);

    auto paths = graph.paths_to("infected_computer");
    ASSERT_FALSE(paths.empty());
    // Some path passes through the browser.
    bool via_browser = false;
    for (const AttackPath& path : paths) {
        for (const AttackStep& step : path.steps) {
            if (step.component == "browser") via_browser = true;
        }
    }
    EXPECT_TRUE(via_browser);
}

TEST(ScenarioSpace, FaultCombinationCount) {
    ScenarioSpaceOptions options;
    options.max_simultaneous_faults = 2;
    options.include_attack_scenarios = false;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options);
    // The case-study model carries 12 fault modes: C(12,1) + C(12,2) = 78.
    std::size_t fault_modes = 0;
    for (const auto& component : watertank().components()) {
        fault_modes += component.fault_modes.size();
    }
    const std::size_t expected = fault_modes + fault_modes * (fault_modes - 1) / 2;
    EXPECT_EQ(space.size(), expected);
}

TEST(ScenarioSpace, SingleFaultOnly) {
    ScenarioSpaceOptions options;
    options.max_simultaneous_faults = 1;
    options.include_attack_scenarios = false;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options);
    for (const AttackScenario& scenario : space.scenarios()) {
        EXPECT_EQ(scenario.mutations.size(), 1u);
        EXPECT_EQ(scenario.origin, ScenarioOrigin::FaultCombination);
    }
}

TEST(ScenarioSpace, AttackScenariosCarryTechniques) {
    ScenarioSpaceOptions options;
    options.max_simultaneous_faults = 1;
    options.include_fault_combinations = false;
    options.include_attack_scenarios = true;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options);
    EXPECT_FALSE(space.scenarios().empty());
    for (const AttackScenario& scenario : space.scenarios()) {
        EXPECT_EQ(scenario.origin, ScenarioOrigin::AttackPath);
        EXPECT_FALSE(scenario.actor_id.empty());
        EXPECT_FALSE(scenario.mutations.empty());
    }
}

TEST(ScenarioSpace, MutationUniverse) {
    ScenarioSpaceOptions options;
    options.max_simultaneous_faults = 1;
    options.include_attack_scenarios = false;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options);
    auto universe = space.mutation_universe();
    std::size_t fault_modes = 0;
    for (const auto& component : watertank().components()) {
        fault_modes += component.fault_modes.size();
    }
    EXPECT_EQ(universe.size(), fault_modes);
}

TEST(ScenarioSpace, CombinedLikelihoodPenalty) {
    using qual::Level;
    EXPECT_EQ(combined_likelihood({Level::High}), Level::High);
    EXPECT_EQ(combined_likelihood({Level::High, Level::High}), Level::Medium);
    EXPECT_EQ(combined_likelihood({Level::Low, Level::High}), Level::VeryLow);
    EXPECT_EQ(combined_likelihood({}), Level::VeryLow);
    // More simultaneous faults are never more likely.
    EXPECT_LE(combined_likelihood({Level::High, Level::High, Level::High}),
              combined_likelihood({Level::High, Level::High}));
}


TEST(ScenarioSpace, VulnerabilityScenariosFromCatalog) {
    auto catalog = SecurityCatalog::standard_ics();
    ScenarioSpaceOptions options;
    options.include_fault_combinations = false;
    options.include_attack_scenarios = false;
    options.include_vulnerability_scenarios = true;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options, &catalog);
    // The case-study model matches at least the workstation RCE (V-WS-1,
    // template engineering_workstation -> fault "infected") and the HMI
    // crash (V-HMI-1 -> "no_signal").
    ASSERT_FALSE(space.scenarios().empty());
    bool ws = false;
    bool hmi = false;
    for (const AttackScenario& scenario : space.scenarios()) {
        EXPECT_EQ(scenario.origin, ScenarioOrigin::Vulnerability);
        EXPECT_FALSE(scenario.vulnerability_id.empty());
        ASSERT_EQ(scenario.mutations.size(), 1u);
        if (scenario.vulnerability_id == "V-WS-1") {
            ws = true;
            EXPECT_EQ(scenario.mutations[0].fault_id, "infected");
            EXPECT_EQ(scenario.likelihood, qual::Level::VeryHigh);  // CVSS 9.1
        }
        if (scenario.vulnerability_id == "V-HMI-1") hmi = true;
    }
    EXPECT_TRUE(ws);
    EXPECT_TRUE(hmi);
}

TEST(ScenarioSpace, NoCatalogNoVulnerabilityScenarios) {
    ScenarioSpaceOptions options;
    options.include_fault_combinations = false;
    options.include_attack_scenarios = false;
    options.include_vulnerability_scenarios = true;
    auto space = ScenarioSpace::build(watertank(), AttackMatrix::standard_ics(),
                                      standard_threat_actors(), options);
    EXPECT_TRUE(space.scenarios().empty());
}

}  // namespace
}  // namespace cprisk::security
