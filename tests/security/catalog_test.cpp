// Security catalogs: matching semantics and the embedded ICS subset.
#include <gtest/gtest.h>

#include "security/catalog.hpp"

namespace cprisk::security {
namespace {

model::Component make_component(model::ElementType type, std::string template_name = "",
                                std::string version = "") {
    model::Component c;
    c.id = "test";
    c.name = "Test";
    c.type = type;
    c.version = std::move(version);
    if (!template_name.empty()) c.properties["template"] = std::move(template_name);
    return c;
}

TEST(Catalog, CvssBands) {
    Vulnerability v;
    v.cvss = 1.0;
    EXPECT_EQ(v.severity_level(), qual::Level::VeryLow);
    v.cvss = 3.9;
    EXPECT_EQ(v.severity_level(), qual::Level::Low);
    v.cvss = 5.0;
    EXPECT_EQ(v.severity_level(), qual::Level::Medium);
    v.cvss = 7.5;
    EXPECT_EQ(v.severity_level(), qual::Level::High);
    v.cvss = 9.8;
    EXPECT_EQ(v.severity_level(), qual::Level::VeryHigh);
}

TEST(Catalog, WeaknessMatchByElementType) {
    auto catalog = SecurityCatalog::standard_ics();
    auto plc_weaknesses = catalog.weaknesses_for(make_component(model::ElementType::Controller));
    EXPECT_FALSE(plc_weaknesses.empty());
    bool has_auth = false;
    for (const Weakness* w : plc_weaknesses) {
        if (w->id == "W-AUTH") has_auth = true;
    }
    EXPECT_TRUE(has_auth);
}

TEST(Catalog, VulnerabilityTemplateMatch) {
    auto catalog = SecurityCatalog::standard_ics();
    auto vulns = catalog.vulnerabilities_for(
        make_component(model::ElementType::ApplicationComponent, "email_client"));
    ASSERT_FALSE(vulns.empty());
    bool mail = false;
    for (const Vulnerability* v : vulns) {
        if (v->id == "V-MAIL-1") mail = true;
    }
    EXPECT_TRUE(mail);
}

TEST(Catalog, VersionSpecificMatching) {
    auto catalog = SecurityCatalog::standard_ics();
    // V-BROWSER-1 pins version 98.0.
    auto vulnerable = catalog.vulnerabilities_for(
        make_component(model::ElementType::ApplicationComponent, "web_browser", "98.0"));
    bool found = false;
    for (const Vulnerability* v : vulnerable) {
        if (v->id == "V-BROWSER-1") found = true;
    }
    EXPECT_TRUE(found);

    auto patched = catalog.vulnerabilities_for(
        make_component(model::ElementType::ApplicationComponent, "web_browser", "120.0"));
    for (const Vulnerability* v : patched) {
        EXPECT_NE(v->id, "V-BROWSER-1");
    }
}

TEST(Catalog, PatternsViaWeaknesses) {
    auto catalog = SecurityCatalog::standard_ics();
    auto patterns = catalog.patterns_for(make_component(model::ElementType::Controller));
    bool cmd_injection = false;
    for (const AttackPattern* p : patterns) {
        if (p->id == "P-CMD-INJECT") cmd_injection = true;
    }
    EXPECT_TRUE(cmd_injection);
    // Phishing does not apply to a bare controller.
    for (const AttackPattern* p : patterns) {
        EXPECT_NE(p->id, "P-SPEARPHISH");
    }
}

TEST(Catalog, VectorBackedSeverity) {
    auto catalog = SecurityCatalog::standard_ics();
    const Vulnerability* browser = catalog.find_vulnerability("V-BROWSER-1");
    ASSERT_NE(browser, nullptr);
    EXPECT_FALSE(browser->cvss_vector.empty());
    // The vector-computed score matches the recorded number.
    EXPECT_DOUBLE_EQ(browser->effective_cvss(), 8.8);
    EXPECT_EQ(browser->severity_level(), qual::Level::VeryHigh);
    const Vulnerability* plc = catalog.find_vulnerability("V-PLC-1");
    ASSERT_NE(plc, nullptr);
    EXPECT_DOUBLE_EQ(plc->effective_cvss(), 9.8);
}

TEST(Catalog, Lookups) {
    auto catalog = SecurityCatalog::standard_ics();
    EXPECT_NE(catalog.find_weakness("W-RCE"), nullptr);
    EXPECT_EQ(catalog.find_weakness("W-NOPE"), nullptr);
    EXPECT_NE(catalog.find_vulnerability("V-PLC-1"), nullptr);
    EXPECT_NE(catalog.find_pattern("P-DRIVEBY"), nullptr);
    ASSERT_NE(catalog.find_vulnerability("V-PLC-1"), nullptr);
    EXPECT_EQ(catalog.find_vulnerability("V-PLC-1")->severity_level(), qual::Level::VeryHigh);
}

TEST(Catalog, EveryVulnerabilityReferencesKnownWeakness) {
    auto catalog = SecurityCatalog::standard_ics();
    for (const Vulnerability& v : catalog.vulnerabilities()) {
        EXPECT_NE(catalog.find_weakness(v.weakness_id), nullptr) << v.id;
    }
    for (const AttackPattern& p : catalog.patterns()) {
        for (const std::string& w : p.exploits_weaknesses) {
            EXPECT_NE(catalog.find_weakness(w), nullptr) << p.id;
        }
    }
}

}  // namespace
}  // namespace cprisk::security
