// Attack-cost metrics (§IV-D): path costs and the "most efficient attack"
// query.
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "security/attack_graph.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::security {
namespace {

ThreatActor actor_by_id(const std::string& id) {
    for (const ThreatActor& actor : standard_threat_actors()) {
        if (actor.id == id) return actor;
    }
    ADD_FAILURE() << "unknown actor " << id;
    return {};
}

TEST(AttackCost, TechniquesCarryCosts) {
    auto matrix = AttackMatrix::standard_ics();
    for (const Technique& technique : matrix.techniques()) {
        EXPECT_GT(technique.attack_cost, 0) << technique.id;
    }
    // Sophisticated OT techniques cost more than commodity phishing.
    ASSERT_NE(matrix.find_technique("T-MOD-LOGIC"), nullptr);
    ASSERT_NE(matrix.find_technique("T-SPEARPHISH"), nullptr);
    EXPECT_GT(matrix.find_technique("T-MOD-LOGIC")->attack_cost,
              matrix.find_technique("T-SPEARPHISH")->attack_cost);
}

TEST(AttackCost, PathCostSumsTechniques) {
    auto matrix = AttackMatrix::standard_ics();
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    auto graph = AttackGraph::build(built.value().system, matrix, actor_by_id("A-APT"));

    AttackPath path;
    path.steps = {{"workstation", "T-USER-EXec", "infected"},
                  {"out_valve_ctrl", "T-MOD-PARAM", "wrong_command"}};
    EXPECT_EQ(graph.path_cost(path), 1 + 5);
}

TEST(AttackCost, CheapestPathIsMinimal) {
    auto matrix = AttackMatrix::standard_ics();
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    auto graph = AttackGraph::build(built.value().system, matrix, actor_by_id("A-APT"));

    const auto target = core::watertank_ids::kOutValveCtrl;
    auto cheapest = graph.cheapest_path_to(target);
    ASSERT_TRUE(cheapest.ok()) << cheapest.error();
    const long long best = graph.path_cost(cheapest.value());
    for (const AttackPath& path : graph.paths_to(target)) {
        EXPECT_LE(best, graph.path_cost(path)) << path.to_string();
    }
    EXPECT_GT(best, 0);
}

TEST(AttackCost, UnreachableTargetFails) {
    auto matrix = AttackMatrix::standard_ics();
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    // The opportunistic actor has no entry point into the base model.
    auto graph = AttackGraph::build(built.value().system, matrix, actor_by_id("A-SCRIPT"));
    EXPECT_FALSE(graph.cheapest_path_to(core::watertank_ids::kTank).ok());
}

TEST(AttackCost, CapableActorsPayLessOrEqual) {
    // Property: a more capable actor has more techniques available, so the
    // cheapest attack can only get cheaper (or unlock entirely).
    auto matrix = AttackMatrix::standard_ics();
    auto built = core::WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok());
    const auto target = core::watertank_ids::kOutValveCtrl;

    auto insider = AttackGraph::build(built.value().system, matrix, actor_by_id("A-INSIDER"));
    auto apt = AttackGraph::build(built.value().system, matrix, actor_by_id("A-APT"));
    auto insider_best = insider.cheapest_path_to(target);
    auto apt_best = apt.cheapest_path_to(target);
    ASSERT_TRUE(apt_best.ok());
    if (insider_best.ok()) {
        EXPECT_LE(apt.path_cost(apt_best.value()),
                  insider.path_cost(insider_best.value()));
    }
}

}  // namespace
}  // namespace cprisk::security
