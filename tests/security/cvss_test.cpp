// CVSS v3.1 base scores against officially published vector/score pairs.
#include <gtest/gtest.h>

#include "security/cvss.hpp"

namespace cprisk::security {
namespace {

double score(const char* vector) {
    auto result = cvss_base_score(vector);
    EXPECT_TRUE(result.ok()) << result.error();
    return result.value_or(-1.0);
}

TEST(Cvss, PublishedReferenceScores) {
    // Canonical vectors with scores published in NVD / the v3.1 spec examples.
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"), 10.0);
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N"), 5.5);
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"), 6.1);  // typical XSS
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"), 7.5);  // DoS
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"), 8.8);
    EXPECT_DOUBLE_EQ(score("CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"), 1.6);
}

TEST(Cvss, ZeroImpactScoresZero) {
    EXPECT_DOUBLE_EQ(score("AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), 0.0);
    EXPECT_DOUBLE_EQ(score("AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N"), 0.0);
}

TEST(Cvss, PrefixOptional) {
    EXPECT_DOUBLE_EQ(score("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
}

TEST(Cvss, ScopeChangedRaisesPrivilegeWeight) {
    // Same metrics, scope changed vs unchanged with PR:L — changed is higher
    // both through the 1.08 factor and the PR weight bump.
    const double unchanged = score("AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H");
    const double changed = score("AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H");
    EXPECT_GT(changed, unchanged);
    EXPECT_DOUBLE_EQ(changed, 9.9);
}

TEST(Cvss, SeverityBands) {
    auto level = [&](const char* vector) {
        return parse_cvss(vector).value().severity_level();
    };
    EXPECT_EQ(level("AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), qual::Level::VeryLow);  // 0.0
    EXPECT_EQ(level("AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"), qual::Level::Low);      // 1.6
    EXPECT_EQ(level("AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N"), qual::Level::Medium);   // 5.5
    EXPECT_EQ(level("AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"), qual::Level::High);     // 7.5
    EXPECT_EQ(level("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), qual::Level::VeryHigh); // 9.8
}

TEST(Cvss, VectorRoundTrip) {
    const char* vectors[] = {
        "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
        "CVSS:3.1/AV:L/AC:H/PR:L/UI:R/S:C/C:L/I:N/A:L",
        "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:N/I:L/A:N",
    };
    for (const char* vector : vectors) {
        auto parsed = parse_cvss(vector);
        ASSERT_TRUE(parsed.ok()) << parsed.error();
        EXPECT_EQ(parsed.value().to_vector(), vector);
    }
}

TEST(Cvss, MalformedVectorsRejected) {
    EXPECT_FALSE(parse_cvss("").ok());
    EXPECT_FALSE(parse_cvss("AV:N/AC:L").ok());                          // missing metrics
    EXPECT_FALSE(parse_cvss("AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H").ok());  // bad value
    EXPECT_FALSE(parse_cvss("AVN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H").ok());   // no colon
}

TEST(Cvss, MonotoneInImpact) {
    // Property: raising any impact metric never lowers the score.
    const char* levels[] = {"N", "L", "H"};
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i + 1 < 3; ++i) {
            std::string lower = std::string("AV:N/AC:L/PR:N/UI:N/S:U/C:") + levels[c] +
                                "/I:" + levels[i] + "/A:N";
            std::string higher = std::string("AV:N/AC:L/PR:N/UI:N/S:U/C:") + levels[c] +
                                 "/I:" + levels[i + 1] + "/A:N";
            EXPECT_LE(score(lower.c_str()), score(higher.c_str())) << lower;
        }
    }
}

}  // namespace
}  // namespace cprisk::security
