// Engine neutrality end to end: the CDCL and DPLL engines must produce
// byte-identical reports and journals over the case-study bundles, and a
// journal written under one engine must resume under the other — the
// `--solver` escape hatch may never strand a checkpointed run. (SolveStats
// fields that only the CDCL engine fills are deliberately not serialized
// into journals; see asp/solver.hpp.)
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/reactor.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

struct Bundle {
    std::string name;
    std::unique_ptr<RiskAssessment> assessment;
    AssessmentConfig config;
    std::shared_ptr<void> owner;
};

Bundle make_watertank() {
    auto built = WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "watertank";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.owner = cs;
    return bundle;
}

Bundle make_reactor() {
    auto built = ReactorCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<ReactorCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "reactor";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.config.max_simultaneous_faults = 1;
    bundle.owner = cs;
    return bundle;
}

std::string renderings(const AssessmentReport& report) {
    return render_markdown(report) + "\n===\n" + render_risk_csv(report) + "\n===\n" +
           render_report_json(report);
}

std::string file_bytes(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream content;
    content << file.rdbuf();
    return content.str();
}

class EngineDifferentialTest : public ::testing::TestWithParam<Bundle (*)()> {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_P(EngineDifferentialTest, CdclAndDpllReportsAndJournalsAreByteIdentical) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);

    const std::string journal_cdcl =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_cdcl.jsonl";
    const std::string journal_dpll =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_dpll.jsonl";
    std::remove(journal_cdcl.c_str());
    std::remove(journal_dpll.c_str());

    AssessmentConfig cdcl = bundle.config;
    cdcl.solver = asp::SolverEngine::Cdcl;
    cdcl.journal_path = journal_cdcl;
    auto cdcl_report = bundle.assessment->run(cdcl);
    ASSERT_TRUE(cdcl_report.ok()) << cdcl_report.error();

    AssessmentConfig dpll = bundle.config;
    dpll.solver = asp::SolverEngine::Dpll;
    dpll.journal_path = journal_dpll;
    auto dpll_report = bundle.assessment->run(dpll);
    ASSERT_TRUE(dpll_report.ok()) << dpll_report.error();

    EXPECT_EQ(renderings(cdcl_report.value()), renderings(dpll_report.value()));
    EXPECT_EQ(file_bytes(journal_cdcl), file_bytes(journal_dpll));

    std::remove(journal_cdcl.c_str());
    std::remove(journal_dpll.c_str());
}

TEST_P(EngineDifferentialTest, JournalWrittenUnderOneEngineResumesUnderTheOther) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);
    const std::string journal =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_xengine.jsonl";
    std::remove(journal.c_str());

    AssessmentConfig plain = bundle.config;
    plain.solver = asp::SolverEngine::Cdcl;
    auto clean = bundle.assessment->run(plain);
    ASSERT_TRUE(clean.ok()) << clean.error();

    // Kill a CDCL run on its 3rd journal append, then resume the journal
    // under the DPLL engine. The engine is deliberately not part of the
    // journal's config echo, so the resume must replay the two surviving
    // records and finish byte-identically to the clean run.
    AssessmentConfig journaled = bundle.config;
    journaled.solver = asp::SolverEngine::Cdcl;
    journaled.journal_path = journal;
    fault::arm("core.journal.append", 3);
    ASSERT_FALSE(bundle.assessment->run(journaled).ok());
    fault::reset();
    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    ASSERT_EQ(contents.value().records.size(), 2u);

    journaled.solver = asp::SolverEngine::Dpll;
    journaled.resume = true;
    auto resumed = bundle.assessment->run(journaled);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));

    std::remove(journal.c_str());
}

INSTANTIATE_TEST_SUITE_P(Bundles, EngineDifferentialTest,
                         ::testing::Values(&make_watertank, &make_reactor),
                         [](const ::testing::TestParamInfo<Bundle (*)()>& info) {
                             return info.index == 0 ? "watertank" : "reactor";
                         });

}  // namespace
}  // namespace cprisk::core
