// Determinism across --jobs: the worker count must never change a single
// output byte. Reports (markdown/CSV/JSON), journals, and resumed runs are
// compared byte-for-byte between jobs=1 (the sequential engine) and jobs=8,
// over both case-study bundles, including an interrupted-then-resumed run
// and a resume under a *different* job count than the original run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/reactor.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

struct Bundle {
    std::string name;
    std::unique_ptr<RiskAssessment> assessment;
    AssessmentConfig config;
    std::shared_ptr<void> owner;
};

Bundle make_watertank() {
    auto built = WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "watertank";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.owner = cs;
    return bundle;
}

Bundle make_reactor() {
    auto built = ReactorCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<ReactorCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "reactor";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.config.max_simultaneous_faults = 1;
    bundle.owner = cs;
    return bundle;
}

std::string renderings(const AssessmentReport& report) {
    return render_markdown(report) + "\n===\n" + render_risk_csv(report) + "\n===\n" +
           render_report_json(report);
}

std::string file_bytes(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream content;
    content << file.rdbuf();
    return content.str();
}

class ParallelDeterminismTest : public ::testing::TestWithParam<Bundle (*)()> {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_P(ParallelDeterminismTest, ReportsAndJournalsAreByteIdenticalAcrossJobs) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);

    const std::string journal_seq =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_jobs1.jsonl";
    const std::string journal_par =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_jobs8.jsonl";
    std::remove(journal_seq.c_str());
    std::remove(journal_par.c_str());

    AssessmentConfig sequential = bundle.config;
    sequential.jobs = 1;
    sequential.journal_path = journal_seq;
    auto seq_report = bundle.assessment->run(sequential);
    ASSERT_TRUE(seq_report.ok()) << seq_report.error();

    AssessmentConfig parallel = bundle.config;
    parallel.jobs = 8;
    parallel.journal_path = journal_par;
    auto par_report = bundle.assessment->run(parallel);
    ASSERT_TRUE(par_report.ok()) << par_report.error();

    EXPECT_EQ(renderings(seq_report.value()), renderings(par_report.value()));
    EXPECT_EQ(file_bytes(journal_seq), file_bytes(journal_par));

    std::remove(journal_seq.c_str());
    std::remove(journal_par.c_str());
}

TEST_P(ParallelDeterminismTest, InterruptedParallelRunResumesUnderAnyJobCount) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);
    const std::string journal =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_parkill.jsonl";
    std::remove(journal.c_str());

    AssessmentConfig plain = bundle.config;
    plain.jobs = 1;
    auto clean = bundle.assessment->run(plain);
    ASSERT_TRUE(clean.ok()) << clean.error();

    // Kill a jobs=8 run on its 3rd journal append. Appends are drained in
    // scenario order at any job count, so exactly the first two records
    // survive — same as a sequential kill.
    AssessmentConfig journaled = bundle.config;
    journaled.jobs = 8;
    journaled.journal_path = journal;
    fault::arm("core.journal.append", 3);
    auto killed = bundle.assessment->run(journaled);
    fault::reset();
    ASSERT_FALSE(killed.ok());
    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    EXPECT_EQ(contents.value().records.size(), 2u);

    // Resume under a different job count: jobs is deliberately not part of
    // the journal's config echo, and the result must match the clean run.
    journaled.jobs = 1;
    journaled.resume = true;
    auto resumed_seq = bundle.assessment->run(journaled);
    ASSERT_TRUE(resumed_seq.ok()) << resumed_seq.error();
    EXPECT_EQ(resumed_seq.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed_seq.value()), renderings(clean.value()));
    const std::string journal_after_seq_resume = file_bytes(journal);

    // Kill again the same way, resume with jobs=8 this time: the journal
    // after resume must be byte-identical to the jobs=1 resume.
    std::remove(journal.c_str());
    journaled.resume = false;
    journaled.jobs = 8;
    fault::arm("core.journal.append", 3);
    ASSERT_FALSE(bundle.assessment->run(journaled).ok());
    fault::reset();
    journaled.resume = true;
    auto resumed_par = bundle.assessment->run(journaled);
    ASSERT_TRUE(resumed_par.ok()) << resumed_par.error();
    EXPECT_EQ(resumed_par.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed_par.value()), renderings(clean.value()));
    EXPECT_EQ(file_bytes(journal), journal_after_seq_resume);

    std::remove(journal.c_str());
}

TEST_P(ParallelDeterminismTest, AutoJobsMatchesSequentialOutput) {
    // jobs = 0 resolves to hardware concurrency; still byte-identical.
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);

    AssessmentConfig sequential = bundle.config;
    sequential.jobs = 1;
    auto seq_report = bundle.assessment->run(sequential);
    ASSERT_TRUE(seq_report.ok()) << seq_report.error();

    AssessmentConfig automatic = bundle.config;
    automatic.jobs = 0;
    auto auto_report = bundle.assessment->run(automatic);
    ASSERT_TRUE(auto_report.ok()) << auto_report.error();
    EXPECT_EQ(renderings(seq_report.value()), renderings(auto_report.value()));
}

INSTANTIATE_TEST_SUITE_P(Bundles, ParallelDeterminismTest,
                         ::testing::Values(&make_watertank, &make_reactor),
                         [](const ::testing::TestParamInfo<Bundle (*)()>& info) {
                             return info.index == 0 ? "watertank" : "reactor";
                         });

}  // namespace
}  // namespace cprisk::core
