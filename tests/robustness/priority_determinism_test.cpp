// Expected-risk priority sweeps (risk/prior.hpp, AssessmentConfig::
// priority_policy) must not cost any determinism guarantee: reports and
// journals stay byte-identical across --jobs and the static-prefilter
// toggle, the journal echoes the policy and orders its records by
// descending expected risk, a kill mid-sweep resumes byte-identically, and
// the enumeration policy still reproduces the same verdict set.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

struct Fixture {
    std::shared_ptr<WaterTankCaseStudy> cs;
    std::unique_ptr<RiskAssessment> assessment;
    AssessmentConfig config;
};

Fixture make_fixture() {
    auto built = WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    Fixture fixture;
    fixture.cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    fixture.assessment = std::make_unique<RiskAssessment>(
        fixture.cs->system, fixture.cs->requirements, fixture.cs->topology_requirements,
        fixture.cs->matrix, fixture.cs->mitigations);
    fixture.config.horizon = fixture.cs->horizon;
    fixture.config.include_attack_scenarios = false;
    fixture.config.priority_policy = risk::PriorityPolicy::ExpectedRisk;
    return fixture;
}

std::string renderings(const AssessmentReport& report) {
    return render_markdown(report) + "\n===\n" + render_risk_csv(report) + "\n===\n" +
           render_report_json(report);
}

std::string file_bytes(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream content;
    content << file.rdbuf();
    return content.str();
}

class PriorityDeterminismTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(PriorityDeterminismTest, ByteIdenticalAcrossJobsAndPrefilter) {
    // Byte-identity holds across jobs for every prefilter setting. The
    // toggle itself legitimately moves observability payloads (the
    // statically-resolved counter in reports, verdict provenance and solver
    // stats in journals) without changing any verdict, so comparisons are
    // scoped per prefilter value.
    Fixture fixture = make_fixture();
    for (const bool prefilter : {true, false}) {
        std::string reference;
        std::string reference_journal;
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
            const std::string journal = ::testing::TempDir() + "cprisk_prio_" +
                                        std::to_string(jobs) +
                                        (prefilter ? "_pf" : "_nopf") + ".jsonl";
            std::remove(journal.c_str());
            AssessmentConfig config = fixture.config;
            config.jobs = jobs;
            config.static_prefilter = prefilter;
            config.journal_path = journal;
            auto report = fixture.assessment->run(config);
            ASSERT_TRUE(report.ok()) << report.error();
            const std::string rendered = renderings(report.value());
            const std::string journal_bytes = file_bytes(journal);
            if (reference.empty()) {
                reference = rendered;
            } else {
                EXPECT_EQ(rendered, reference) << "jobs=" << jobs << " pf=" << prefilter;
            }
            if (reference_journal.empty()) {
                reference_journal = journal_bytes;
            } else {
                EXPECT_EQ(journal_bytes, reference_journal)
                    << "jobs=" << jobs << " pf=" << prefilter;
            }
            std::remove(journal.c_str());
        }
    }
}

TEST_F(PriorityDeterminismTest, JournalEchoesPolicyAndOrdersByDescendingRisk) {
    Fixture fixture = make_fixture();
    const std::string journal = ::testing::TempDir() + "cprisk_prio_order.jsonl";
    std::remove(journal.c_str());
    AssessmentConfig config = fixture.config;
    config.journal_path = journal;
    ASSERT_TRUE(fixture.assessment->run(config).ok());

    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    const json::Value* echo = contents.value().header.get("config");
    ASSERT_NE(echo, nullptr);
    const json::Value* policy = echo->get("priority_policy");
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->as_string(), "expected_risk");

    ASSERT_FALSE(contents.value().records.empty());
    long long previous = -1;
    for (const hierarchy::ScenarioRecord& record : contents.value().records) {
        EXPECT_GE(record.expected_risk_micros, 0);
        if (previous >= 0) {
            EXPECT_LE(record.expected_risk_micros, previous);
        }
        previous = record.expected_risk_micros;
    }
    std::remove(journal.c_str());
}

TEST_F(PriorityDeterminismTest, KilledSweepResumesByteIdentically) {
    Fixture fixture = make_fixture();
    const std::string journal = ::testing::TempDir() + "cprisk_prio_kill.jsonl";
    std::remove(journal.c_str());

    auto clean = fixture.assessment->run(fixture.config);
    ASSERT_TRUE(clean.ok()) << clean.error();

    // Kill on the 3rd journal append: exactly the two highest-risk
    // scenarios survive, regardless of job count.
    AssessmentConfig journaled = fixture.config;
    journaled.jobs = 8;
    journaled.journal_path = journal;
    fault::arm("core.journal.append", 3);
    ASSERT_FALSE(fixture.assessment->run(journaled).ok());
    fault::reset();
    auto partial = load_journal(journal);
    ASSERT_TRUE(partial.ok()) << partial.error();
    ASSERT_EQ(partial.value().records.size(), 2u);
    EXPECT_GE(partial.value().records[0].expected_risk_micros,
              partial.value().records[1].expected_risk_micros);

    // Resume under a different job count; the report must match the clean
    // run byte-for-byte.
    journaled.jobs = 1;
    journaled.resume = true;
    auto resumed = fixture.assessment->run(journaled);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));
    std::remove(journal.c_str());
}

TEST_F(PriorityDeterminismTest, EnumerationPolicyKeepsTheVerdictSet) {
    Fixture fixture = make_fixture();
    auto prioritized = fixture.assessment->run(fixture.config);
    ASSERT_TRUE(prioritized.ok()) << prioritized.error();

    AssessmentConfig enumeration = fixture.config;
    enumeration.priority_policy = risk::PriorityPolicy::Enumeration;
    auto enumerated = fixture.assessment->run(enumeration);
    ASSERT_TRUE(enumerated.ok()) << enumerated.error();

    // Same hazards and risks; only the evaluation (and journal) order and
    // the Completeness coverage summary differ.
    EXPECT_EQ(prioritized.value().hazards.size(), enumerated.value().hazards.size());
    EXPECT_EQ(prioritized.value().risks.size(), enumerated.value().risks.size());
    EXPECT_TRUE(prioritized.value().priority.enabled);
    EXPECT_FALSE(enumerated.value().priority.enabled);
    EXPECT_EQ(enumerated.value().priority.policy, "enumeration");
}

}  // namespace
}  // namespace cprisk::core
