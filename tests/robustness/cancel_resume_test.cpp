// CancelToken propagation end-to-end (docs/robustness.md): a journaled run
// cancelled mid-sweep stays resumable — cancelled records are re-evaluated
// on resume, finished ones replay verbatim — and the resumed report is
// byte-identical to an uninterrupted run, at any job count and under any
// cancellation interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "common/budget.hpp"
#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"
#include "obs/run_context.hpp"

namespace cprisk::core {
namespace {

std::string renderings(const AssessmentReport& report) {
    return render_markdown(report) + "\n===\n" + render_risk_csv(report) + "\n===\n" +
           render_report_json(report);
}

class CancelResumeTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(CancelResumeTest, MidSweepCancelResumesToUninterruptedReport) {
    auto built = WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    RiskAssessment assessment(cs->system, cs->requirements, cs->topology_requirements,
                              cs->matrix, cs->mitigations);
    AssessmentConfig config;
    config.horizon = cs->horizon;
    config.include_attack_scenarios = false;

    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        const std::string journal =
            ::testing::TempDir() + "cprisk_cancel_" + std::to_string(jobs) + ".jsonl";
        std::remove(journal.c_str());

        RunContext clean_ctx;
        clean_ctx.jobs = jobs;
        auto clean = assessment.run(config, clean_ctx);
        ASSERT_TRUE(clean.ok()) << clean.error();

        // Cancel mid-sweep: the prefilter seam's hit count is a progress
        // proxy, so the watcher pulls the token after a couple of scenario
        // evaluations have gone through.
        CancelToken token;
        const std::size_t baseline = fault::hits("epa.absint.prefilter");
        std::atomic<bool> stop_watcher{false};
        std::thread watcher([&] {
            while (!stop_watcher.load()) {
                if (fault::hits("epa.absint.prefilter") >= baseline + 2) {
                    token.request_cancel();
                    return;
                }
                std::this_thread::yield();
            }
        });

        AssessmentConfig cancelled_config = config;
        cancelled_config.journal_path = journal;
        cancelled_config.cancel = token;
        RunContext cancelled_ctx;
        cancelled_ctx.jobs = jobs;
        auto cancelled = assessment.run(cancelled_config, cancelled_ctx);
        stop_watcher.store(true);
        watcher.join();
        // Cancellation degrades scenarios to Undetermined{cancelled}; the
        // run itself still succeeds with a partial report.
        ASSERT_TRUE(cancelled.ok()) << cancelled.error();

        AssessmentConfig resume_config = config;
        resume_config.journal_path = journal;
        resume_config.resume = true;
        RunContext resume_ctx;
        resume_ctx.jobs = jobs;
        auto resumed = assessment.run(resume_config, resume_ctx);
        ASSERT_TRUE(resumed.ok()) << resumed.error();
        EXPECT_TRUE(resumed.value().complete());
        EXPECT_EQ(renderings(resumed.value()), renderings(clean.value())) << "jobs=" << jobs;
        std::remove(journal.c_str());
    }
}

TEST_F(CancelResumeTest, FullyCancelledRunResumesFromScratch) {
    auto built = WaterTankCaseStudy::build();
    ASSERT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    RiskAssessment assessment(cs->system, cs->requirements, cs->topology_requirements,
                              cs->matrix, cs->mitigations);
    AssessmentConfig config;
    config.horizon = cs->horizon;
    config.include_attack_scenarios = false;

    auto clean = assessment.run(config);
    ASSERT_TRUE(clean.ok()) << clean.error();

    const std::string journal = ::testing::TempDir() + "cprisk_cancel_all.jsonl";
    std::remove(journal.c_str());

    // The token is already pulled when the run starts: every scenario is
    // journaled as cancelled, deterministically.
    CancelToken token;
    token.request_cancel();
    AssessmentConfig cancelled_config = config;
    cancelled_config.journal_path = journal;
    cancelled_config.cancel = token;
    auto cancelled = assessment.run(cancelled_config);
    ASSERT_TRUE(cancelled.ok()) << cancelled.error();
    EXPECT_FALSE(cancelled.value().complete());

    // Resume drops every cancelled record (the interruption belongs to the
    // run, not the scenario) and re-evaluates from scratch.
    AssessmentConfig resume_config = config;
    resume_config.journal_path = journal;
    resume_config.resume = true;
    auto resumed = assessment.run(resume_config);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 0u);
    EXPECT_TRUE(resumed.value().complete());
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));
    std::remove(journal.c_str());
}

}  // namespace
}  // namespace cprisk::core
