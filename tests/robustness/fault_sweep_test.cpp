// Sweeps every registered fault-injection site: an injected failure at any
// seam must leave the pipeline either succeeding with a sound partial
// report or failing with a clean diagnostic — never crashing and never
// dropping a true hazard silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

/// Parametrized over the worker count: every seam must degrade cleanly in
/// both the sequential engine and under the thread pool (where the injected
/// failure lands on a nondeterministic scenario — the soundness assertions
/// below are schedule-independent by design).
class FaultSweepFixture : public ::testing::TestWithParam<std::size_t> {
protected:
    static void SetUpTestSuite() {
        auto built = WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new WaterTankCaseStudy(std::move(built).value());
        assessment_ = new RiskAssessment(cs_->system, cs_->requirements,
                                         cs_->topology_requirements, cs_->matrix,
                                         cs_->mitigations);
    }
    static void TearDownTestSuite() {
        delete assessment_;
        delete cs_;
        assessment_ = nullptr;
        cs_ = nullptr;
    }

    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }

    AssessmentConfig config(const std::string& journal) const {
        AssessmentConfig c;
        c.horizon = cs_->horizon;
        c.include_attack_scenarios = false;
        c.journal_path = journal;
        c.jobs = GetParam();
        // The static prefilter decides every watertank scenario without a
        // solver call, which would leave the asp.solver.* seams unregistered
        // and unswept. The prefilter's own seam has a dedicated test below.
        c.static_prefilter = false;
        return c;
    }

    static std::set<std::string> hazard_ids(const AssessmentReport& report) {
        std::set<std::string> ids;
        for (const auto& hazard : report.hazards) ids.insert(hazard.scenario_id);
        return ids;
    }

    static WaterTankCaseStudy* cs_;
    static RiskAssessment* assessment_;
};

WaterTankCaseStudy* FaultSweepFixture::cs_ = nullptr;
RiskAssessment* FaultSweepFixture::assessment_ = nullptr;

TEST_P(FaultSweepFixture, EveryFailureSeamDegradesCleanly) {
    // A clean journaled reference run hits (and thereby registers) every
    // site; the sweep below therefore covers seams added later for free.
    const std::string reference_journal = ::testing::TempDir() + "cprisk_sweep_ref.jsonl";
    auto clean = assessment_->run(config(reference_journal));
    ASSERT_TRUE(clean.ok()) << clean.error();
    const std::set<std::string> clean_hazards = hazard_ids(clean.value());
    std::remove(reference_journal.c_str());

    const std::vector<std::string> sites = fault::registered_sites();
    for (const char* expected : {"asp.grounder.ground", "asp.solver.solve",
                                 "asp.solver.stability", "core.journal.open",
                                 "core.journal.append"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
            << "seam not exercised by the reference run: " << expected;
    }

    for (const std::string& site : sites) {
        // Fire on the first hit and again in the middle of the run: both the
        // "fails immediately" and the "fails after partial progress" shapes.
        for (int countdown : {1, 4}) {
            SCOPED_TRACE(site + " countdown=" + std::to_string(countdown));
            const std::string journal = ::testing::TempDir() + "cprisk_sweep.jsonl";
            std::remove(journal.c_str());
            fault::reset();
            fault::arm(site, countdown);

            auto report = assessment_->run(config(journal));
            fault::reset();

            if (!report.ok()) {
                // A hard failure (journal I/O) must carry a diagnostic that
                // names the problem.
                EXPECT_FALSE(report.error().empty());
                EXPECT_NE(report.error().find("journal"), std::string::npos)
                    << report.error();
            } else {
                const AssessmentReport& r = report.value();
                // Sound partial result: no invented hazards...
                for (const auto& id : hazard_ids(r)) {
                    EXPECT_TRUE(clean_hazards.count(id)) << "spurious hazard " << id;
                }
                // ...and no true hazard lost without being flagged.
                std::set<std::string> accounted = hazard_ids(r);
                for (const auto& v : r.undetermined) accounted.insert(v.scenario_id);
                for (const auto& id : clean_hazards) {
                    EXPECT_TRUE(accounted.count(id)) << "lost hazard " << id;
                }
                // Partial runs must say so in every rendering.
                if (!r.complete()) {
                    EXPECT_NE(render_markdown(r).find("PARTIAL RESULT"), std::string::npos);
                }
            }
            std::remove(journal.c_str());
        }
    }
}

TEST_P(FaultSweepFixture, SolverFaultMidRunStillDecidesOtherScenarios) {
    fault::arm("asp.solver.solve", 4);
    auto report = assessment_->run(config(""));
    fault::reset();
    ASSERT_TRUE(report.ok()) << report.error();
    const AssessmentReport& r = report.value();
    // One injected failure cannot blank the whole run: most scenarios decide.
    EXPECT_LT(r.undetermined.size(), r.scenario_count / 2);
    for (const auto& v : r.undetermined) {
        ASSERT_TRUE(v.undetermined_reason.has_value());
        EXPECT_EQ(*v.undetermined_reason, epa::UndeterminedReason::SolverError);
    }
}

TEST_P(FaultSweepFixture, PrefilterFaultFallsBackToTheSolver) {
    AssessmentConfig prefiltered = config("");
    prefiltered.static_prefilter = true;

    auto clean = assessment_->run(prefiltered);
    ASSERT_TRUE(clean.ok()) << clean.error();
    ASSERT_GT(clean.value().statically_resolved, 0u);
    const std::vector<std::string> sites = fault::registered_sites();
    ASSERT_NE(std::find(sites.begin(), sites.end(), "epa.absint.prefilter"), sites.end())
        << "prefilter seam not exercised by the reference run";

    // A failing prefilter is invisible except for provenance: the scenario
    // falls back to the DPLL path and gets the same verdict.
    for (int countdown : {1, 4}) {
        SCOPED_TRACE("countdown=" + std::to_string(countdown));
        fault::reset();
        fault::arm("epa.absint.prefilter", countdown);
        auto report = assessment_->run(prefiltered);
        fault::reset();
        ASSERT_TRUE(report.ok()) << report.error();
        EXPECT_TRUE(report.value().complete());
        EXPECT_EQ(hazard_ids(report.value()), hazard_ids(clean.value()));
        // The faulted evaluation may not be the one backing a final verdict
        // (an earlier CEGAR stage), so the count can only stay or drop.
        EXPECT_LE(report.value().statically_resolved, clean.value().statically_resolved);
    }
}

INSTANTIATE_TEST_SUITE_P(Jobs, FaultSweepFixture, ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return "jobs" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cprisk::core
