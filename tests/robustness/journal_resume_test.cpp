// Checkpoint/resume: a run killed mid-journal resumes and produces reports
// byte-identical to an uninterrupted run, over both case-study bundles.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/reactor.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

/// One case-study bundle prepared for assessment.
struct Bundle {
    std::string name;
    std::unique_ptr<RiskAssessment> assessment;
    AssessmentConfig config;

    // Keeps the borrowed inputs alive.
    std::shared_ptr<void> owner;
};

Bundle make_watertank() {
    auto built = WaterTankCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<WaterTankCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "watertank";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.owner = cs;
    return bundle;
}

Bundle make_reactor() {
    auto built = ReactorCaseStudy::build();
    EXPECT_TRUE(built.ok()) << built.error();
    auto cs = std::make_shared<ReactorCaseStudy>(std::move(built).value());
    Bundle bundle;
    bundle.name = "reactor";
    bundle.assessment = std::make_unique<RiskAssessment>(
        cs->system, cs->requirements, cs->topology_requirements, cs->matrix, cs->mitigations);
    bundle.config.horizon = cs->horizon;
    bundle.config.include_attack_scenarios = false;
    bundle.config.max_simultaneous_faults = 1;
    bundle.owner = cs;
    return bundle;
}

/// Every user-visible rendering of a report, for byte-identity checks.
std::string renderings(const AssessmentReport& report) {
    return render_markdown(report) + "\n===\n" + render_risk_csv(report) + "\n===\n" +
           render_report_json(report);
}

class JournalResumeTest : public ::testing::TestWithParam<Bundle (*)()> {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_P(JournalResumeTest, ResumeAfterMidRunKillReproducesCleanReport) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);
    const std::string journal =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_kill.jsonl";
    std::remove(journal.c_str());

    auto clean = bundle.assessment->run(bundle.config);
    ASSERT_TRUE(clean.ok()) << clean.error();

    // "Kill" the run: the journal write for the 3rd scenario tears mid-line
    // and the run aborts, exactly like a process death at that point.
    AssessmentConfig journaled = bundle.config;
    journaled.journal_path = journal;
    fault::arm("core.journal.append", 3);
    auto killed = bundle.assessment->run(journaled);
    fault::reset();
    ASSERT_FALSE(killed.ok());
    EXPECT_NE(killed.error().find("journal"), std::string::npos) << killed.error();

    // The torn trailing line is tolerated; the first two records survived.
    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    EXPECT_TRUE(contents.value().torn_tail);
    EXPECT_EQ(contents.value().records.size(), 2u);

    // Resume: replays the journal, finishes the rest, byte-identical output.
    journaled.resume = true;
    auto resumed = bundle.assessment->run(journaled);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));

    // A second resume replays everything and still matches.
    auto replayed = bundle.assessment->run(journaled);
    ASSERT_TRUE(replayed.ok()) << replayed.error();
    EXPECT_EQ(replayed.value().resumed_scenarios, replayed.value().scenario_count);
    EXPECT_EQ(renderings(replayed.value()), renderings(clean.value()));
    std::remove(journal.c_str());
}

TEST_P(JournalResumeTest, SyncedJournalTearsAndResumesIdentically) {
    // --journal-sync fsyncs after every record; the torn-tail tolerance and
    // resume semantics are unchanged, and the bytes match the unsynced path.
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);
    const std::string journal =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_sync.jsonl";
    std::remove(journal.c_str());

    auto clean = bundle.assessment->run(bundle.config);
    ASSERT_TRUE(clean.ok()) << clean.error();

    AssessmentConfig journaled = bundle.config;
    journaled.journal_path = journal;
    journaled.journal_sync = true;
    fault::arm("core.journal.append", 3);
    auto killed = bundle.assessment->run(journaled);
    fault::reset();
    ASSERT_FALSE(killed.ok());

    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    EXPECT_TRUE(contents.value().torn_tail);
    EXPECT_EQ(contents.value().records.size(), 2u);

    journaled.resume = true;
    auto resumed = bundle.assessment->run(journaled);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ(resumed.value().resumed_scenarios, 2u);
    EXPECT_EQ(renderings(resumed.value()), renderings(clean.value()));
    std::remove(journal.c_str());
}

TEST_P(JournalResumeTest, ResumeRefusesJournalFromDifferentConfiguration) {
    Bundle bundle = GetParam()();
    ASSERT_NE(bundle.assessment, nullptr);
    const std::string journal =
        ::testing::TempDir() + "cprisk_" + bundle.name + "_cfg.jsonl";
    std::remove(journal.c_str());

    AssessmentConfig journaled = bundle.config;
    journaled.journal_path = journal;
    ASSERT_TRUE(bundle.assessment->run(journaled).ok());

    journaled.resume = true;
    journaled.horizon += 1;  // verdict-affecting change
    auto mismatched = bundle.assessment->run(journaled);
    ASSERT_FALSE(mismatched.ok());
    EXPECT_NE(mismatched.error().find("configuration"), std::string::npos)
        << mismatched.error();

    // A deadline change is run-specific and must NOT invalidate the journal.
    journaled.horizon -= 1;
    journaled.deadline_ms = 600000;
    auto compatible = bundle.assessment->run(journaled);
    EXPECT_TRUE(compatible.ok()) << compatible.error();
    std::remove(journal.c_str());
}

INSTANTIATE_TEST_SUITE_P(Bundles, JournalResumeTest,
                         ::testing::Values(&make_watertank, &make_reactor),
                         [](const ::testing::TestParamInfo<Bundle (*)()>& info) {
                             return info.index == 0 ? "watertank" : "reactor";
                         });

TEST(JournalTest, RecordRoundTripIsLossless) {
    hierarchy::ScenarioRecord record;
    record.scenario_id = "S42";
    record.outcome = hierarchy::ScenarioOutcome::Undetermined;
    record.stages.push_back({"topology", epa::VerdictStatus::Hazard, std::nullopt, false});
    record.stages.push_back({"behavioral", epa::VerdictStatus::Undetermined,
                             epa::UndeterminedReason::Timeout, false});
    record.stages.push_back({"topology", epa::VerdictStatus::Undetermined,
                             epa::UndeterminedReason::Timeout, true});
    record.verdict.scenario_id = "S42";
    record.verdict.status = epa::VerdictStatus::Undetermined;
    record.verdict.undetermined_reason = epa::UndeterminedReason::Timeout;
    record.verdict.undetermined_detail = "scenario S42: wall-clock deadline exceeded";
    record.verdict.mutations.push_back({"valve", "stuck_at_open"});
    record.verdict.active_mitigations = {"M-TRAIN"};
    record.verdict.violated_requirements = {"r1"};
    record.verdict.solver_stats.decisions = 99;
    record.verdict.solver_stats.conflicts = 3;

    const json::Value encoded = record_to_json(record);
    auto decoded = record_from_json(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    // Deterministic serialization makes byte equality a full deep compare.
    EXPECT_EQ(record_to_json(decoded.value()).serialize(), encoded.serialize());
    EXPECT_EQ(decoded.value().stages.size(), 3u);
    EXPECT_TRUE(decoded.value().stages[2].degraded);
}

TEST(JournalTest, LoaderRejectsMidFileCorruption) {
    const std::string path = ::testing::TempDir() + "cprisk_corrupt.jsonl";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"kind\":\"cprisk-journal\",\"version\":1,\"config\":{}}\n", f);
        std::fputs("this is not json\n", f);
        std::fputs("{\"kind\":\"scenario\",\"id\":\"S1\",\"outcome\":\"safe\",\"stages\":[],"
                   "\"verdict\":{\"scenario_id\":\"S1\",\"status\":\"safe\"}}\n",
                   f);
        std::fclose(f);
    }
    auto contents = load_journal(path);
    EXPECT_FALSE(contents.ok());  // corruption is NOT on the final line
    std::remove(path.c_str());
}

TEST(JournalTest, LoaderRejectsMissingOrForeignHeader) {
    const std::string path = ::testing::TempDir() + "cprisk_badheader.jsonl";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"kind\":\"something-else\"}\n", f);
        std::fclose(f);
    }
    EXPECT_FALSE(load_journal(path).ok());
    EXPECT_FALSE(load_journal(::testing::TempDir() + "cprisk_missing.jsonl").ok());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace cprisk::core
