// Graceful degradation under starved budgets: exhausted resources yield
// Undetermined verdicts and a flagged partial report, never a failed run,
// and partial results stay sound (reported hazards are real ones).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "common/fault_injection.hpp"
#include "core/assessment.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

namespace cprisk::core {
namespace {

class DegradationFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new WaterTankCaseStudy(std::move(built).value());
        assessment_ = new RiskAssessment(cs_->system, cs_->requirements,
                                         cs_->topology_requirements, cs_->matrix,
                                         cs_->mitigations);
    }
    static void TearDownTestSuite() {
        delete assessment_;
        delete cs_;
        assessment_ = nullptr;
        cs_ = nullptr;
    }

    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }

    static AssessmentConfig base_config() {
        AssessmentConfig config;
        config.horizon = cs_->horizon;
        config.include_attack_scenarios = false;
        return config;
    }

    static std::set<std::string> hazard_ids(const AssessmentReport& report) {
        std::set<std::string> ids;
        for (const auto& hazard : report.hazards) ids.insert(hazard.scenario_id);
        return ids;
    }

    static WaterTankCaseStudy* cs_;
    static RiskAssessment* assessment_;
};

WaterTankCaseStudy* DegradationFixture::cs_ = nullptr;
RiskAssessment* DegradationFixture::assessment_ = nullptr;

TEST_F(DegradationFixture, CancelledRunSucceedsWithEverythingUndetermined) {
    AssessmentConfig config = base_config();
    CancelToken cancel;
    cancel.request_cancel();  // starved from the first budget check
    config.cancel = cancel;

    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok()) << report.error();
    const AssessmentReport& r = report.value();
    EXPECT_FALSE(r.complete());
    EXPECT_EQ(r.undetermined.size(), r.scenario_count);
    EXPECT_TRUE(r.hazards.empty());
    for (const auto& verdict : r.undetermined) {
        ASSERT_TRUE(verdict.undetermined_reason.has_value()) << verdict.scenario_id;
        EXPECT_EQ(*verdict.undetermined_reason, epa::UndeterminedReason::Cancelled);
        EXPECT_NE(verdict.undetermined_detail.find(verdict.scenario_id), std::string::npos);
    }
}

TEST_F(DegradationFixture, UndeterminedScenariosAreSortedById) {
    AssessmentConfig config = base_config();
    CancelToken cancel;
    cancel.request_cancel();
    config.cancel = cancel;
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok());
    const auto& u = report.value().undetermined;
    ASSERT_GT(u.size(), 1u);
    for (std::size_t i = 0; i + 1 < u.size(); ++i) {
        EXPECT_LT(u[i].scenario_id, u[i + 1].scenario_id);
    }
}

TEST_F(DegradationFixture, PartialReportRenderingsFlagIncompleteness) {
    AssessmentConfig config = base_config();
    CancelToken cancel;
    cancel.request_cancel();
    config.cancel = cancel;
    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok());
    const AssessmentReport& r = report.value();

    const std::string md = render_markdown(r);
    EXPECT_NE(md.find("## Completeness"), std::string::npos);
    EXPECT_NE(md.find("PARTIAL RESULT"), std::string::npos);
    EXPECT_NE(md.find("NOT exhaustive"), std::string::npos);

    // One CSV row per undetermined scenario on top of the (empty) risk rows.
    const std::string csv = render_risk_csv(r);
    EXPECT_NE(csv.find("undetermined:cancelled"), std::string::npos);

    const std::string json_doc = render_report_json(r);
    EXPECT_NE(json_doc.find("\"complete\":false"), std::string::npos);

    EXPECT_EQ(r.completeness_table().rows(), r.undetermined.size());
}

TEST_F(DegradationFixture, CompleteRunRendersExhaustive) {
    auto report = assessment_->run(base_config());
    ASSERT_TRUE(report.ok()) << report.error();
    EXPECT_TRUE(report.value().complete());
    const std::string md = render_markdown(report.value());
    EXPECT_NE(md.find("exhaustive: all"), std::string::npos);
    EXPECT_EQ(md.find("PARTIAL RESULT"), std::string::npos);
}

TEST_F(DegradationFixture, InjectedSolverFailureDegradesOneScenarioSoundly) {
    auto clean = assessment_->run(base_config());
    ASSERT_TRUE(clean.ok()) << clean.error();
    const std::set<std::string> clean_hazards = hazard_ids(clean.value());

    fault::arm("asp.solver.solve", 1);
    auto partial = assessment_->run(base_config());
    fault::reset();
    ASSERT_TRUE(partial.ok()) << partial.error();
    const AssessmentReport& r = partial.value();

    // Reported hazards are a subset of the true ones...
    for (const auto& id : hazard_ids(r)) EXPECT_TRUE(clean_hazards.count(id)) << id;
    // ...and no true hazard silently disappears: anything missing is
    // accounted for in the undetermined list.
    std::set<std::string> accounted = hazard_ids(r);
    for (const auto& verdict : r.undetermined) accounted.insert(verdict.scenario_id);
    for (const auto& id : clean_hazards) EXPECT_TRUE(accounted.count(id)) << id;
    for (const auto& verdict : r.undetermined) {
        ASSERT_TRUE(verdict.undetermined_reason.has_value());
    }
}

TEST_F(DegradationFixture, StarvedRunRecordsDegradedRetryInJournal) {
    const std::string journal = ::testing::TempDir() + "cprisk_degraded.jsonl";
    AssessmentConfig config = base_config();
    CancelToken cancel;
    cancel.request_cancel();
    config.cancel = cancel;
    config.journal_path = journal;

    auto report = assessment_->run(config);
    ASSERT_TRUE(report.ok()) << report.error();

    auto contents = load_journal(journal);
    ASSERT_TRUE(contents.ok()) << contents.error();
    // Every scenario walked the full ladder and was retried once on the
    // previous, cheaper stage before being recorded undetermined.
    bool saw_degraded = false;
    for (const auto& record : contents.value().records) {
        EXPECT_EQ(record.outcome, hierarchy::ScenarioOutcome::Undetermined);
        for (const auto& stage : record.stages) saw_degraded |= stage.degraded;
    }
    EXPECT_TRUE(saw_degraded);
    std::remove(journal.c_str());
}

}  // namespace
}  // namespace cprisk::core
