// Wire-protocol parsing (serve/protocol.hpp): strict types, tolerant
// unknown keys, best-effort id echo on malformed requests, stable error
// shapes.
#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

namespace cprisk::serve {
namespace {

TEST(ServeProtocolTest, ParsesEveryOp) {
    std::string id;
    auto ping = parse_request(R"({"id":"a","op":"ping"})", &id);
    ASSERT_TRUE(ping.ok()) << ping.error();
    EXPECT_EQ(ping.value().op, Op::Ping);
    EXPECT_EQ(ping.value().id, "a");
    EXPECT_EQ(id, "a");

    auto metrics = parse_request(R"({"op":"metrics"})", &id);
    ASSERT_TRUE(metrics.ok()) << metrics.error();
    EXPECT_EQ(metrics.value().op, Op::Metrics);
    EXPECT_TRUE(id.empty());

    auto shutdown = parse_request(R"({"op":"shutdown"})", &id);
    ASSERT_TRUE(shutdown.ok()) << shutdown.error();
    EXPECT_EQ(shutdown.value().op, Op::Shutdown);

    auto fault = parse_request(R"({"op":"fault","site":"serve.read","countdown":3})", &id);
    ASSERT_TRUE(fault.ok()) << fault.error();
    EXPECT_EQ(fault.value().op, Op::Fault);
    EXPECT_EQ(fault.value().site, "serve.read");
    EXPECT_EQ(fault.value().countdown, 3);
}

TEST(ServeProtocolTest, AssessParsesConfigSubset) {
    std::string id;
    auto parsed = parse_request(
        R"({"id":"r1","op":"assess","model":"m.cpm","config":{)"
        R"("horizon":9,"max_faults":1,"attack_scenarios":true,"use_cegar":false,)"
        R"("static_prefilter":false,"deadline_ms":250,"max_decisions":10,)"
        R"("exhaustive":true,"max_card":2,"attack_reachable_only":true,)"
        R"("active_mitigations":["M-A","M-B"]}})",
        &id);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    const Request& request = parsed.value();
    EXPECT_EQ(request.model, "m.cpm");
    EXPECT_EQ(request.config.horizon, 9);
    EXPECT_EQ(request.config.max_simultaneous_faults, 1u);
    EXPECT_TRUE(request.config.include_attack_scenarios);
    EXPECT_FALSE(request.config.use_cegar);
    EXPECT_FALSE(request.config.static_prefilter);
    EXPECT_EQ(request.config.deadline_ms, 250);
    EXPECT_EQ(request.config.max_decisions, 10u);
    EXPECT_TRUE(request.config.exhaustive);
    EXPECT_EQ(request.config.max_card, 2u);
    EXPECT_TRUE(request.config.attack_reachable_only);
    ASSERT_EQ(request.config.active_mitigations.size(), 2u);
    EXPECT_EQ(request.config.active_mitigations[0], "M-A");
}

TEST(ServeProtocolTest, UnknownKeysAreIgnored) {
    std::string id;
    auto parsed = parse_request(R"({"op":"ping","future_extension":42})", &id);
    EXPECT_TRUE(parsed.ok()) << parsed.error();
}

TEST(ServeProtocolTest, MalformedRequestsFailWithIdStillEchoed) {
    std::string id;
    EXPECT_FALSE(parse_request("not json at all", &id).ok());
    EXPECT_FALSE(parse_request("[1,2,3]", &id).ok());
    EXPECT_FALSE(parse_request(R"({"op":"fly"})", &id).ok());
    EXPECT_FALSE(parse_request(R"({"id":"x"})", &id).ok());  // no op
    EXPECT_EQ(id, "x");  // best-effort echo survives the failure

    // Assess without a model, fault without a site, bad numeric types.
    EXPECT_FALSE(parse_request(R"({"op":"assess"})", &id).ok());
    EXPECT_FALSE(parse_request(R"({"op":"fault"})", &id).ok());
    EXPECT_FALSE(parse_request(R"({"op":"fault","site":"s","countdown":0})", &id).ok());
    EXPECT_FALSE(
        parse_request(R"({"op":"assess","model":"m","config":{"horizon":-1}})", &id).ok());
    EXPECT_FALSE(
        parse_request(R"({"op":"assess","model":"m","config":{"horizon":"six"}})", &id).ok());
    EXPECT_FALSE(
        parse_request(R"({"op":"assess","model":"m","config":{"active_mitigations":[1]}})", &id)
            .ok());
}

TEST(ServeProtocolTest, ReplyShapesAreStable) {
    json::Object ok = ok_reply("r9", "ping");
    EXPECT_EQ(json::Value(std::move(ok)).serialize(),
              R"({"schema_version":2,"id":"r9","ok":true,"op":"ping"})");
    EXPECT_EQ(
        error_reply("r9", error_code::kOverloaded, "busy").serialize(),
        R"({"schema_version":2,"id":"r9","ok":false,"error":{"code":"overloaded","message":"busy"}})");
}

}  // namespace
}  // namespace cprisk::serve
