// Minimal blocking NDJSON client over AF_UNIX for the serve test suites: a
// poll() timeout turns a wedged daemon into a test failure instead of a
// hang, and EOF surfaces as an empty line (a clean close is an allowed
// outcome under chaos).
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace cprisk::serve {

class LineClient {
public:
    LineClient() = default;
    LineClient(const LineClient&) = delete;
    LineClient& operator=(const LineClient&) = delete;
    ~LineClient() { close(); }

    bool connect_to(const std::string& path) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd_ < 0) return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path)) return false;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        return ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
    }

    bool send_line(const std::string& line) {
        const std::string full = line + "\n";
        const char* data = full.data();
        std::size_t remaining = full.size();
        while (remaining > 0) {
            const ssize_t n = ::send(fd_, data, remaining, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            data += n;
            remaining -= static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Next reply line, or empty on EOF/error/timeout.
    std::string read_line(int timeout_ms = 30000) {
        for (;;) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return line;
            }
            pollfd pfd{fd_, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, timeout_ms);
            if (ready <= 0) return "";
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return "";
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

private:
    int fd_ = -1;
    std::string buffer_;
};

}  // namespace cprisk::serve
