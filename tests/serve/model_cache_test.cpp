// Hot-cache governance (serve/model_cache.hpp): LRU order, whole-model
// eviction under both caps, graceful behaviour of the serve.evict fault
// seam, and hit/miss/eviction accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "serve/model_cache.hpp"

namespace cprisk::serve {
namespace {

/// Copies the shipped watertank bundle to `name` under TempDir so the cache
/// sees distinct model paths with identical (valid) content.
std::string bundle_copy(const std::string& name) {
    const std::string source = std::string(CPRISK_SOURCE_DIR) + "/examples/models/watertank.cpm";
    const std::string target = ::testing::TempDir() + name;
    std::ifstream in(source);
    EXPECT_TRUE(in.good()) << source;
    std::ostringstream text;
    text << in.rdbuf();
    std::ofstream out(target);
    out << text.str();
    return target;
}

long long counter(obs::MetricsRegistry& metrics, const std::string& name) {
    const std::string json = metrics.export_json();
    const std::string needle = "\"" + name + "\":";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos) return 0;
    return std::atoll(json.c_str() + at + needle.size());
}

class ServeModelCacheTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeModelCacheTest, HitsAndMissesAreCountedAndInstancesAreStable) {
    obs::MetricsRegistry metrics;
    ModelCache cache(0, 0, &metrics);
    const std::string path = bundle_copy("mc_a.cpm");

    auto first = cache.acquire(path);
    ASSERT_TRUE(first.ok()) << first.error();
    auto second = cache.acquire(path);
    ASSERT_TRUE(second.ok()) << second.error();
    EXPECT_EQ(first.value().get(), second.value().get());  // same resident entry
    EXPECT_EQ(counter(metrics, "serve.cache.misses"), 1);
    EXPECT_EQ(counter(metrics, "serve.cache.hits"), 1);
    EXPECT_EQ(cache.resident(), 1u);
    EXPECT_GT(cache.resident_bytes(), 0u);
    std::remove(path.c_str());
}

TEST_F(ServeModelCacheTest, LoadFailureIsReturnedNotCached) {
    obs::MetricsRegistry metrics;
    ModelCache cache(0, 0, &metrics);
    auto missing = cache.acquire(::testing::TempDir() + "mc_missing.cpm");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(cache.resident(), 0u);
}

TEST_F(ServeModelCacheTest, EntryCapEvictsLeastRecentlyUsed) {
    obs::MetricsRegistry metrics;
    ModelCache cache(2, 0, &metrics);
    const std::string a = bundle_copy("mc_lru_a.cpm");
    const std::string b = bundle_copy("mc_lru_b.cpm");
    const std::string c = bundle_copy("mc_lru_c.cpm");

    ASSERT_TRUE(cache.acquire(a).ok());
    ASSERT_TRUE(cache.acquire(b).ok());
    ASSERT_TRUE(cache.acquire(a).ok());  // touch: b is now the LRU entry
    ASSERT_TRUE(cache.acquire(c).ok());  // evicts b, not a
    EXPECT_EQ(cache.resident(), 2u);
    EXPECT_EQ(counter(metrics, "serve.cache.evictions"), 1);

    const long long misses_before = counter(metrics, "serve.cache.misses");
    ASSERT_TRUE(cache.acquire(a).ok());  // still resident: a hit
    EXPECT_EQ(counter(metrics, "serve.cache.misses"), misses_before);
    ASSERT_TRUE(cache.acquire(b).ok());  // was evicted: a miss
    EXPECT_EQ(counter(metrics, "serve.cache.misses"), misses_before + 1);
    for (const auto& path : {a, b, c}) std::remove(path.c_str());
}

TEST_F(ServeModelCacheTest, TwoTenantBurstsThroughOneEntryCapStillHit) {
    // The bench_perf_epa serve-thrash shape: two tenants share a 1-entry
    // cache, each issuing two consecutive requests per turn. The first
    // request of a turn misses and evicts the other tenant, the second must
    // hit the freshly resident entry — a cap of one degrades cost, it never
    // degrades a burst to all-misses.
    obs::MetricsRegistry metrics;
    ModelCache cache(1, 0, &metrics);
    const std::string a = bundle_copy("mc_burst_a.cpm");
    const std::string b = bundle_copy("mc_burst_b.cpm");
    for (int round = 0; round < 3; ++round) {
        for (const auto& path : {a, b}) {
            ASSERT_TRUE(cache.acquire(path).ok());
            ASSERT_TRUE(cache.acquire(path).ok());
        }
    }
    EXPECT_EQ(counter(metrics, "serve.cache.misses"), 6);
    EXPECT_EQ(counter(metrics, "serve.cache.hits"), 6);
    EXPECT_EQ(counter(metrics, "serve.cache.evictions"), 5);
    EXPECT_GT(counter(metrics, "serve.cache.hits"), 0);
    for (const auto& path : {a, b}) std::remove(path.c_str());
}

TEST_F(ServeModelCacheTest, ByteCapEvictsDownToTheMostRecentEntry) {
    obs::MetricsRegistry metrics;
    // 1-byte cap: always over budget, but the MRU entry is never evicted, so
    // the cache degrades to single-entry instead of thrashing to empty.
    ModelCache cache(0, 1, &metrics);
    const std::string a = bundle_copy("mc_bytes_a.cpm");
    const std::string b = bundle_copy("mc_bytes_b.cpm");
    ASSERT_TRUE(cache.acquire(a).ok());
    EXPECT_EQ(cache.resident(), 1u);
    ASSERT_TRUE(cache.acquire(b).ok());
    EXPECT_EQ(cache.resident(), 1u);
    EXPECT_EQ(counter(metrics, "serve.cache.evictions"), 1);
    for (const auto& path : {a, b}) std::remove(path.c_str());
}

TEST_F(ServeModelCacheTest, EvictFaultDegradesGracefully) {
    obs::MetricsRegistry metrics;
    ModelCache cache(1, 0, &metrics);
    const std::string a = bundle_copy("mc_fault_a.cpm");
    const std::string b = bundle_copy("mc_fault_b.cpm");
    ASSERT_TRUE(cache.acquire(a).ok());

    fault::arm("serve.evict", 1);
    ASSERT_TRUE(cache.acquire(b).ok());
    // The injected failure keeps the over-cap entry resident and counts it.
    EXPECT_EQ(cache.resident(), 2u);
    EXPECT_EQ(counter(metrics, "serve.cache.evict_failed"), 1);
    EXPECT_EQ(counter(metrics, "serve.cache.evictions"), 0);

    // The next enforcement round (the seam fires at most once) recovers.
    cache.enforce_caps();
    EXPECT_EQ(cache.resident(), 1u);
    EXPECT_EQ(counter(metrics, "serve.cache.evictions"), 1);
    for (const auto& path : {a, b}) std::remove(path.c_str());
}

}  // namespace
}  // namespace cprisk::serve
