// Chaos sweep over the daemon's fault seams (docs/serve.md): for every
// registered serve.* site — plus the solver/grounder seams that make
// request execution itself fail — concurrent clients hammer a live daemon
// while the site is armed and a drain (graceful or hard) lands mid-flight.
// Invariants: the daemon never crashes or deadlocks, drains to zero
// in-flight requests, removes its socket, and every reply any client ever
// receives is one well-formed JSON object with the echoed id (a clean
// connection close is the only other allowed outcome).
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/json.hpp"
#include "line_client.hpp"
#include "serve/server.hpp"

namespace cprisk::serve {
namespace {

struct ChaosCase {
    std::string site;  ///< fault site armed for the round ("" = none)
    bool hard;         ///< escalate the mid-flight drain to a hard cancel
};

std::string case_name(const ::testing::TestParamInfo<ChaosCase>& info) {
    std::string name = info.param.site.empty() ? "no_fault" : info.param.site;
    for (char& c : name) {
        if (c == '.') c = '_';
    }
    return name + (info.param.hard ? "_hard" : "_graceful");
}

std::string copy_bundle(const std::string& name) {
    const std::string source = std::string(CPRISK_SOURCE_DIR) + "/examples/models/watertank.cpm";
    const std::string target = ::testing::TempDir() + name;
    std::ifstream in(source);
    std::ostringstream text;
    text << in.rdbuf();
    std::ofstream out(target);
    out << text.str();
    return target;
}

class ServeChaosTest : public ::testing::TestWithParam<ChaosCase> {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_P(ServeChaosTest, NeverCrashesAndEveryReplyIsWellFormed) {
    const ChaosCase& chaos = GetParam();

    ServeOptions options;
    options.socket_path = ::testing::TempDir() + "srv_chaos.sock";
    ::unlink(options.socket_path.c_str());
    options.executors = 2;
    options.max_inflight = 4;
    options.hot_models = 1;  // two model paths force evictions every swap
    options.drain_ms = chaos.hard ? 0 : 10000;
    options.allow_fault_injection = true;
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    // The two bundles alternate per request so the serve.evict seam is
    // exercised; countdown 3 lets some traffic through before the fault.
    const std::string model_a = copy_bundle("chaos_a.cpm");
    const std::string model_b = copy_bundle("chaos_b.cpm");
    if (!chaos.site.empty()) fault::arm(chaos.site, 3);

    constexpr int kClients = 3;
    constexpr int kRequests = 4;
    std::mutex replies_mutex;
    std::vector<std::string> replies;  // every non-empty line any client read
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            LineClient client;
            if (!client.connect_to(options.socket_path)) return;  // accept fault / drain
            int expected = 0;
            for (int r = 0; r < kRequests; ++r) {
                const std::string id = "c" + std::to_string(c) + "r" + std::to_string(r);
                std::string line;
                if (r % kRequests == 1) {
                    line = R"({"id":")" + id + R"(","op":"ping"})";
                } else if (r % kRequests == 3) {
                    line = R"({"id":")" + id + R"(","op":"metrics"})";
                } else {
                    const std::string& model = (c + r) % 2 == 0 ? model_a : model_b;
                    line = R"({"id":")" + id + R"(","op":"assess","model":")" + model +
                           R"(","config":{"horizon":4}})";
                }
                if (!client.send_line(line)) break;  // daemon hung up: allowed
                ++expected;
            }
            for (int r = 0; r < expected; ++r) {
                const std::string reply = client.read_line();
                if (reply.empty()) break;  // clean close: allowed
                std::lock_guard<std::mutex> lock(replies_mutex);
                replies.push_back(reply);
            }
        });
    }

    // The drain lands while clients are still in flight — the SIGTERM path
    // without the process machinery (cmd_serve wires signals to the same
    // begin_drain calls).
    ::usleep(20 * 1000);
    server.value()->begin_drain(false);
    if (chaos.hard) server.value()->begin_drain(true);
    for (auto& client : clients) client.join();
    server.value()->wait();

    EXPECT_EQ(server.value()->inflight(), 0u);
    LineClient probe;
    EXPECT_FALSE(probe.connect_to(options.socket_path));  // socket removed

    // Every reply that reached any client is one well-formed JSON object
    // with an id and an ok flag; failures carry a structured error code.
    for (const std::string& line : replies) {
        auto parsed = json::parse(line);
        ASSERT_TRUE(parsed.ok()) << "unparseable reply: " << line;
        const json::Value& reply = parsed.value();
        ASSERT_TRUE(reply.is_object()) << line;
        EXPECT_NE(reply.get("ok"), nullptr) << line;
        if (!reply.get_bool("ok", true)) {
            const json::Value* error = reply.get("error");
            ASSERT_NE(error, nullptr) << line;
            EXPECT_FALSE(error->get_string("code").empty()) << line;
        }
    }

    std::remove(model_a.c_str());
    std::remove(model_b.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sites, ServeChaosTest,
    ::testing::Values(ChaosCase{"", false}, ChaosCase{"", true},
                      ChaosCase{"serve.accept", false}, ChaosCase{"serve.accept", true},
                      ChaosCase{"serve.read", false}, ChaosCase{"serve.read", true},
                      ChaosCase{"serve.dispatch", false}, ChaosCase{"serve.dispatch", true},
                      ChaosCase{"serve.evict", false}, ChaosCase{"serve.evict", true},
                      ChaosCase{"serve.drain", false}, ChaosCase{"serve.drain", true},
                      ChaosCase{"asp.grounder.ground", false},
                      ChaosCase{"asp.solver.solve", true}),
    case_name);

}  // namespace
}  // namespace cprisk::serve
