// End-to-end daemon behaviour over a real Unix-domain socket
// (serve/server.hpp): request/reply correlation, warm-cache reuse,
// structured errors, admission control, graceful drain, and client
// disconnect cancelling in-flight work.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <string>

#include "common/fault_injection.hpp"
#include "common/json.hpp"
#include "line_client.hpp"
#include "serve/server.hpp"

namespace cprisk::serve {
namespace {

std::string watertank_path() {
    return std::string(CPRISK_SOURCE_DIR) + "/examples/models/watertank.cpm";
}

/// Parses a reply line; fails the test on malformed JSON.
json::Value reply_of(const std::string& line) {
    auto parsed = json::parse(line);
    EXPECT_TRUE(parsed.ok()) << "unparseable reply: " << line;
    return parsed.ok() ? std::move(parsed).value() : json::Value();
}

std::string socket_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    ::unlink(path.c_str());
    return path;
}

class ServeServerTest : public ::testing::Test {
protected:
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeServerTest, PingEchoesIdAndMetricsCarriesDaemonGauges) {
    ServeOptions options;
    options.socket_path = socket_path("srv_ping.sock");
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    LineClient client;
    ASSERT_TRUE(client.connect_to(options.socket_path));
    ASSERT_TRUE(client.send_line(R"({"id":"p1","op":"ping"})"));
    const json::Value pong = reply_of(client.read_line());
    EXPECT_EQ(pong.get_string("id"), "p1");
    EXPECT_TRUE(pong.get_bool("ok", false));

    ASSERT_TRUE(client.send_line(R"({"id":"m1","op":"metrics"})"));
    const json::Value metrics = reply_of(client.read_line());
    ASSERT_NE(metrics.get("metrics"), nullptr);
    const json::Value* gauges = metrics.get("metrics")->get("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_NE(gauges->get("serve.queue.depth"), nullptr);
    EXPECT_NE(gauges->get("serve.requests.live"), nullptr);
    EXPECT_NE(gauges->get("serve.cache.resident"), nullptr);
    EXPECT_NE(gauges->get("serve.cache.resident_bytes"), nullptr);

    client.close();
    server.value()->begin_drain(false);
    server.value()->wait();
}

TEST_F(ServeServerTest, AssessColdThenWarmReusesResidentModelAndBases) {
    ServeOptions options;
    options.socket_path = socket_path("srv_warm.sock");
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    LineClient client;
    ASSERT_TRUE(client.connect_to(options.socket_path));
    const std::string assess =
        R"({"id":"a","op":"assess","model":")" + watertank_path() + R"("})";
    for (int round = 0; round < 2; ++round) {
        ASSERT_TRUE(client.send_line(assess));
        const json::Value reply = reply_of(client.read_line());
        ASSERT_TRUE(reply.get_bool("ok", false)) << reply.serialize();
        EXPECT_FALSE(reply.get_bool("partial", true));
        ASSERT_NE(reply.get("report"), nullptr);
        EXPECT_NE(reply.get("report")->get("risks"), nullptr);
    }

    ASSERT_TRUE(client.send_line(R"({"id":"m","op":"metrics"})"));
    const json::Value metrics = reply_of(client.read_line());
    const json::Value* counters = metrics.get("metrics")->get("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->get_int("serve.cache.misses", 0), 1);
    EXPECT_EQ(counters->get_int("serve.cache.hits", 0), 1);
    // The second request reuses the warm ground-once bases of the first.
    EXPECT_GT(counters->get_int("epa.base_cache.hits", 0), 0);

    client.close();
    server.value()->begin_drain(false);
    server.value()->wait();
}

TEST_F(ServeServerTest, MalformedAndInvalidRequestsGetStructuredErrors) {
    ServeOptions options;
    options.socket_path = socket_path("srv_bad.sock");
    options.allow_fault_injection = false;
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    LineClient client;
    ASSERT_TRUE(client.connect_to(options.socket_path));

    ASSERT_TRUE(client.send_line("this is not json"));
    json::Value reply = reply_of(client.read_line());
    EXPECT_FALSE(reply.get_bool("ok", true));
    EXPECT_EQ(reply.get("error")->get_string("code"), "bad_request");

    ASSERT_TRUE(client.send_line(R"({"id":"q","op":"assess","model":"/no/such.cpm"})"));
    reply = reply_of(client.read_line());
    EXPECT_EQ(reply.get_string("id"), "q");
    EXPECT_EQ(reply.get("error")->get_string("code"), "bad_request");

    // The fault op is gated behind ServeOptions::allow_fault_injection.
    ASSERT_TRUE(client.send_line(R"({"id":"f","op":"fault","site":"serve.read"})"));
    reply = reply_of(client.read_line());
    EXPECT_FALSE(reply.get_bool("ok", true));
    EXPECT_EQ(reply.get("error")->get_string("code"), "bad_request");

    client.close();
    server.value()->begin_drain(false);
    server.value()->wait();
}

TEST_F(ServeServerTest, AdmissionControlShedsPastHighWaterMark) {
    ServeOptions options;
    options.socket_path = socket_path("srv_shed.sock");
    options.executors = 1;
    options.max_inflight = 1;
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    LineClient client;
    ASSERT_TRUE(client.connect_to(options.socket_path));
    // Both requests arrive in one burst: the first is admitted (deep horizon,
    // so it is still running when the reader reaches the second line), the
    // second exceeds max_inflight and is shed immediately.
    const std::string deep = R"({"id":"slow","op":"assess","model":")" + watertank_path() +
                             R"(","config":{"horizon":10}})";
    const std::string quick =
        R"({"id":"shed","op":"assess","model":")" + watertank_path() + R"("})";
    ASSERT_TRUE(client.send_line(deep + "\n" + quick));

    std::map<std::string, json::Value> replies;
    for (int i = 0; i < 2; ++i) {
        const json::Value reply = reply_of(client.read_line());
        replies[reply.get_string("id")] = reply;
    }
    ASSERT_EQ(replies.count("slow"), 1u);
    ASSERT_EQ(replies.count("shed"), 1u);
    EXPECT_TRUE(replies["slow"].get_bool("ok", false)) << replies["slow"].serialize();
    EXPECT_FALSE(replies["shed"].get_bool("ok", true));
    EXPECT_EQ(replies["shed"].get("error")->get_string("code"), "overloaded");

    client.close();
    server.value()->begin_drain(false);
    server.value()->wait();
}

TEST_F(ServeServerTest, ShutdownOpDrainsAndRejectsTrailingWork) {
    ServeOptions options;
    options.socket_path = socket_path("srv_drain.sock");
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    LineClient client;
    ASSERT_TRUE(client.connect_to(options.socket_path));
    // Shutdown and a trailing assess arrive in the same chunk: the reader
    // processes the drain first, so the assess gets a shutting_down error.
    const std::string assess =
        R"({"id":"late","op":"assess","model":")" + watertank_path() + R"("})";
    ASSERT_TRUE(client.send_line(std::string(R"({"id":"s","op":"shutdown"})") + "\n" + assess));

    const json::Value ack = reply_of(client.read_line());
    EXPECT_TRUE(ack.get_bool("ok", false));
    EXPECT_TRUE(ack.get_bool("draining", false));
    const json::Value rejected = reply_of(client.read_line());
    EXPECT_EQ(rejected.get_string("id"), "late");
    EXPECT_EQ(rejected.get("error")->get_string("code"), "shutting_down");
    EXPECT_TRUE(client.read_line().empty());  // daemon closes the connection

    server.value()->wait();
    EXPECT_TRUE(server.value()->draining());
    EXPECT_EQ(server.value()->inflight(), 0u);
    // The socket file is removed on exit.
    LineClient probe;
    EXPECT_FALSE(probe.connect_to(options.socket_path));
}

TEST_F(ServeServerTest, ClientDisconnectCancelsItsInflightRequests) {
    ServeOptions options;
    options.socket_path = socket_path("srv_gone.sock");
    options.drain_ms = 30000;
    auto server = Server::start(options);
    ASSERT_TRUE(server.ok()) << server.error();

    {
        LineClient vanishing;
        ASSERT_TRUE(vanishing.connect_to(options.socket_path));
        ASSERT_TRUE(vanishing.send_line(R"({"id":"v","op":"assess","model":")" +
                                        watertank_path() + R"(","config":{"horizon":10}})"));
    }  // closes mid-flight: the daemon cancels the request cooperatively

    LineClient observer;
    ASSERT_TRUE(observer.connect_to(options.socket_path));
    long long completed = 0;
    for (int attempt = 0; attempt < 600 && completed < 1; ++attempt) {
        ASSERT_TRUE(observer.send_line(R"({"id":"m","op":"metrics"})"));
        const json::Value metrics = reply_of(observer.read_line());
        completed =
            metrics.get("metrics")->get("counters")->get_int("serve.requests.completed", 0);
        if (completed < 1) ::usleep(50 * 1000);
    }
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(server.value()->inflight(), 0u);

    observer.close();
    server.value()->begin_drain(false);
    server.value()->wait();
}

}  // namespace
}  // namespace cprisk::serve
