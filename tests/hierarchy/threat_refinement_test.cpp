// Threat refinement levels (paper §VI) on the water-tank case study.
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "hierarchy/threat_refinement.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::hierarchy {
namespace {

namespace ids = core::watertank_ids;

class ThreatRefinementFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = core::WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new core::WaterTankCaseStudy(std::move(built).value());

        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = cs_->horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(cs_->system, cs_->requirements,
                                                         cs_->mitigations, options);
        ASSERT_TRUE(epa.ok()) << epa.error();

        security::ScenarioSpaceOptions space_options;
        space_options.max_simultaneous_faults = 2;
        space_options.include_attack_scenarios = false;
        auto space = security::ScenarioSpace::build(cs_->system, cs_->matrix,
                                                    security::standard_threat_actors(),
                                                    space_options);
        auto verdicts = epa.value().evaluate_all(space, {});
        ASSERT_TRUE(verdicts.ok()) << verdicts.error();
        result_ = new ThreatRefinementResult(
            refine_threats(cs_->system, verdicts.value(), cs_->mitigations));
    }
    static void TearDownTestSuite() {
        delete result_;
        delete cs_;
        result_ = nullptr;
        cs_ = nullptr;
    }

    static core::WaterTankCaseStudy* cs_;
    static ThreatRefinementResult* result_;
};

core::WaterTankCaseStudy* ThreatRefinementFixture::cs_ = nullptr;
ThreatRefinementResult* ThreatRefinementFixture::result_ = nullptr;

TEST_F(ThreatRefinementFixture, Level1TankIntegrityEndangered) {
    bool tank_integrity = false;
    for (const EndangeredAspect& finding : result_->endangered) {
        if (finding.asset == ids::kTank && finding.aspect == ThreatAspect::Integrity) {
            tank_integrity = true;
            // The workstation is among the sources (the IT/OT bridge).
            EXPECT_NE(std::find(finding.sources.begin(), finding.sources.end(),
                                ids::kWorkstation),
                      finding.sources.end());
        }
    }
    EXPECT_TRUE(tank_integrity);
}

TEST_F(ThreatRefinementFixture, Level1OnlyOtAssetsListed) {
    for (const EndangeredAspect& finding : result_->endangered) {
        EXPECT_TRUE(model::is_ot(cs_->system.component(finding.asset).type)) << finding.asset;
        EXPECT_FALSE(finding.sources.empty());
    }
}

TEST_F(ThreatRefinementFixture, Level2ConcreteThreatsComeFromViolations) {
    ASSERT_FALSE(result_->concrete_threats.empty());
    // The canonical causes are present.
    auto has = [&](const char* component, const char* fault) {
        return std::any_of(result_->concrete_threats.begin(), result_->concrete_threats.end(),
                           [&](const ConcreteThreat& t) {
                               return t.mutation.component == component &&
                                      t.mutation.fault_id == fault;
                           });
    };
    EXPECT_TRUE(has(ids::kOutputValve, "stuck_at_closed"));
    EXPECT_TRUE(has(ids::kWorkstation, "infected"));
    // Severity-first ordering.
    for (std::size_t i = 0; i + 1 < result_->concrete_threats.size(); ++i) {
        EXPECT_GE(result_->concrete_threats[i].severity,
                  result_->concrete_threats[i + 1].severity);
    }
}

TEST_F(ThreatRefinementFixture, Level3MitigationsAttach) {
    const security::Mutation workstation{ids::kWorkstation, "infected"};
    auto it = result_->mitigations.find(workstation.to_string());
    ASSERT_NE(it, result_->mitigations.end());
    EXPECT_NE(std::find(it->second.begin(), it->second.end(), "M-TRAIN"), it->second.end());
    EXPECT_NE(std::find(it->second.begin(), it->second.end(), "M-ENDPOINT"), it->second.end());
}

TEST_F(ThreatRefinementFixture, UnmitigatedResidualThreatsReported) {
    // The spontaneous valve fault has no cyber mitigation in the map: it
    // must be reported as residual risk.
    auto residual = result_->unmitigated();
    const bool valve_residual = std::any_of(
        residual.begin(), residual.end(), [&](const security::Mutation& m) {
            return m.component == ids::kOutputValve && m.fault_id == "stuck_at_closed";
        });
    EXPECT_TRUE(valve_residual);
}

TEST_F(ThreatRefinementFixture, AspectNames) {
    EXPECT_EQ(to_string(ThreatAspect::Availability), "availability");
    EXPECT_EQ(to_string(ThreatAspect::Integrity), "integrity");
}

}  // namespace
}  // namespace cprisk::hierarchy
