// CEGAR refinement and hierarchical evaluation on the case study: spurious
// elimination, and the soundness property that no concrete hazard is lost.
#include <gtest/gtest.h>

#include "core/watertank.hpp"
#include "hierarchy/evaluation_matrix.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::hierarchy {
namespace {

class CegarFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto built = core::WaterTankCaseStudy::build();
        ASSERT_TRUE(built.ok()) << built.error();
        cs_ = new core::WaterTankCaseStudy(std::move(built).value());

        security::ScenarioSpaceOptions options;
        options.max_simultaneous_faults = 2;
        options.include_attack_scenarios = false;
        space_ = new security::ScenarioSpace(security::ScenarioSpace::build(
            cs_->system, cs_->matrix, security::standard_threat_actors(), options));
    }
    static void TearDownTestSuite() {
        delete space_;
        delete cs_;
        space_ = nullptr;
        cs_ = nullptr;
    }

    static std::vector<CegarStage> two_stages() {
        return {
            CegarStage{"topology", &cs_->system, epa::AnalysisFocus::Topology,
                       cs_->topology_requirements, cs_->horizon},
            CegarStage{"behavioral", &cs_->system, epa::AnalysisFocus::Behavioral,
                       cs_->requirements, cs_->horizon},
        };
    }

    static core::WaterTankCaseStudy* cs_;
    static security::ScenarioSpace* space_;
};

core::WaterTankCaseStudy* CegarFixture::cs_ = nullptr;
security::ScenarioSpace* CegarFixture::space_ = nullptr;

TEST_F(CegarFixture, RefinementEliminatesSpuriousSolutions) {
    auto result = run_cegar(two_stages(), *space_, cs_->mitigations, {});
    ASSERT_TRUE(result.ok()) << result.error();

    ASSERT_EQ(result.value().iterations.size(), 2u);
    const auto& abstract_round = result.value().iterations[0];
    const auto& refined_round = result.value().iterations[1];

    // Abstract analysis flags more candidates than survive refinement
    // (e.g. input-valve-stuck-open "reaches" the tank topologically but is
    // behaviourally harmless).
    EXPECT_GT(abstract_round.hazards_out, refined_round.hazards_out);
    EXPECT_GT(result.value().total_spurious(), 0u);
    EXPECT_EQ(refined_round.candidates_in, abstract_round.hazards_out);
    EXPECT_EQ(result.value().confirmed.size(), refined_round.hazards_out);
}

TEST_F(CegarFixture, SoundnessNoHazardOverlooked) {
    // Property (paper step 5): "the method guarantees that no actual
    // hazardous attack is overlooked". Run the precise analysis alone on the
    // full space and check every hazard it finds was flagged abstractly.
    auto staged = run_cegar(two_stages(), *space_, cs_->mitigations, {});
    ASSERT_TRUE(staged.ok()) << staged.error();

    std::vector<CegarStage> direct_only = {two_stages()[1]};
    auto direct = run_cegar(direct_only, *space_, cs_->mitigations, {});
    ASSERT_TRUE(direct.ok()) << direct.error();

    // The staged pipeline must confirm exactly the hazards of the direct
    // behavioural analysis: abstraction may add spurious candidates but must
    // never drop a real one.
    ASSERT_EQ(staged.value().confirmed.size(), direct.value().confirmed.size());
    for (std::size_t i = 0; i < staged.value().confirmed.size(); ++i) {
        EXPECT_EQ(staged.value().confirmed[i].scenario_id,
                  direct.value().confirmed[i].scenario_id);
        EXPECT_EQ(staged.value().confirmed[i].violated_requirements,
                  direct.value().confirmed[i].violated_requirements);
    }
}

TEST_F(CegarFixture, MitigationsShrinkHazardSet) {
    auto unmitigated = run_cegar(two_stages(), *space_, cs_->mitigations, {});
    auto mitigated = run_cegar(two_stages(), *space_, cs_->mitigations,
                               {"M-TRAIN", "M-ENDPOINT"});
    ASSERT_TRUE(unmitigated.ok());
    ASSERT_TRUE(mitigated.ok());
    EXPECT_LT(mitigated.value().confirmed.size(), unmitigated.value().confirmed.size());
}

TEST_F(CegarFixture, EmptyStagesRejected) {
    EXPECT_FALSE(run_cegar({}, *space_, cs_->mitigations, {}).ok());
}

TEST_F(CegarFixture, HierarchicalEvaluationThreeFocuses) {
    HierarchicalConfig config;
    config.abstract_model = &cs_->system;
    config.abstract_requirements = cs_->topology_requirements;
    config.detailed_requirements = cs_->requirements;
    config.horizon = cs_->horizon;

    auto result = run_hierarchical_evaluation(config, *space_, cs_->matrix, cs_->mitigations);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_GT(result.value().focus1_hazards, 0u);
    EXPECT_GT(result.value().focus2_hazards, 0u);
    EXPECT_LT(result.value().focus2_hazards, result.value().focus1_hazards);
    EXPECT_GT(result.value().spurious_eliminated, 0u);
    // Focus 3 proposes a plan whenever blockable hazards exist.
    EXPECT_GE(result.value().mitigation_plan.chosen.size() +
                  result.value().mitigation_plan.unblocked.size(),
              1u);
}

TEST_F(CegarFixture, EvaluationMatrixTable) {
    auto table = evaluation_matrix_table();
    EXPECT_EQ(table.rows(), 2u);
    EXPECT_EQ(table.columns(), 4u);
    EXPECT_NE(table.render().find("topology-based propagation"), std::string::npos);
    EXPECT_NE(table.render().find("mitigation plan"), std::string::npos);
}

}  // namespace
}  // namespace cprisk::hierarchy
