#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qualitative/abstraction.hpp"

namespace cprisk::qual {
namespace {

TraceAbstractor make_abstractor() {
    TraceAbstractor abstractor;
    abstractor.register_space(QuantitySpace(
        "level", {"empty", "low", "normal", "high", "overflow"}, {10, 30, 70, 95}));
    abstractor.register_space(QuantitySpace("flow", {"closed", "open"}, {0.5}));
    return abstractor;
}

TEST(Abstraction, SampleMapsRegisteredVariables) {
    auto abstractor = make_abstractor();
    TraceSample sample{0.0, {{"level", 50.0}, {"flow", 0.9}, {"ignored", 1.0}}};
    auto state = abstractor.abstract_sample(sample);
    EXPECT_EQ(state.get("level").value(), "normal");
    EXPECT_EQ(state.get("flow").value(), "open");
    EXPECT_FALSE(state.has("ignored"));
}

TEST(Abstraction, TraceRecordsLandmarkCrossings) {
    auto abstractor = make_abstractor();
    NumericTrace trace;
    for (int i = 0; i <= 100; ++i) {
        trace.push_back({static_cast<double>(i), {{"level", static_cast<double>(i)}}});
    }
    auto trajectory = abstractor.abstract_trace(trace);
    // Rising ramp crosses 4 landmarks: 5 distinct states.
    EXPECT_EQ(trajectory.size(), 5u);
    EXPECT_TRUE(trajectory.ever("level", "empty"));
    EXPECT_TRUE(trajectory.ever("level", "overflow"));
    EXPECT_EQ(trajectory.first_time("level", "overflow").value(), 95.0);
}

TEST(Abstraction, ConstantTraceSingleState) {
    auto abstractor = make_abstractor();
    NumericTrace trace;
    for (int i = 0; i < 50; ++i) {
        trace.push_back({static_cast<double>(i), {{"level", 42.0}}});
    }
    auto trajectory = abstractor.abstract_trace(trace);
    EXPECT_EQ(trajectory.size(), 1u);
    EXPECT_TRUE(trajectory.always("level", "normal"));
}

TEST(Abstraction, SoundnessProperty) {
    // Property: if a concrete trace ever exceeds the overflow landmark, the
    // abstraction must report the overflow region (no hazard is lost).
    auto abstractor = make_abstractor();
    for (double amplitude : {20.0, 60.0, 96.0, 120.0}) {
        NumericTrace trace;
        for (int i = 0; i <= 200; ++i) {
            const double t = i * 0.1;
            trace.push_back({t, {{"level", amplitude * std::sin(t) }}});
        }
        bool concrete_overflow = false;
        for (const auto& sample : trace) {
            if (sample.values.at("level") >= 95.0) concrete_overflow = true;
        }
        auto trajectory = abstractor.abstract_trace(trace);
        EXPECT_EQ(trajectory.ever("level", "overflow"), concrete_overflow)
            << "amplitude " << amplitude;
    }
}

TEST(Abstraction, SpaceLookup) {
    auto abstractor = make_abstractor();
    EXPECT_TRUE(abstractor.has_space("level"));
    EXPECT_FALSE(abstractor.has_space("pressure"));
    EXPECT_EQ(abstractor.space("level").variable(), "level");
    EXPECT_THROW(abstractor.space("pressure"), Error);
}

TEST(Abstraction, ReplacingSpace) {
    auto abstractor = make_abstractor();
    abstractor.register_space(QuantitySpace("level", {"lo", "hi"}, {50}));
    TraceSample sample{0.0, {{"level", 80.0}}};
    EXPECT_EQ(abstractor.abstract_sample(sample).get("level").value(), "hi");
}

}  // namespace
}  // namespace cprisk::qual
