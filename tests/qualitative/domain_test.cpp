#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qualitative/domain.hpp"

namespace cprisk::qual {
namespace {

QuantitySpace water_level() {
    // empty | low | normal | high | overflow, landmarks at 10/30/70/95.
    return QuantitySpace("water_level", {"empty", "low", "normal", "high", "overflow"},
                         {10.0, 30.0, 70.0, 95.0});
}

TEST(QuantitySpace, Classify) {
    auto space = water_level();
    EXPECT_EQ(space.classify_name(0.0), "empty");
    EXPECT_EQ(space.classify_name(9.99), "empty");
    EXPECT_EQ(space.classify_name(10.0), "low");  // landmark belongs upward
    EXPECT_EQ(space.classify_name(50.0), "normal");
    EXPECT_EQ(space.classify_name(80.0), "high");
    EXPECT_EQ(space.classify_name(95.0), "overflow");
    EXPECT_EQ(space.classify_name(500.0), "overflow");
}

TEST(QuantitySpace, RegionIndexLookup) {
    auto space = water_level();
    EXPECT_EQ(space.region_index("normal").value(), 2);
    EXPECT_FALSE(space.region_index("vacuum").ok());
}

TEST(QuantitySpace, RegionCountMatches) {
    EXPECT_EQ(water_level().region_count(), 5u);
}

TEST(QuantitySpace, InvalidConstruction) {
    EXPECT_THROW(QuantitySpace("x", {"a", "b"}, {1.0, 2.0}), Error);  // arity mismatch
    EXPECT_THROW(QuantitySpace("x", {"a", "b", "c"}, {2.0, 1.0}), Error);  // not increasing
    EXPECT_THROW(QuantitySpace("x", {"a", "b", "c"}, {1.0, 1.0}), Error);  // not strict
}

TEST(QuantitySpace, FiveLevelFactory) {
    auto space = QuantitySpace::five_level("load", {10, 40, 70, 90});
    EXPECT_EQ(space.classify_name(5), "very_low");
    EXPECT_EQ(space.classify_name(95), "very_high");
    EXPECT_EQ(space.to_level(0), Level::VeryLow);
    EXPECT_EQ(space.to_level(4), Level::VeryHigh);
    EXPECT_EQ(space.to_level(2), Level::Medium);
}

TEST(QuantitySpace, ToLevelProportional) {
    // Three regions map onto the five-point scale: 0 -> VL, 1 -> M, 2 -> VH.
    QuantitySpace space("x", {"lo", "mid", "hi"}, {0.0, 1.0});
    EXPECT_EQ(space.to_level(0), Level::VeryLow);
    EXPECT_EQ(space.to_level(1), Level::Medium);
    EXPECT_EQ(space.to_level(2), Level::VeryHigh);
}

TEST(QuantitySpace, RepresentativeValuesClassifyBack) {
    auto space = water_level();
    for (int i = 0; i < static_cast<int>(space.region_count()); ++i) {
        EXPECT_EQ(space.classify(space.representative(i)), i) << "region " << i;
    }
}

TEST(OrderedDomain, Basics) {
    OrderedDomain d("health", {"ok", "degraded", "failed"});
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.value(1), "degraded");
    EXPECT_EQ(d.index_of("failed").value(), 2);
    EXPECT_FALSE(d.index_of("unknown").ok());
    EXPECT_THROW((void)d.value(5), Error);
}

TEST(OrderedDomain, EmptyThrows) {
    EXPECT_THROW(OrderedDomain("x", {}), Error);
}

}  // namespace
}  // namespace cprisk::qual
