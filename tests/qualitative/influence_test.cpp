// Influence graphs: sign propagation, ambiguity, cycles, the water-balance
// example.
#include <gtest/gtest.h>

#include "qualitative/influence.hpp"

namespace cprisk::qual {
namespace {

/// Open-loop water balance: inflow raises the level, outflow lowers it.
InfluenceGraph water_balance() {
    InfluenceGraph g;
    EXPECT_TRUE(g.add_influence("inflow", "level", Sign::Positive).ok());
    EXPECT_TRUE(g.add_influence("outflow", "level", Sign::Negative).ok());
    return g;
}

/// Closed-loop variant: the level raises the (proportional) outflow.
InfluenceGraph water_balance_with_control() {
    InfluenceGraph g = water_balance();
    EXPECT_TRUE(g.add_influence("level", "outflow", Sign::Positive).ok());
    return g;
}

TEST(Influence, Basics) {
    auto g = water_balance_with_control();
    EXPECT_EQ(g.variable_count(), 3u);
    EXPECT_TRUE(g.has_variable("level"));
    EXPECT_FALSE(g.has_variable("pressure"));
    EXPECT_FALSE(g.add_influence("x", "x", Sign::Positive).ok());
    EXPECT_FALSE(g.add_influence("a", "b", Sign::Ambiguous).ok());
}

TEST(Influence, DirectEffect) {
    auto g = water_balance();
    EXPECT_EQ(g.effect("inflow", Sign::Positive, "level").value(), Sign::Positive);
    EXPECT_EQ(g.effect("inflow", Sign::Negative, "level").value(), Sign::Negative);
    EXPECT_EQ(g.effect("outflow", Sign::Positive, "level").value(), Sign::Negative);
}

TEST(Influence, NegativeFeedbackIsHonestlyAmbiguous) {
    // The classic QR over-abstraction: with the control loop closed, a
    // higher inflow raises the level, which raises the outflow, which pushes
    // the level back down — pure sign calculus cannot rank the magnitudes,
    // so the steady-state trend of the level is Ambiguous. This is exactly
    // the kind of spurious uncertainty the paper's refinement step (or the
    // quantitative simulator) resolves.
    auto g = water_balance_with_control();
    EXPECT_EQ(g.effect("inflow", Sign::Positive, "level").value(), Sign::Ambiguous);
    auto ambiguous = g.ambiguous_under("inflow", Sign::Positive);
    ASSERT_TRUE(ambiguous.ok());
    EXPECT_FALSE(ambiguous.value().empty());
}

TEST(Influence, UnaffectedVariablesStayZero) {
    InfluenceGraph g;
    ASSERT_TRUE(g.add_influence("a", "b", Sign::Positive).ok());
    g.add_variable("isolated");
    EXPECT_EQ(g.effect("a", Sign::Positive, "isolated").value(), Sign::Zero);
}

TEST(Influence, OpposingPathsAreAmbiguous) {
    // a -> x (+) and a -> y (-) -> x (+) gives x both + and - contributions.
    InfluenceGraph g;
    ASSERT_TRUE(g.add_influence("a", "x", Sign::Positive).ok());
    ASSERT_TRUE(g.add_influence("a", "y", Sign::Negative).ok());
    ASSERT_TRUE(g.add_influence("y", "x", Sign::Positive).ok());
    EXPECT_EQ(g.effect("a", Sign::Positive, "x").value(), Sign::Ambiguous);
    auto ambiguous = g.ambiguous_under("a", Sign::Positive);
    ASSERT_TRUE(ambiguous.ok());
    EXPECT_EQ(ambiguous.value(), std::vector<std::string>{"x"});
}

TEST(Influence, NegativeFeedbackCycleConverges) {
    // level -> outflow (+) -> level (-): the fixpoint must terminate and the
    // root keeps its exogenous direction.
    auto g = water_balance_with_control();
    auto trend = g.propagate("level", Sign::Positive);
    ASSERT_TRUE(trend.ok());
    EXPECT_EQ(trend.value().at("level"), Sign::Positive);
    EXPECT_EQ(trend.value().at("outflow"), Sign::Positive);
}

TEST(Influence, PositiveFeedbackCycleConverges) {
    InfluenceGraph g;
    ASSERT_TRUE(g.add_influence("a", "b", Sign::Positive).ok());
    ASSERT_TRUE(g.add_influence("b", "a", Sign::Positive).ok());
    auto trend = g.propagate("a", Sign::Positive);
    ASSERT_TRUE(trend.ok());
    EXPECT_EQ(trend.value().at("b"), Sign::Positive);
}

TEST(Influence, LongChainSignComposition) {
    // Chain of alternating influences: sign flips per negative edge.
    InfluenceGraph g;
    ASSERT_TRUE(g.add_influence("v0", "v1", Sign::Negative).ok());
    ASSERT_TRUE(g.add_influence("v1", "v2", Sign::Negative).ok());
    ASSERT_TRUE(g.add_influence("v2", "v3", Sign::Positive).ok());
    EXPECT_EQ(g.effect("v0", Sign::Positive, "v1").value(), Sign::Negative);
    EXPECT_EQ(g.effect("v0", Sign::Positive, "v2").value(), Sign::Positive);
    EXPECT_EQ(g.effect("v0", Sign::Positive, "v3").value(), Sign::Positive);
}

TEST(Influence, ErrorsOnUnknowns) {
    auto g = water_balance();
    EXPECT_FALSE(g.propagate("ghost", Sign::Positive).ok());
    EXPECT_FALSE(g.effect("inflow", Sign::Positive, "ghost").ok());
    EXPECT_FALSE(g.propagate("level", Sign::Zero).ok());
}

TEST(Influence, SoundnessAgainstLinearSystem) {
    // Property: for a random acyclic signed graph interpreted as a linear
    // system y = sum(sign * x), the qualitative trend must over-approximate
    // the concrete derivative sign.
    for (unsigned seed = 1; seed <= 10; ++seed) {
        InfluenceGraph g;
        const int n = 6;
        unsigned state = seed * 2654435761u;
        auto rand_bit = [&]() {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            return state & 1u;
        };
        // Edges only forward (acyclic), random signs.
        std::vector<std::vector<std::pair<int, double>>> incoming(n);
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                if (rand_bit()) continue;
                const double w = rand_bit() ? 1.0 : -1.0;
                ASSERT_TRUE(g.add_influence("v" + std::to_string(i), "v" + std::to_string(j),
                                            sign_of(w))
                                .ok());
                incoming[j].push_back({i, w});
            }
        }
        if (!g.has_variable("v0")) g.add_variable("v0");
        auto trend = g.propagate("v0", Sign::Positive);
        ASSERT_TRUE(trend.ok());

        // Concrete: derivative of each vj w.r.t. v0 via forward accumulation.
        std::vector<double> derivative(n, 0.0);
        derivative[0] = 1.0;
        for (int j = 1; j < n; ++j) {
            for (const auto& [i, w] : incoming[j]) derivative[j] += w * derivative[i];
        }
        for (int j = 0; j < n; ++j) {
            const std::string name = "v" + std::to_string(j);
            if (trend.value().count(name) == 0) continue;
            EXPECT_TRUE(refines(sign_of(derivative[j]), trend.value().at(name)))
                << "seed " << seed << " variable " << name;
        }
    }
}

}  // namespace
}  // namespace cprisk::qual
