#include <gtest/gtest.h>

#include <sstream>

#include "qualitative/algebra.hpp"

namespace cprisk::qual {
namespace {

TEST(LevelAlgebra, SaturatingAdd) {
    EXPECT_EQ(saturating_add(Level::Low, Level::Low), Level::Medium);  // 1+1=2
    EXPECT_EQ(saturating_add(Level::High, Level::High), Level::VeryHigh);  // saturates
    EXPECT_EQ(saturating_add(Level::VeryLow, Level::Medium), Level::Medium);
}

TEST(LevelAlgebra, SaturatingSub) {
    EXPECT_EQ(saturating_sub(Level::High, Level::Medium), Level::Low);
    EXPECT_EQ(saturating_sub(Level::Low, Level::VeryHigh), Level::VeryLow);  // floor
}

TEST(LevelAlgebra, MidpointBiasedUp) {
    EXPECT_EQ(midpoint_up(Level::VeryLow, Level::VeryHigh), Level::Medium);
    EXPECT_EQ(midpoint_up(Level::Low, Level::Medium), Level::Medium);  // tie rounds up
    EXPECT_EQ(midpoint_up(Level::High, Level::High), Level::High);
}

TEST(LevelRange, Basics) {
    LevelRange exact(Level::Medium);
    EXPECT_TRUE(exact.is_exact());
    EXPECT_EQ(exact.width(), 0);
    EXPECT_TRUE(exact.contains(Level::Medium));
    EXPECT_FALSE(exact.contains(Level::High));

    LevelRange range(Level::Low, Level::High);
    EXPECT_FALSE(range.is_exact());
    EXPECT_EQ(range.width(), 2);
    EXPECT_TRUE(range.contains(Level::Medium));
    EXPECT_FALSE(range.contains(Level::VeryHigh));
}

TEST(LevelRange, NormalizesOrder) {
    LevelRange r(Level::High, Level::Low);
    EXPECT_EQ(r.lo, Level::Low);
    EXPECT_EQ(r.hi, Level::High);
}

TEST(LevelRange, Printing) {
    std::ostringstream os;
    os << LevelRange(Level::Low, Level::VeryHigh);
    EXPECT_EQ(os.str(), "[L..VH]");
    std::ostringstream os2;
    os2 << LevelRange(Level::Medium);
    EXPECT_EQ(os2.str(), "M");
}

TEST(SignAlgebra, SignOf) {
    EXPECT_EQ(sign_of(3.5), Sign::Positive);
    EXPECT_EQ(sign_of(-1e-9), Sign::Negative);
    EXPECT_EQ(sign_of(0.0), Sign::Zero);
}

TEST(SignAlgebra, Addition) {
    EXPECT_EQ(qadd(Sign::Positive, Sign::Positive), Sign::Positive);
    EXPECT_EQ(qadd(Sign::Negative, Sign::Negative), Sign::Negative);
    EXPECT_EQ(qadd(Sign::Positive, Sign::Negative), Sign::Ambiguous);
    EXPECT_EQ(qadd(Sign::Zero, Sign::Negative), Sign::Negative);
    EXPECT_EQ(qadd(Sign::Ambiguous, Sign::Zero), Sign::Ambiguous);
}

TEST(SignAlgebra, Multiplication) {
    EXPECT_EQ(qmul(Sign::Positive, Sign::Negative), Sign::Negative);
    EXPECT_EQ(qmul(Sign::Negative, Sign::Negative), Sign::Positive);
    EXPECT_EQ(qmul(Sign::Zero, Sign::Ambiguous), Sign::Zero);
    EXPECT_EQ(qmul(Sign::Positive, Sign::Ambiguous), Sign::Ambiguous);
}

TEST(SignAlgebra, Negation) {
    EXPECT_EQ(qneg(Sign::Positive), Sign::Negative);
    EXPECT_EQ(qneg(Sign::Negative), Sign::Positive);
    EXPECT_EQ(qneg(Sign::Zero), Sign::Zero);
    EXPECT_EQ(qneg(Sign::Ambiguous), Sign::Ambiguous);
}

TEST(SignAlgebra, SoundnessAgainstConcreteValues) {
    // Property: for sampled concrete values, the qualitative operators
    // over-approximate the concrete result sign.
    const double samples[] = {-2.0, -0.5, 0.0, 0.5, 2.0};
    for (double a : samples) {
        for (double b : samples) {
            const Sign qa = sign_of(a);
            const Sign qb = sign_of(b);
            EXPECT_TRUE(refines(sign_of(a + b), qadd(qa, qb)))
                << a << " + " << b;
            EXPECT_TRUE(refines(sign_of(a * b), qmul(qa, qb)))
                << a << " * " << b;
        }
    }
}

TEST(SignAlgebra, Refinement) {
    EXPECT_TRUE(refines(Sign::Positive, Sign::Ambiguous));
    EXPECT_TRUE(refines(Sign::Positive, Sign::Positive));
    EXPECT_FALSE(refines(Sign::Positive, Sign::Negative));
    EXPECT_FALSE(refines(Sign::Ambiguous, Sign::Positive));
}

}  // namespace
}  // namespace cprisk::qual
