#include <gtest/gtest.h>

#include <sstream>

#include "qualitative/level.hpp"

namespace cprisk::qual {
namespace {

TEST(Level, OrderedScale) {
    EXPECT_LT(Level::VeryLow, Level::Low);
    EXPECT_LT(Level::Low, Level::Medium);
    EXPECT_LT(Level::Medium, Level::High);
    EXPECT_LT(Level::High, Level::VeryHigh);
}

TEST(Level, IndexRoundTrip) {
    for (Level l : kAllLevels) {
        EXPECT_EQ(level_from_index(index_of(l)), l);
    }
}

TEST(Level, IndexSaturation) {
    EXPECT_EQ(level_from_index(-3), Level::VeryLow);
    EXPECT_EQ(level_from_index(99), Level::VeryHigh);
}

TEST(Level, Shift) {
    EXPECT_EQ(shift(Level::Low, 2), Level::High);
    EXPECT_EQ(shift(Level::Low, -2), Level::VeryLow);  // saturates
    EXPECT_EQ(shift(Level::VeryHigh, 1), Level::VeryHigh);
}

TEST(Level, MinMax) {
    EXPECT_EQ(qmax(Level::Low, Level::High), Level::High);
    EXPECT_EQ(qmin(Level::Low, Level::High), Level::Low);
    EXPECT_EQ(qmax(Level::Medium, Level::Medium), Level::Medium);
}

TEST(Level, ShortStrings) {
    EXPECT_EQ(to_short_string(Level::VeryLow), "VL");
    EXPECT_EQ(to_short_string(Level::Low), "L");
    EXPECT_EQ(to_short_string(Level::Medium), "M");
    EXPECT_EQ(to_short_string(Level::High), "H");
    EXPECT_EQ(to_short_string(Level::VeryHigh), "VH");
}

TEST(Level, ParseShortAndLong) {
    EXPECT_EQ(parse_level("VL").value(), Level::VeryLow);
    EXPECT_EQ(parse_level("vh").value(), Level::VeryHigh);
    EXPECT_EQ(parse_level("very low").value(), Level::VeryLow);
    EXPECT_EQ(parse_level("Medium").value(), Level::Medium);
    EXPECT_EQ(parse_level(" H ").value(), Level::High);
    EXPECT_FALSE(parse_level("enormous").ok());
}

TEST(Level, ParseRoundTrip) {
    for (Level l : kAllLevels) {
        EXPECT_EQ(parse_level(to_short_string(l)).value(), l);
        EXPECT_EQ(parse_level(to_long_string(l)).value(), l);
    }
}

TEST(Level, StreamOutput) {
    std::ostringstream os;
    os << Level::High;
    EXPECT_EQ(os.str(), "H");
}

}  // namespace
}  // namespace cprisk::qual
