#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qualitative/state.hpp"

namespace cprisk::qual {
namespace {

TEST(QualitativeState, SetGet) {
    QualitativeState s;
    s.set("level", "normal");
    EXPECT_TRUE(s.has("level"));
    EXPECT_EQ(s.get("level").value(), "normal");
    EXPECT_FALSE(s.has("flow"));
    EXPECT_FALSE(s.get("flow").ok());
    EXPECT_EQ(s.get_or("flow", "none"), "none");
}

TEST(QualitativeState, Overwrite) {
    QualitativeState s;
    s.set("level", "normal");
    s.set("level", "high");
    EXPECT_EQ(s.get("level").value(), "high");
    EXPECT_EQ(s.size(), 1u);
}

TEST(QualitativeState, EqualityAndPrinting) {
    QualitativeState a;
    a.set("x", "1");
    a.set("y", "2");
    QualitativeState b;
    b.set("y", "2");
    b.set("x", "1");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.to_string(), "x=1, y=2");
}

TEST(Trajectory, MergesConsecutiveDuplicates) {
    QualitativeTrajectory traj;
    QualitativeState s1;
    s1.set("level", "normal");
    QualitativeState s2;
    s2.set("level", "high");

    traj.append(0.0, s1);
    traj.append(1.0, s1);  // same -> merged
    traj.append(2.0, s2);
    traj.append(3.0, s2);  // same -> merged
    EXPECT_EQ(traj.size(), 2u);
    EXPECT_EQ(traj.step(1).time, 2.0);
}

TEST(Trajectory, TimeMustBeMonotone) {
    QualitativeTrajectory traj;
    QualitativeState s1;
    s1.set("x", "a");
    QualitativeState s2;
    s2.set("x", "b");
    traj.append(1.0, s1);
    EXPECT_THROW(traj.append(0.5, s2), Error);
}

TEST(Trajectory, EverAlwaysFirstTime) {
    QualitativeTrajectory traj;
    QualitativeState normal;
    normal.set("level", "normal");
    QualitativeState overflow;
    overflow.set("level", "overflow");
    traj.append(0.0, normal);
    traj.append(5.0, overflow);

    EXPECT_TRUE(traj.ever("level", "overflow"));
    EXPECT_FALSE(traj.ever("level", "empty"));
    EXPECT_FALSE(traj.always("level", "normal"));
    EXPECT_TRUE(traj.always("pressure", "whatever"));  // vacuous: never assigned
    EXPECT_EQ(traj.first_time("level", "overflow").value(), 5.0);
    EXPECT_FALSE(traj.first_time("level", "empty").ok());
}

TEST(Trajectory, OutOfRangeStepThrows) {
    QualitativeTrajectory traj;
    EXPECT_THROW((void)traj.step(0), Error);
}

}  // namespace
}  // namespace cprisk::qual
