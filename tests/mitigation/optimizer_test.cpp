// Mitigation selection: exact B&B, ASP engine agreement (ablation), budget
// constraints, multi-phase planning.
#include <gtest/gtest.h>

#include "mitigation/optimizer.hpp"

namespace cprisk::mitigation {
namespace {

/// Two threats: t1 coverable by m1 (cost 2) or m2 (cost 5); t2 needs m3
/// (cost 4) for one mutation and m1/m3 for the other.
MitigationProblem small_problem() {
    MitigationProblem problem;
    problem.candidates = {
        {"m1", "Patch", 2},
        {"m2", "Segment", 5},
        {"m3", "Train", 4},
    };
    Threat t1;
    t1.scenario_id = "t1";
    t1.loss = 100;
    t1.mutation_covers = {{"m1", "m2"}};
    Threat t2;
    t2.scenario_id = "t2";
    t2.loss = 50;
    t2.mutation_covers = {{"m3"}, {"m1", "m3"}};
    problem.threats = {t1, t2};
    return problem;
}

TEST(Problem, BlockingSemantics) {
    auto problem = small_problem();
    EXPECT_TRUE(MitigationProblem::blocks(problem.threats[0], {"m1"}));
    EXPECT_TRUE(MitigationProblem::blocks(problem.threats[0], {"m2"}));
    EXPECT_FALSE(MitigationProblem::blocks(problem.threats[0], {"m3"}));
    EXPECT_TRUE(MitigationProblem::blocks(problem.threats[1], {"m3"}));
    EXPECT_FALSE(MitigationProblem::blocks(problem.threats[1], {"m1"}));  // first mutation open
}

TEST(Problem, TotalCost) {
    auto problem = small_problem();
    EXPECT_EQ(problem.total_cost({}), 150);          // all losses
    EXPECT_EQ(problem.total_cost({"m1"}), 2 + 50);   // t1 blocked
    EXPECT_EQ(problem.total_cost({"m1", "m3"}), 6);  // everything blocked
}

TEST(Problem, Blockable) {
    Threat hopeless;
    hopeless.mutation_covers = {{}};
    EXPECT_FALSE(hopeless.blockable());
    Threat fine;
    fine.mutation_covers = {{"m"}};
    EXPECT_TRUE(fine.blockable());
}

TEST(ExactOptimizer, FindsOptimum) {
    auto selection = optimize_exact(small_problem());
    EXPECT_EQ(selection.chosen, (std::vector<std::string>{"m1", "m3"}));
    EXPECT_EQ(selection.mitigation_cost, 6);
    EXPECT_EQ(selection.residual_loss, 0);
    EXPECT_TRUE(selection.unblocked.empty());
}

TEST(ExactOptimizer, LeavesCheapThreatsUnblocked) {
    auto problem = small_problem();
    problem.threats[1].loss = 3;  // blocking t2 costs 4 via m3 — not worth it
    auto selection = optimize_exact(problem);
    EXPECT_EQ(selection.chosen, (std::vector<std::string>{"m1"}));
    EXPECT_EQ(selection.residual_loss, 3);
    EXPECT_EQ(selection.unblocked, (std::vector<std::string>{"t2"}));
}

TEST(ExactOptimizer, BudgetConstraint) {
    OptimizerOptions options;
    options.budget = 4;  // cannot afford m1+m3
    auto selection = optimize_exact(small_problem(), options);
    EXPECT_LE(selection.mitigation_cost, 4);
    // Best under budget: m3 (cost 4) blocks t2 (50); t1 (100) stays... or
    // m1 (cost 2) blocks t1. m1 is better: residual 50 vs 100.
    EXPECT_EQ(selection.chosen, (std::vector<std::string>{"m1"}));
    EXPECT_EQ(selection.residual_loss, 50);
}

TEST(ExactOptimizer, ZeroBudgetChoosesNothing) {
    OptimizerOptions options;
    options.budget = 0;
    auto selection = optimize_exact(small_problem(), options);
    EXPECT_TRUE(selection.chosen.empty());
    EXPECT_EQ(selection.residual_loss, 150);
}

TEST(ExactOptimizer, UnblockableThreatIgnoredGracefully) {
    auto problem = small_problem();
    Threat hopeless;
    hopeless.scenario_id = "t3";
    hopeless.loss = 1000;
    hopeless.mutation_covers = {{}};
    problem.threats.push_back(hopeless);
    auto selection = optimize_exact(problem);
    EXPECT_EQ(selection.chosen, (std::vector<std::string>{"m1", "m3"}));
    EXPECT_EQ(selection.residual_loss, 1000);
}

TEST(AspOptimizer, AgreesWithExact) {
    auto problem = small_problem();
    auto exact = optimize_exact(problem);
    auto asp = optimize_asp(problem);
    ASSERT_TRUE(asp.ok()) << asp.error();
    EXPECT_EQ(asp.value().total_cost(), exact.total_cost());
    EXPECT_EQ(asp.value().chosen, exact.chosen);
}

TEST(AspOptimizer, AgreesWithExactUnderBudget) {
    OptimizerOptions options;
    options.budget = 4;
    auto exact = optimize_exact(small_problem(), options);
    auto asp = optimize_asp(small_problem(), options);
    ASSERT_TRUE(asp.ok()) << asp.error();
    EXPECT_EQ(asp.value().total_cost(), exact.total_cost());
}

TEST(AspOptimizer, RandomizedAgreementSweep) {
    // Property: both engines find the same optimal total cost across a
    // deterministic family of generated problems.
    for (int seed = 0; seed < 12; ++seed) {
        MitigationProblem problem;
        const int n_mitigations = 3 + seed % 3;
        for (int m = 0; m < n_mitigations; ++m) {
            problem.candidates.push_back(Candidate{
                "m" + std::to_string(m), "M" + std::to_string(m), 1 + (seed * 7 + m * 3) % 5});
        }
        const int n_threats = 2 + seed % 3;
        for (int t = 0; t < n_threats; ++t) {
            Threat threat;
            threat.scenario_id = "t" + std::to_string(t);
            threat.loss = 5 + (seed * 11 + t * 13) % 40;
            const int n_mutations = 1 + (seed + t) % 2;
            for (int u = 0; u < n_mutations; ++u) {
                std::vector<std::string> covers;
                for (int m = 0; m < n_mitigations; ++m) {
                    if ((seed + t + u + m) % 2 == 0) covers.push_back("m" + std::to_string(m));
                }
                threat.mutation_covers.push_back(std::move(covers));
            }
            problem.threats.push_back(std::move(threat));
        }
        auto exact = optimize_exact(problem);
        auto asp = optimize_asp(problem);
        ASSERT_TRUE(asp.ok()) << asp.error();
        EXPECT_EQ(asp.value().total_cost(), exact.total_cost()) << "seed " << seed;
    }
}

TEST(Phases, MultiPhasePlanCoversEverythingEventually) {
    auto phases = plan_phases(small_problem(), /*budget_per_phase=*/4);
    ASSERT_GE(phases.size(), 2u);
    EXPECT_EQ(phases[0].number, 1);
    // Phase budgets respected.
    for (const Phase& phase : phases) {
        EXPECT_LE(phase.selection.mitigation_cost, 4);
    }
    // Across phases, both threats end up blocked.
    std::vector<std::string> all_chosen;
    for (const Phase& phase : phases) {
        all_chosen.insert(all_chosen.end(), phase.selection.chosen.begin(),
                          phase.selection.chosen.end());
    }
    auto problem = small_problem();
    for (const Threat& threat : problem.threats) {
        EXPECT_TRUE(MitigationProblem::blocks(threat, all_chosen)) << threat.scenario_id;
    }
}

TEST(Phases, FirstPhaseTakesHighestValueAction) {
    // "if a company has a limited budget let's first deal with the most
    // potential and severe risk" — phase 1 must block the 100-loss threat.
    auto phases = plan_phases(small_problem(), 4);
    ASSERT_FALSE(phases.empty());
    auto problem = small_problem();
    EXPECT_TRUE(MitigationProblem::blocks(problem.threats[0], phases[0].selection.chosen));
}

TEST(Phases, NoThreatsNoPhases) {
    MitigationProblem empty;
    empty.candidates = {{"m1", "M1", 1}};
    EXPECT_TRUE(plan_phases(empty, 10).empty());
}

TEST(Encoding, AspProgramShape) {
    auto text = encode_asp(small_problem());
    EXPECT_NE(text.find("cand(m1)"), std::string::npos);
    EXPECT_NE(text.find("{ active(M) : cand(M) }."), std::string::npos);
    EXPECT_NE(text.find(":~ active(M), cost(M, C). [C@1, M]"), std::string::npos);
    EXPECT_NE(text.find("loss(t1, 100)"), std::string::npos);
}

}  // namespace
}  // namespace cprisk::mitigation
