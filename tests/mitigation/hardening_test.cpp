// "Raise the bar" hardening: maximize the attacker's cheapest remaining
// option under a budget (paper §IV-D "most efficient attack/mitigation").
#include <gtest/gtest.h>

#include "mitigation/optimizer.hpp"

namespace cprisk::mitigation {
namespace {

/// Three attacker threats of ascending cost plus one spontaneous fault:
///   t_cheap  (attack cost 2)  blocked by m1 (cost 3)
///   t_mid    (attack cost 5)  blocked by m2 (cost 3)
///   t_costly (attack cost 9)  blocked by m3 (cost 6)
///   t_fault  (no attacker)    blocked by m4 (cost 1)
MitigationProblem ladder() {
    MitigationProblem problem;
    problem.candidates = {
        {"m1", "M1", 3}, {"m2", "M2", 3}, {"m3", "M3", 6}, {"m4", "M4", 1}};
    auto threat = [](const char* id, long long loss, long long attack_cost,
                     const char* mitigation) {
        Threat t;
        t.scenario_id = id;
        t.loss = loss;
        t.attack_cost = attack_cost;
        t.mutation_covers = {{mitigation}};
        return t;
    };
    problem.threats = {
        threat("t_cheap", 40, 2, "m1"),
        threat("t_mid", 40, 5, "m2"),
        threat("t_costly", 40, 9, "m3"),
        threat("t_fault", 10, 0, "m4"),
    };
    return problem;
}

TEST(Hardening, RaisesTheFloorWithinBudget) {
    // Budget 6: blocking t_cheap and t_mid (m1+m2) raises the attacker's
    // cheapest option from 2 to 9.
    auto result = harden_attack_cost(ladder(), 6);
    EXPECT_EQ(result.selection.chosen, (std::vector<std::string>{"m1", "m2"}));
    ASSERT_TRUE(result.cheapest_remaining_attack.has_value());
    EXPECT_EQ(*result.cheapest_remaining_attack, 9);
}

TEST(Hardening, SmallBudgetBlocksTheCheapestAttackFirst) {
    auto result = harden_attack_cost(ladder(), 3);
    // Only one 3-cost mitigation fits: m1 (raising the floor 2 -> 5)
    // dominates m2 (floor stays 2).
    EXPECT_EQ(result.selection.chosen, (std::vector<std::string>{"m1"}));
    ASSERT_TRUE(result.cheapest_remaining_attack.has_value());
    EXPECT_EQ(*result.cheapest_remaining_attack, 5);
}

TEST(Hardening, FullBudgetEliminatesAllAttacks) {
    auto result = harden_attack_cost(ladder(), 12);
    EXPECT_FALSE(result.cheapest_remaining_attack.has_value());
    // All attacker threats blocked; the tie-break then minimizes residual
    // loss, so the spontaneous fault (m4, cost 1, within leftover budget)
    // is covered too when affordable.
    EXPECT_LE(result.selection.mitigation_cost, 12);
    EXPECT_TRUE(MitigationProblem::blocks(ladder().threats[0], result.selection.chosen));
    EXPECT_TRUE(MitigationProblem::blocks(ladder().threats[1], result.selection.chosen));
    EXPECT_TRUE(MitigationProblem::blocks(ladder().threats[2], result.selection.chosen));
}

TEST(Hardening, SpontaneousFaultsDoNotDriveTheFloor) {
    // With budget for m4 only, blocking the fault does not change the
    // attacker floor; the objective still prefers m1 if affordable... at
    // budget 1 only m4 fits, and the floor stays at the cheapest attack.
    auto result = harden_attack_cost(ladder(), 1);
    ASSERT_TRUE(result.cheapest_remaining_attack.has_value());
    EXPECT_EQ(*result.cheapest_remaining_attack, 2);
    // Tie on the floor across {} and {m4}: lower residual wins -> m4 chosen.
    EXPECT_EQ(result.selection.chosen, (std::vector<std::string>{"m4"}));
}

TEST(Hardening, ZeroBudgetReportsBaseline) {
    auto result = harden_attack_cost(ladder(), 0);
    EXPECT_TRUE(result.selection.chosen.empty());
    ASSERT_TRUE(result.cheapest_remaining_attack.has_value());
    EXPECT_EQ(*result.cheapest_remaining_attack, 2);
}

TEST(Hardening, FloorNeverDecreasesWithBudget) {
    // Property: a larger budget can only raise (or eliminate) the floor.
    long long previous = -1;
    for (long long budget = 0; budget <= 13; ++budget) {
        auto result = harden_attack_cost(ladder(), budget);
        const long long floor = result.cheapest_remaining_attack.value_or(
            std::numeric_limits<long long>::max());
        EXPECT_GE(floor, previous) << "budget " << budget;
        previous = floor;
    }
}

}  // namespace
}  // namespace cprisk::mitigation
