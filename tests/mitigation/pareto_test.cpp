// Pareto-front mitigation planning (mitigation/optimizer.hpp,
// docs/quantitative-risk.md): nondominance and determinism of the exact
// front, ASP/exact engine agreement on objective tuples, knee properties,
// and the deprecated HardeningResult shim's equality with the knee.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "mitigation/optimizer.hpp"

namespace cprisk::mitigation {
namespace {

/// Same fixture as optimizer_test.cpp: t1 coverable by m1 (2) or m2 (5),
/// t2 by m3 (4) alone or m1+m3.
MitigationProblem small_problem() {
    MitigationProblem problem;
    problem.candidates = {
        {"m1", "Patch", 2},
        {"m2", "Segment", 5},
        {"m3", "Train", 4},
    };
    Threat t1;
    t1.scenario_id = "t1";
    t1.loss = 100;
    t1.mutation_covers = {{"m1", "m2"}};
    Threat t2;
    t2.scenario_id = "t2";
    t2.loss = 50;
    t2.mutation_covers = {{"m3"}, {"m1", "m3"}};
    problem.threats = {t1, t2};
    return problem;
}

/// a dominates b on (cost asc, residual asc, coverage desc), strictly
/// better in at least one objective.
bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
    if (a.cost() > b.cost() || a.residual() > b.residual() || a.coverage < b.coverage) {
        return false;
    }
    return a.cost() < b.cost() || a.residual() < b.residual() || a.coverage > b.coverage;
}

std::vector<std::tuple<long long, long long, std::size_t>> objectives(
    const ParetoFront& front) {
    std::vector<std::tuple<long long, long long, std::size_t>> tuples;
    for (const ParetoPoint& point : front.points()) {
        tuples.emplace_back(point.cost(), point.residual(), point.coverage);
    }
    return tuples;
}

/// Deterministic problem generator (seeded LCG; no wall-clock or global
/// randomness so failures replay exactly). Small enough for the
/// exponential reference engine.
MitigationProblem random_problem(unsigned long long seed) {
    unsigned long long state = seed * 6364136223846793005ull + 1442695040888963407ull;
    auto next = [&state](unsigned long long bound) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return (state >> 33) % bound;
    };
    MitigationProblem problem;
    const std::size_t candidates = 2 + next(4);  // 2..5
    for (std::size_t i = 0; i < candidates; ++i) {
        problem.candidates.push_back({"m" + std::to_string(i), "Gen",
                                      static_cast<long long>(1 + next(9))});
    }
    const std::size_t threats = 1 + next(4);  // 1..4
    for (std::size_t i = 0; i < threats; ++i) {
        Threat threat;
        threat.scenario_id = "t" + std::to_string(i);
        threat.loss = static_cast<long long>(5 + next(95));
        const std::size_t mutations = 1 + next(2);
        for (std::size_t m = 0; m < mutations; ++m) {
            std::vector<std::string> covers;
            const std::size_t width = next(candidates + 1);  // may be empty
            for (std::size_t c = 0; c < width; ++c) {
                covers.push_back("m" + std::to_string(next(candidates)));
            }
            std::sort(covers.begin(), covers.end());
            covers.erase(std::unique(covers.begin(), covers.end()), covers.end());
            threat.mutation_covers.push_back(std::move(covers));
        }
        problem.threats.push_back(std::move(threat));
    }
    return problem;
}

TEST(ParetoFront, SmallProblemFrontIsTheExpectedTradeOffCurve) {
    const ParetoFront front = pareto_front_exact(small_problem());
    ASSERT_FALSE(front.empty());
    // {} (0 cost, 150 residual), {m1} (2, 50), {m1,m3} (6, 0) are all
    // nondominated; {m2}-flavoured points are dominated by their m1 twins.
    ASSERT_EQ(front.size(), 3u);
    EXPECT_TRUE(front.points()[0].selection.chosen.empty());
    EXPECT_EQ(front.points()[1].selection.chosen, (std::vector<std::string>{"m1"}));
    EXPECT_EQ(front.points()[2].selection.chosen, (std::vector<std::string>{"m1", "m3"}));
    // Sorted by ascending mitigation cost.
    EXPECT_EQ(front.points()[0].cost(), 0);
    EXPECT_EQ(front.points()[1].cost(), 2);
    EXPECT_EQ(front.points()[2].cost(), 6);
    // The knee is the minimum-total-cost point: {m1,m3} at 6 + 0.
    EXPECT_EQ(&front.knee(), &front.points()[2]);
}

TEST(ParetoFront, GeneratedFrontsAreNondominatedAndComplete) {
    for (unsigned long long seed = 1; seed <= 24; ++seed) {
        const MitigationProblem problem = random_problem(seed);
        const ParetoFront front = pareto_front_exact(problem);
        ASSERT_FALSE(front.empty()) << "seed " << seed;  // {} is always a point

        // No point dominates another.
        for (std::size_t i = 0; i < front.size(); ++i) {
            for (std::size_t j = 0; j < front.size(); ++j) {
                if (i == j) continue;
                EXPECT_FALSE(dominates(front.points()[i], front.points()[j]))
                    << "seed " << seed << ": point " << i << " dominates " << j;
            }
        }
        // The front dominates-or-ties every subset (spot-check via the
        // knee's optimality: no subset beats its total cost).
        const ParetoPoint& knee = front.knee();
        const Selection optimal = optimize_exact(problem);
        EXPECT_EQ(knee.selection.total_cost(), optimal.total_cost()) << "seed " << seed;
    }
}

TEST(ParetoFront, AspEngineMatchesTheExactFrontOnObjectives) {
    for (unsigned long long seed = 1; seed <= 12; ++seed) {
        const MitigationProblem problem = random_problem(seed);
        const ParetoFront exact = pareto_front_exact(problem);
        auto asp = pareto_front(problem);
        ASSERT_TRUE(asp.ok()) << "seed " << seed << ": " << asp.error();
        EXPECT_EQ(objectives(asp.value()), objectives(exact)) << "seed " << seed;
    }
}

TEST(ParetoFront, DeterministicAcrossRepeatedRuns) {
    const MitigationProblem problem = random_problem(5);
    const ParetoFront first = pareto_front_exact(problem);
    const ParetoFront second = pareto_front_exact(problem);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first.points()[i].selection.chosen, second.points()[i].selection.chosen);
    }
}

TEST(ParetoFront, BudgetCapsEveryPoint) {
    OptimizerOptions options;
    options.budget = 4;
    auto front = pareto_front(small_problem(), options);
    ASSERT_TRUE(front.ok()) << front.error();
    ASSERT_FALSE(front.value().empty());
    for (const ParetoPoint& point : front.value().points()) {
        EXPECT_LE(point.cost(), 4);
    }
}

TEST(ParetoFront, KneePrefersCoverageThenLexSmallestOnTies) {
    // Two disjoint single-mitigation covers of equal cost for one threat:
    // both {ma} and {mb} land at (3, 0, 1); dedup keeps the lexicographically
    // smaller chosen set and the knee reports it.
    MitigationProblem problem;
    problem.candidates = {{"mb", "B", 3}, {"ma", "A", 3}};
    Threat threat;
    threat.scenario_id = "t";
    threat.loss = 40;
    threat.mutation_covers = {{"ma", "mb"}};
    problem.threats = {threat};
    const ParetoFront front = pareto_front_exact(problem);
    const ParetoPoint& knee = front.knee();
    EXPECT_EQ(knee.selection.chosen, (std::vector<std::string>{"ma"}));
    EXPECT_EQ(knee.coverage, 1u);
}

// The one-release compatibility shim: silence the deprecation warnings the
// rest of the tree is built to surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(HardeningShim, EqualsTheParetoKnee) {
    for (unsigned long long seed = 1; seed <= 12; ++seed) {
        const MitigationProblem problem = random_problem(seed);
        const HardeningResult shim = harden(problem);
        const ParetoFront front = pareto_front_exact(problem);
        const ParetoPoint& knee = front.knee();
        EXPECT_EQ(shim.selection.chosen, knee.selection.chosen) << "seed " << seed;
        EXPECT_EQ(shim.selection.mitigation_cost, knee.selection.mitigation_cost);
        EXPECT_EQ(shim.selection.residual_loss, knee.selection.residual_loss);
    }
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace cprisk::mitigation
