// Petri net baseline: token-game semantics, reachability, deadlocks, and a
// water-tank token model cross-checked against the EPA verdicts.
#include <gtest/gtest.h>

#include "petri/petri_net.hpp"

namespace cprisk::petri {
namespace {

/// The classic producer/consumer net with a 1-slot buffer.
PetriNet producer_consumer() {
    PetriNet net;
    EXPECT_TRUE(net.add_place("ready_to_produce", 1).ok());
    EXPECT_TRUE(net.add_place("buffer", 0).ok());
    EXPECT_TRUE(net.add_place("ready_to_consume", 1).ok());
    EXPECT_TRUE(net.add_transition("produce").ok());
    EXPECT_TRUE(net.add_transition("consume").ok());
    EXPECT_TRUE(net.add_input_arc("ready_to_produce", "produce").ok());
    EXPECT_TRUE(net.add_output_arc("produce", "buffer").ok());
    EXPECT_TRUE(net.add_output_arc("produce", "ready_to_produce").ok());
    EXPECT_TRUE(net.add_input_arc("buffer", "consume").ok());
    EXPECT_TRUE(net.add_input_arc("ready_to_consume", "consume").ok());
    EXPECT_TRUE(net.add_output_arc("consume", "ready_to_consume").ok());
    return net;
}

TEST(Petri, ConstructionValidation) {
    PetriNet net;
    ASSERT_TRUE(net.add_place("p", 1).ok());
    EXPECT_FALSE(net.add_place("p").ok());           // duplicate
    EXPECT_FALSE(net.add_place("q", -1).ok());       // negative tokens
    ASSERT_TRUE(net.add_transition("t").ok());
    EXPECT_FALSE(net.add_transition("p").ok());      // clashes with place
    EXPECT_FALSE(net.add_input_arc("ghost", "t").ok());
    EXPECT_FALSE(net.add_input_arc("p", "t", 0).ok());  // zero weight
}

TEST(Petri, EnablingAndFiring) {
    PetriNet net;
    ASSERT_TRUE(net.add_place("a", 2).ok());
    ASSERT_TRUE(net.add_place("b", 0).ok());
    ASSERT_TRUE(net.add_transition("move2").ok());
    ASSERT_TRUE(net.add_input_arc("a", "move2", 2).ok());
    ASSERT_TRUE(net.add_output_arc("move2", "b", 1).ok());

    auto m0 = net.initial_marking();
    ASSERT_TRUE(net.enabled(0, m0));
    auto m1 = net.fire(0, m0);
    ASSERT_TRUE(m1.ok());
    EXPECT_EQ(net.tokens("a", m1.value()).value(), 0);
    EXPECT_EQ(net.tokens("b", m1.value()).value(), 1);
    EXPECT_FALSE(net.enabled(0, m1.value()));
    EXPECT_FALSE(net.fire(0, m1.value()).ok());
}

TEST(Petri, ProducerConsumerUnboundedBufferCaps) {
    auto net = producer_consumer();
    // The buffer is unbounded: exploration hits the cap.
    auto exploration = net.explore(50);
    EXPECT_FALSE(exploration.exhausted);
}

TEST(Petri, BoundedBufferExhaustive) {
    // Add a capacity-complement place to bound the buffer at 2.
    auto net = producer_consumer();
    ASSERT_TRUE(net.add_place("buffer_free", 2).ok());
    ASSERT_TRUE(net.add_input_arc("buffer_free", "produce").ok());
    ASSERT_TRUE(net.add_output_arc("consume", "buffer_free").ok());

    auto exploration = net.explore();
    EXPECT_TRUE(exploration.exhausted);
    EXPECT_EQ(exploration.markings.size(), 3u);  // buffer = 0, 1, 2
    EXPECT_TRUE(exploration.deadlocks.empty()); // always something enabled
}

TEST(Petri, DeadlockDetection) {
    PetriNet net;
    ASSERT_TRUE(net.add_place("token", 1).ok());
    ASSERT_TRUE(net.add_transition("consume_once").ok());
    ASSERT_TRUE(net.add_input_arc("token", "consume_once").ok());
    auto exploration = net.explore();
    ASSERT_TRUE(exploration.exhausted);
    ASSERT_EQ(exploration.deadlocks.size(), 1u);
    EXPECT_EQ(exploration.deadlocks[0][0], 0);  // empty marking is stuck
}

TEST(Petri, CanReach) {
    auto net = producer_consumer();
    auto buffer = net.place_index("buffer").value();
    auto three = net.can_reach(
        [&](const Marking& m) { return m[buffer] >= 3; }, 1000);
    ASSERT_TRUE(three.ok());
    EXPECT_TRUE(three.value());

    // Negative counts are unreachable; with an unbounded net the search hits
    // the cap and reports failure rather than a wrong "false".
    auto negative = net.can_reach(
        [&](const Marking& m) { return m[buffer] < 0; }, 200);
    EXPECT_FALSE(negative.ok());
}

TEST(Petri, CanReachExhaustedNegative) {
    PetriNet net;
    ASSERT_TRUE(net.add_place("a", 1).ok());
    ASSERT_TRUE(net.add_place("b", 0).ok());
    ASSERT_TRUE(net.add_transition("t").ok());
    ASSERT_TRUE(net.add_input_arc("a", "t").ok());
    ASSERT_TRUE(net.add_output_arc("t", "b").ok());
    auto unreachable = net.can_reach(
        [&](const Marking& m) { return m[0] >= 2; });
    ASSERT_TRUE(unreachable.ok());
    EXPECT_FALSE(unreachable.value());
}

/// Water-tank token model: the level is a token position among four places;
/// `fill` raises it while the feed runs, `drain` lowers it but requires the
/// output valve to be operational (a token on out_valve_ok). The F2 fault
/// removes that token.
PetriNet watertank_net(bool f2_output_stuck_closed) {
    PetriNet net;
    EXPECT_TRUE(net.add_place("level_low", 0).ok());
    EXPECT_TRUE(net.add_place("level_normal", 1).ok());
    EXPECT_TRUE(net.add_place("level_high", 0).ok());
    EXPECT_TRUE(net.add_place("level_overflow", 0).ok());
    EXPECT_TRUE(net.add_place("out_valve_ok", f2_output_stuck_closed ? 0 : 1).ok());

    EXPECT_TRUE(net.add_transition("fill_n_h").ok());
    EXPECT_TRUE(net.add_input_arc("level_normal", "fill_n_h").ok());
    EXPECT_TRUE(net.add_output_arc("fill_n_h", "level_high").ok());

    // At high level the controller drains if the valve works...
    EXPECT_TRUE(net.add_transition("drain_h_n").ok());
    EXPECT_TRUE(net.add_input_arc("level_high", "drain_h_n").ok());
    EXPECT_TRUE(net.add_input_arc("out_valve_ok", "drain_h_n").ok());
    EXPECT_TRUE(net.add_output_arc("drain_h_n", "level_normal").ok());
    EXPECT_TRUE(net.add_output_arc("drain_h_n", "out_valve_ok").ok());

    // ...otherwise the feed pushes it over the top.
    EXPECT_TRUE(net.add_transition("fill_h_o").ok());
    EXPECT_TRUE(net.add_input_arc("level_high", "fill_h_o").ok());
    EXPECT_TRUE(net.add_output_arc("fill_h_o", "level_overflow").ok());
    return net;
}

TEST(Petri, WaterTankF2OverflowReachable) {
    // Matches the EPA verdict for S4: with F2, overflow is reachable.
    auto faulty = watertank_net(/*f2=*/true);
    auto overflow_place = faulty.place_index("level_overflow").value();
    auto reached = faulty.can_reach(
        [&](const Marking& m) { return m[overflow_place] > 0; });
    ASSERT_TRUE(reached.ok());
    EXPECT_TRUE(reached.value());
}

TEST(Petri, WaterTankNominalOverflowStillPossibleNondeterministically) {
    // The untimed token game is an over-approximation: without priorities,
    // fill_h_o races drain_h_n even in the healthy net — exactly the kind of
    // spurious abstract behaviour the paper's CEGAR refinement removes (the
    // qualitative EPA encodes the controller's priority; the bare net
    // cannot).
    auto healthy = watertank_net(/*f2=*/false);
    auto overflow_place = healthy.place_index("level_overflow").value();
    auto reached = healthy.can_reach(
        [&](const Marking& m) { return m[overflow_place] > 0; });
    ASSERT_TRUE(reached.ok());
    EXPECT_TRUE(reached.value());  // over-approximate — documents the gap
}

}  // namespace
}  // namespace cprisk::petri
