// Bayesian likelihood priors and the anytime priority policy
// (risk/prior.hpp, docs/quantitative-risk.md): policy parsing, default and
// explicit Beta parameters, expected-risk scoring, deterministic ordering,
// sensitivity band radii, and the posterior coverage bound.
#include "risk/prior.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "model/dsl.hpp"

namespace cprisk::risk {
namespace {

constexpr const char* kChain = R"(
component sensor sensor asset=L
component ctrl controller asset=M
component pump actuator asset=VH

fault sensor drift corruption severity=L likelihood=H
fault ctrl crash omission severity=M likelihood=L
fault pump stuck stuck_at forced=open severity=H likelihood=VL

relation sensor signal_flow ctrl
relation ctrl triggering pump
)";

model::SystemModel chain_model(const std::string& extra = "") {
    auto parsed = model::parse_model(std::string(kChain) + extra);
    EXPECT_TRUE(parsed.ok()) << parsed.error();
    return std::move(parsed).value();
}

security::AttackScenario scenario(std::string id,
                                  std::vector<security::Mutation> mutations) {
    security::AttackScenario s;
    s.id = std::move(id);
    s.mutations = std::move(mutations);
    return s;
}

TEST(PriorityPolicy, NamesRoundTripAndAcceptTheCliSpelling) {
    EXPECT_EQ(to_string(PriorityPolicy::Enumeration), "enumeration");
    EXPECT_EQ(to_string(PriorityPolicy::ExpectedRisk), "expected_risk");
    // The journal echo parses back, and so does the hyphenated CLI form.
    EXPECT_EQ(parse_priority_policy("enumeration"), PriorityPolicy::Enumeration);
    EXPECT_EQ(parse_priority_policy("expected_risk"), PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(parse_priority_policy("expected-risk"), PriorityPolicy::ExpectedRisk);
    EXPECT_FALSE(parse_priority_policy("fifo").has_value());
    EXPECT_FALSE(parse_priority_policy("").has_value());
}

TEST(BetaPrior, LikelihoodDefaultsAreTheFivePointScale) {
    const double expected[] = {0.02, 0.08, 0.2, 0.45, 0.8};
    for (int i = 0; i < 5; ++i) {
        const BetaPrior prior = BetaPrior::from_likelihood(qual::kAllLevels[i]);
        EXPECT_NEAR(prior.mean(), expected[i], 1e-9);
        EXPECT_NEAR(prior.alpha + prior.beta, 10.0, 1e-9);  // strength 10
        EXPECT_FALSE(prior.explicit_spec);
    }
}

TEST(BetaPrior, ExplicitParametersWinOverTheLikelihoodLevel) {
    const model::SystemModel model =
        chain_model("fault pump leak corruption likelihood=VL prior=9/1\n");
    const PriorSet priors = PriorSet::from_model(model);
    EXPECT_TRUE(priors.any_explicit());
    const BetaPrior* leak = priors.find("pump", "leak");
    ASSERT_NE(leak, nullptr);
    EXPECT_TRUE(leak->explicit_spec);
    EXPECT_NEAR(leak->mean(), 0.9, 1e-9);
    // The sibling fault without prior= keeps its likelihood default.
    const BetaPrior* stuck = priors.find("pump", "stuck");
    ASSERT_NE(stuck, nullptr);
    EXPECT_FALSE(stuck->explicit_spec);
    EXPECT_NEAR(stuck->mean(), 0.02, 1e-9);
}

TEST(ScenarioPriority, EmptyMutationSetScoresZero) {
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(priority.score_micros(scenario("S0", {})), 0);
}

TEST(ScenarioPriority, ImpactWeightFollowsTheDependencyReach) {
    // sensor drift: mean 0.45, and the forward closure sensor->ctrl->pump
    // reaches the VH pump, so the weight index is 4: 0.45 * 16 = 7.2.
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(priority.score_micros(scenario("S1", {{"sensor", "drift"}})), 7200000);
    // A joint scenario multiplies activation means: 0.45 * 0.08 * 16.
    const long long joint =
        priority.score_micros(scenario("S2", {{"sensor", "drift"}, {"ctrl", "crash"}}));
    EXPECT_EQ(joint, 576000);
}

TEST(ScenarioPriority, OrderSortsByDescendingScoreTiesById) {
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::ExpectedRisk);
    std::vector<security::AttackScenario> scenarios = {
        scenario("S3", {{"ctrl", "crash"}}),
        scenario("S2", {{"sensor", "drift"}}),
        scenario("S4", {{"pump", "stuck"}}),
        scenario("S1", {{"sensor", "drift"}}),  // ties with S2, id breaks it
    };
    priority.order(scenarios);
    ASSERT_EQ(scenarios.size(), 4u);
    EXPECT_EQ(scenarios[0].id, "S1");
    EXPECT_EQ(scenarios[1].id, "S2");
    for (std::size_t i = 1; i < scenarios.size(); ++i) {
        EXPECT_GE(priority.score_micros(scenarios[i - 1]),
                  priority.score_micros(scenarios[i]));
    }
}

TEST(ScenarioPriority, EnumerationPolicyNeverReorders) {
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::Enumeration);
    std::vector<security::AttackScenario> scenarios = {
        scenario("S9", {{"ctrl", "crash"}}),
        scenario("S1", {{"sensor", "drift"}}),
    };
    priority.order(scenarios);
    EXPECT_EQ(scenarios[0].id, "S9");
    EXPECT_EQ(scenarios[1].id, "S1");
}

TEST(ScenarioPriority, BandRadiusWidensWithPriorVariance) {
    // No explicit prior anywhere: the pre-prior +/-1 sweep.
    const model::SystemModel plain = chain_model();
    const ScenarioPriority plain_priority(plain, PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(plain_priority.likelihood_band_radius(scenario("S1", {{"sensor", "drift"}})),
              1);

    // Sharp explicit prior (Beta(180,20): sd ~ 0.02) narrows the band to 0.
    const model::SystemModel sharp =
        chain_model("fault ctrl wedge omission prior=180/20\n");
    const ScenarioPriority sharp_priority(sharp, PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(sharp_priority.likelihood_band_radius(scenario("S1", {{"ctrl", "wedge"}})),
              0);

    // Vague explicit prior (Beta(1,1): sd ~ 0.29) widens it to 2.
    const model::SystemModel vague = chain_model("fault ctrl wedge omission prior=1/1\n");
    const ScenarioPriority vague_priority(vague, PriorityPolicy::ExpectedRisk);
    EXPECT_EQ(vague_priority.likelihood_band_radius(scenario("S1", {{"ctrl", "wedge"}})),
              2);
}

TEST(ScenarioPriority, CoverageBoundIsDeterministicPerSeed) {
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::ExpectedRisk);
    const std::vector<security::AttackScenario> scenarios = {
        scenario("S1", {{"sensor", "drift"}}),
        scenario("S2", {{"ctrl", "crash"}}),
        scenario("S3", {{"pump", "stuck"}}),
    };
    const std::vector<bool> decided = {true, false, true};

    const CoverageEstimate a = priority.coverage(scenarios, decided, 1);
    const CoverageEstimate b = priority.coverage(scenarios, decided, 1);
    EXPECT_EQ(a.covered_micros, b.covered_micros);
    EXPECT_EQ(a.total_micros, b.total_micros);
    EXPECT_EQ(a.lower_bound_micros, b.lower_bound_micros);

    EXPECT_GT(a.total_micros, 0);
    EXPECT_GT(a.covered_micros, 0);
    EXPECT_LE(a.covered_micros, a.total_micros);
    // The bound is a probability in micro-units.
    EXPECT_GE(a.lower_bound_micros, 0);
    EXPECT_LE(a.lower_bound_micros, 1000000);
}

TEST(ScenarioPriority, FullCoverageBoundsNearOne) {
    const model::SystemModel model = chain_model();
    const ScenarioPriority priority(model, PriorityPolicy::ExpectedRisk);
    const std::vector<security::AttackScenario> scenarios = {
        scenario("S1", {{"sensor", "drift"}}),
        scenario("S2", {{"ctrl", "crash"}}),
    };
    const CoverageEstimate full = priority.coverage(scenarios, {true, true}, 7);
    EXPECT_EQ(full.covered_micros, full.total_micros);
    EXPECT_EQ(full.lower_bound_micros, 1000000);  // every draw covers 100%
}

}  // namespace
}  // namespace cprisk::risk
