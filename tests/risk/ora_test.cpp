// O-RA risk calculus: Table I cell-for-cell, matrix properties, the Fig. 2
// derivation chain, and the paper's worked examples.
#include <gtest/gtest.h>

#include "risk/ora.hpp"

namespace cprisk::risk {
namespace {

using qual::Level;

TEST(OraMatrix, TableICellForCell) {
    // The paper's Table I, row by row (LM descending as printed).
    struct Row {
        Level lm;
        Level cells[5];  // LEF = VL, L, M, H, VH
    };
    const Row rows[] = {
        {Level::VeryHigh, {Level::Medium, Level::High, Level::VeryHigh, Level::VeryHigh,
                           Level::VeryHigh}},
        {Level::High, {Level::Low, Level::Medium, Level::High, Level::VeryHigh, Level::VeryHigh}},
        {Level::Medium, {Level::VeryLow, Level::Low, Level::Medium, Level::High,
                         Level::VeryHigh}},
        {Level::Low, {Level::VeryLow, Level::VeryLow, Level::Low, Level::Medium, Level::High}},
        {Level::VeryLow, {Level::VeryLow, Level::VeryLow, Level::VeryLow, Level::Low,
                          Level::Medium}},
    };
    for (const Row& row : rows) {
        for (int lef = 0; lef < 5; ++lef) {
            EXPECT_EQ(ora_risk(row.lm, qual::level_from_index(lef)), row.cells[lef])
                << "LM=" << qual::to_short_string(row.lm) << " LEF=" << lef;
        }
    }
}

TEST(OraMatrix, PaperExampleMediumLmLowLef) {
    // "if Loss Magnitude (LM) is medium (M) and Loss Event Frequency (LEF)
    // is low (L), the calculated risk will fall into the low (L) category."
    EXPECT_EQ(ora_risk(Level::Medium, Level::Low), Level::Low);
}

TEST(OraMatrix, IsMonotone) {
    EXPECT_TRUE(ora_risk_matrix().is_monotone());
}

TEST(OraMatrix, Symmetric) {
    // Table I is symmetric in LM and LEF.
    for (Level a : qual::kAllLevels) {
        for (Level b : qual::kAllLevels) {
            EXPECT_EQ(ora_risk(a, b), ora_risk(b, a));
        }
    }
}

TEST(OraMatrix, RenderLayout) {
    auto table = ora_risk_matrix().render();
    EXPECT_EQ(table.rows(), 5u);
    EXPECT_EQ(table.columns(), 6u);
    // Printed top row is LM = VH.
    EXPECT_EQ(table.row(0)[0], "VH");
    EXPECT_EQ(table.row(0)[1], "M");  // (VH, VL) = M
    EXPECT_EQ(table.row(4)[0], "VL");
}

TEST(Calculus, TefBothFactorsNeeded) {
    auto calculus = RiskCalculus::standard();
    EXPECT_EQ(calculus.tef(Level::VeryHigh, Level::VeryHigh), Level::VeryHigh);
    EXPECT_EQ(calculus.tef(Level::VeryLow, Level::VeryHigh), Level::VeryLow);
    EXPECT_EQ(calculus.tef(Level::Medium, Level::Medium), Level::VeryLow);
    EXPECT_EQ(calculus.tef(Level::High, Level::High), Level::Medium);
}

TEST(Calculus, VulnerabilityMargin) {
    auto calculus = RiskCalculus::standard();
    // Equal capability and resistance -> Medium.
    EXPECT_EQ(calculus.vulnerability(Level::Medium, Level::Medium), Level::Medium);
    // Strong attacker vs weak defence -> VH.
    EXPECT_EQ(calculus.vulnerability(Level::VeryHigh, Level::Low), Level::VeryHigh);
    // Weak attacker vs strong defence -> VL.
    EXPECT_EQ(calculus.vulnerability(Level::Low, Level::VeryHigh), Level::VeryLow);
}

TEST(Calculus, LefNeverExceedsTef) {
    auto calculus = RiskCalculus::standard();
    for (Level tef : qual::kAllLevels) {
        for (Level vuln : qual::kAllLevels) {
            EXPECT_LE(calculus.lef(tef, vuln), tef);
        }
    }
}

TEST(Calculus, LmConservativeMax) {
    auto calculus = RiskCalculus::standard();
    EXPECT_EQ(calculus.lm(Level::Low, Level::High), Level::High);
    EXPECT_EQ(calculus.lm(Level::Medium, Level::VeryLow), Level::Medium);
}

TEST(Calculus, FullDerivationRecordsExplanation) {
    auto calculus = RiskCalculus::standard();
    RiskInputs inputs;
    inputs.contact_frequency = Level::High;
    inputs.probability_of_action = Level::VeryHigh;
    inputs.threat_capability = Level::High;
    inputs.resistance_strength = Level::Low;
    inputs.primary_loss = Level::VeryHigh;
    inputs.secondary_loss = Level::Medium;

    auto d = calculus.derive(inputs);
    EXPECT_EQ(d.threat_event_frequency, Level::High);  // 3 + 4 - 4
    EXPECT_EQ(d.vulnerability, Level::VeryHigh);       // 2 + 3 - 1
    EXPECT_EQ(d.loss_magnitude, Level::VeryHigh);
    EXPECT_EQ(d.risk, ora_risk(d.loss_magnitude, d.loss_event_frequency));
    EXPECT_GE(d.explanation.size(), 5u);  // each step explained
}

TEST(Calculus, IntermediateOverrides) {
    auto calculus = RiskCalculus::standard();
    RiskInputs inputs;
    inputs.loss_event_frequency = Level::Low;
    inputs.loss_magnitude = Level::Medium;
    auto d = calculus.derive(inputs);
    EXPECT_EQ(d.risk, Level::Low);  // the paper's example cell
}

TEST(Calculus, MissingLeavesDefaultToMedium) {
    auto calculus = RiskCalculus::standard();
    auto d = calculus.derive(RiskInputs{});
    EXPECT_EQ(d.loss_magnitude, Level::Medium);
    // And the defaulting is explained.
    bool mentioned = false;
    for (const auto& line : d.explanation) {
        if (line.find("defaulting") != std::string::npos) mentioned = true;
    }
    EXPECT_TRUE(mentioned);
}

TEST(Calculus, DerivationMonotoneInThreatCapability) {
    // Property: increasing only TCap never lowers the final risk.
    auto calculus = RiskCalculus::standard();
    for (Level base : qual::kAllLevels) {
        RiskInputs inputs;
        inputs.contact_frequency = Level::High;
        inputs.probability_of_action = Level::High;
        inputs.resistance_strength = Level::Medium;
        inputs.primary_loss = Level::High;
        inputs.secondary_loss = Level::Low;
        inputs.threat_capability = base;
        const Level risk_at_base = calculus.derive(inputs).risk;
        inputs.threat_capability = qual::shift(base, 1);
        EXPECT_GE(calculus.derive(inputs).risk, risk_at_base)
            << "base TCap " << qual::to_short_string(base);
    }
}

}  // namespace
}  // namespace cprisk::risk
