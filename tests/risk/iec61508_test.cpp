// IEC 61508 hazard matrix: class assignments and scale bridging.
#include <gtest/gtest.h>

#include "risk/iec61508.hpp"

namespace cprisk::risk {
namespace {

TEST(Iec61508, ExtremeCells) {
    EXPECT_EQ(iec61508_class(Likelihood::Frequent, Consequence::Catastrophic), RiskClass::I);
    EXPECT_EQ(iec61508_class(Likelihood::Incredible, Consequence::Catastrophic), RiskClass::IV);
    EXPECT_EQ(iec61508_class(Likelihood::Frequent, Consequence::Negligible), RiskClass::II);
    EXPECT_EQ(iec61508_class(Likelihood::Incredible, Consequence::Negligible), RiskClass::IV);
}

TEST(Iec61508, RepresentativeCells) {
    EXPECT_EQ(iec61508_class(Likelihood::Occasional, Consequence::Critical), RiskClass::II);
    EXPECT_EQ(iec61508_class(Likelihood::Remote, Consequence::Marginal), RiskClass::III);
    EXPECT_EQ(iec61508_class(Likelihood::Probable, Consequence::Catastrophic), RiskClass::I);
}

TEST(Iec61508, MonotoneInBothAxes) {
    // Higher frequency or higher severity can only worsen (lower-numbered)
    // the class.
    for (int l = 0; l <= static_cast<int>(Likelihood::Frequent); ++l) {
        for (int c = 0; c <= static_cast<int>(Consequence::Catastrophic); ++c) {
            const auto here =
                iec61508_class(static_cast<Likelihood>(l), static_cast<Consequence>(c));
            if (l + 1 <= static_cast<int>(Likelihood::Frequent)) {
                EXPECT_LE(iec61508_class(static_cast<Likelihood>(l + 1),
                                         static_cast<Consequence>(c)),
                          here);
            }
            if (c + 1 <= static_cast<int>(Consequence::Catastrophic)) {
                EXPECT_LE(iec61508_class(static_cast<Likelihood>(l),
                                         static_cast<Consequence>(c + 1)),
                          here);
            }
        }
    }
}

TEST(Iec61508, TableRendering) {
    auto table = iec61508_matrix_table();
    EXPECT_EQ(table.rows(), 6u);
    EXPECT_EQ(table.columns(), 5u);
    EXPECT_EQ(table.row(0)[0], "frequent");
    EXPECT_EQ(table.row(5)[0], "incredible");
}

TEST(Iec61508, Parsing) {
    EXPECT_EQ(parse_likelihood("Occasional").value(), Likelihood::Occasional);
    EXPECT_EQ(parse_likelihood(" remote ").value(), Likelihood::Remote);
    EXPECT_FALSE(parse_likelihood("sometimes").ok());
    EXPECT_EQ(parse_consequence("catastrophic").value(), Consequence::Catastrophic);
    EXPECT_FALSE(parse_consequence("bad").ok());
}

TEST(Iec61508, LevelBridging) {
    EXPECT_EQ(likelihood_from_level(qual::Level::VeryHigh), Likelihood::Frequent);
    EXPECT_EQ(likelihood_from_level(qual::Level::VeryLow), Likelihood::Improbable);
    EXPECT_EQ(consequence_from_level(qual::Level::VeryHigh), Consequence::Catastrophic);
    EXPECT_EQ(consequence_from_level(qual::Level::Low), Consequence::Negligible);
    // Bridging preserves order.
    for (int i = 0; i + 1 < static_cast<int>(qual::kLevelCount); ++i) {
        EXPECT_LE(likelihood_from_level(qual::level_from_index(i)),
                  likelihood_from_level(qual::level_from_index(i + 1)));
        EXPECT_LE(consequence_from_level(qual::level_from_index(i)),
                  consequence_from_level(qual::level_from_index(i + 1)));
    }
}

}  // namespace
}  // namespace cprisk::risk
