// Journal JSON round trip: deterministic serialization, key-order
// preservation, strict parsing (common/json.hpp).
#include <gtest/gtest.h>

#include "common/json.hpp"

namespace cprisk::json {
namespace {

TEST(JsonTest, SerializeScalars) {
    EXPECT_EQ(Value().serialize(), "null");
    EXPECT_EQ(Value(true).serialize(), "true");
    EXPECT_EQ(Value(false).serialize(), "false");
    EXPECT_EQ(Value(42).serialize(), "42");
    EXPECT_EQ(Value(-7LL).serialize(), "-7");
    EXPECT_EQ(Value("hi").serialize(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
    Object object;
    set(object, "zebra", 1);
    set(object, "apple", 2);
    set(object, "mango", Value("x"));
    EXPECT_EQ(Value(std::move(object)).serialize(), "{\"zebra\":1,\"apple\":2,\"mango\":\"x\"}");
}

TEST(JsonTest, RoundTripIsByteIdentical) {
    const std::string doc =
        "{\"kind\":\"scenario\",\"id\":\"S3\",\"stages\":[{\"stage\":\"topology\","
        "\"degraded\":false}],\"stats\":{\"decisions\":12,\"conflicts\":0},\"note\":null}";
    auto parsed = parse(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().serialize(), doc);
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
    EXPECT_EQ(escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
    auto parsed = parse("\"a\\\"b\\\\c\\n\\t\"");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().as_string(), "a\"b\\c\n\t");
}

TEST(JsonTest, ParsesUnicodeEscapes) {
    auto parsed = parse("\"caf\\u00e9\"");
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().as_string(), "caf\xc3\xa9");
}

TEST(JsonTest, RejectsTrailingGarbage) {
    EXPECT_FALSE(parse("{} x").ok());
    EXPECT_FALSE(parse("1 2").ok());
}

TEST(JsonTest, RejectsTruncatedDocuments) {
    // The torn-write recovery path depends on half a journal line failing to
    // parse rather than yielding a plausible partial value.
    EXPECT_FALSE(parse("{\"kind\":\"scen").ok());
    EXPECT_FALSE(parse("[1,2,").ok());
    EXPECT_FALSE(parse("\"unterminated").ok());
    EXPECT_FALSE(parse("").ok());
}

TEST(JsonTest, RejectsFloats) {
    EXPECT_FALSE(parse("1.5").ok());
    EXPECT_FALSE(parse("1e3").ok());
}

TEST(JsonTest, TypedLookupsWithFallbacks) {
    auto parsed = parse("{\"n\":3,\"s\":\"abc\",\"b\":true}");
    ASSERT_TRUE(parsed.ok());
    const Value& v = parsed.value();
    EXPECT_EQ(v.get_int("n"), 3);
    EXPECT_EQ(v.get_int("missing", -1), -1);
    EXPECT_EQ(v.get_string("s"), "abc");
    EXPECT_EQ(v.get_string("missing", "d"), "d");
    EXPECT_TRUE(v.get_bool("b"));
    EXPECT_TRUE(v.get_bool("missing", true));
    EXPECT_EQ(v.get("n")->as_int(), 3);
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonTest, NestedStructuresRoundTrip) {
    Object inner;
    set(inner, "list", Array{Value(1), Value("two"), Value()});
    Object outer;
    set(outer, "inner", std::move(inner));
    set(outer, "flag", false);
    const std::string doc = Value(std::move(outer)).serialize();
    auto parsed = parse(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().serialize(), doc);
    const Value* list = parsed.value().get("inner")->get("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->as_array().size(), 3u);
    EXPECT_TRUE(list->as_array()[2].is_null());
}

}  // namespace
}  // namespace cprisk::json
