// Deterministic fault-injection harness (common/fault_injection.hpp).
#include <gtest/gtest.h>

#include "common/fault_injection.hpp"

namespace cprisk::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }
};

TEST_F(FaultInjectionTest, UnarmedSiteNeverFails) {
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(should_fail("test.site.a"));
    EXPECT_EQ(hits("test.site.a"), 10u);
}

TEST_F(FaultInjectionTest, ArmedSiteFiresExactlyOnceOnNthHit) {
    arm("test.site.b", 3);
    EXPECT_FALSE(should_fail("test.site.b"));
    EXPECT_FALSE(should_fail("test.site.b"));
    EXPECT_TRUE(should_fail("test.site.b"));
    // Self-disarming: the trigger never fires a second time.
    for (int i = 0; i < 5; ++i) EXPECT_FALSE(should_fail("test.site.b"));
}

TEST_F(FaultInjectionTest, DefaultCountdownFiresOnNextHit) {
    arm("test.site.c");
    EXPECT_TRUE(should_fail("test.site.c"));
    EXPECT_FALSE(should_fail("test.site.c"));
}

TEST_F(FaultInjectionTest, ResetDisarmsAndClearsHitCounters) {
    arm("test.site.d", 1);
    reset();
    EXPECT_FALSE(should_fail("test.site.d"));
    EXPECT_EQ(hits("test.site.d"), 1u);
    reset();
    EXPECT_EQ(hits("test.site.d"), 0u);
}

TEST_F(FaultInjectionTest, SitesRegisterOnFirstContactAndListSorted) {
    should_fail("test.zzz");
    arm("test.aaa");
    const auto sites = registered_sites();
    std::size_t aaa = sites.size(), zzz = sites.size();
    for (std::size_t i = 0; i < sites.size(); ++i) {
        if (sites[i] == "test.aaa") aaa = i;
        if (sites[i] == "test.zzz") zzz = i;
    }
    ASSERT_LT(aaa, sites.size());
    ASSERT_LT(zzz, sites.size());
    EXPECT_LT(aaa, zzz);
}

TEST_F(FaultInjectionTest, SitesAreIndependent) {
    arm("test.left", 1);
    EXPECT_FALSE(should_fail("test.right"));
    EXPECT_TRUE(should_fail("test.left"));
}

}  // namespace
}  // namespace cprisk::fault
