#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"

namespace cprisk {
namespace {

TEST(Table, RendersAlignedColumns) {
    TextTable t({"Name", "Risk"});
    t.add_row({"tank", "VH"});
    t.add_row({"workstation", "M"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Name        | Risk |"), std::string::npos);
    EXPECT_NE(out.find("| workstation | M    |"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
    EXPECT_THROW(TextTable({}), Error);
}

TEST(Table, Csv) {
    TextTable t({"a", "b"});
    t.add_row({"1", "hello, world"});
    t.add_row({"2", "with \"quotes\""});
    const std::string out = t.render_csv();
    EXPECT_NE(out.find("a,b\n"), std::string::npos);
    EXPECT_NE(out.find("1,\"hello, world\"\n"), std::string::npos);
    EXPECT_NE(out.find("2,\"with \"\"quotes\"\"\"\n"), std::string::npos);
}

TEST(Table, Accessors) {
    TextTable t({"x"});
    t.add_row({"1"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 1u);
    EXPECT_EQ(t.row(0)[0], "1");
}

}  // namespace
}  // namespace cprisk
