#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace cprisk {
namespace {

TEST(Strings, Split) {
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator) {
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nx"), "x");
    EXPECT_EQ(trim("    "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(starts_with("prev_state", "prev_"));
    EXPECT_FALSE(starts_with("state", "prev_"));
    EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ToLower) {
    EXPECT_EQ(to_lower("Very High"), "very high");
}

TEST(Strings, ToIdentifier) {
    EXPECT_EQ(to_identifier("Engineering Workstation"), "engineering_workstation");
    EXPECT_EQ(to_identifier("E-mail Client"), "e_mail_client");
    EXPECT_EQ(to_identifier("  HMI  "), "hmi");
    EXPECT_EQ(to_identifier("3rd Party"), "x3rd_party");  // can't start with digit
    EXPECT_EQ(to_identifier(""), "x");
}

}  // namespace
}  // namespace cprisk
