// Resource-governance primitives: quotas, deadlines, cancellation, sticky
// trips (common/budget.hpp).
#include <gtest/gtest.h>

#include <chrono>

#include "common/budget.hpp"

namespace cprisk {
namespace {

TEST(BudgetTest, UnlimitedBudgetNeverTrips) {
    Budget budget;
    EXPECT_FALSE(budget.limited());
    for (int i = 0; i < 10000; ++i) {
        EXPECT_FALSE(budget.charge_steps().has_value());
        EXPECT_FALSE(budget.charge_decisions().has_value());
    }
    EXPECT_FALSE(budget.check().has_value());
    EXPECT_FALSE(budget.tripped().has_value());
    EXPECT_EQ(budget.stats().steps, 10000u);
    EXPECT_EQ(budget.stats().decisions, 10000u);
}

TEST(BudgetTest, DecisionQuotaTripsAtLimit) {
    Budget budget;
    budget.set_max_decisions(5);
    EXPECT_TRUE(budget.limited());
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(budget.charge_decisions().has_value()) << "charge " << i;
    }
    auto exceeded = budget.charge_decisions();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::DecisionLimit);
    EXPECT_EQ(exceeded->stats.decisions, 6u);
}

TEST(BudgetTest, StepQuotaTripsAndSupportsBulkCharges) {
    Budget budget;
    budget.set_max_steps(100);
    EXPECT_FALSE(budget.charge_steps(100).has_value());
    auto exceeded = budget.charge_steps(50);
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::StepLimit);
    EXPECT_EQ(exceeded->stats.steps, 150u);
}

TEST(BudgetTest, TripIsSticky) {
    Budget budget;
    budget.set_max_decisions(1);
    budget.charge_decisions();
    ASSERT_TRUE(budget.charge_decisions().has_value());
    // Every later charge of any kind reports the same first trip.
    auto later = budget.charge_steps();
    ASSERT_TRUE(later.has_value());
    EXPECT_EQ(later->reason, BudgetReason::DecisionLimit);
    ASSERT_TRUE(budget.tripped().has_value());
    EXPECT_EQ(budget.tripped()->reason, BudgetReason::DecisionLimit);
}

TEST(BudgetTest, ExpiredDeadlineTripsOnCheck) {
    Budget budget;
    budget.set_deadline_after(std::chrono::milliseconds(0));
    auto exceeded = budget.check();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Deadline);
}

TEST(BudgetTest, DeadlineIsSampledOnStridedCharges) {
    Budget budget;
    budget.set_deadline_after(std::chrono::milliseconds(0));
    // Individual charges sample the clock only every kClockStride hits, but
    // a long enough run must observe the expired deadline.
    std::optional<BudgetExceeded> exceeded;
    for (int i = 0; i < 256 && !exceeded; ++i) exceeded = budget.charge_steps();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Deadline);
}

TEST(BudgetTest, CancelTokenSharedAcrossCopies) {
    CancelToken token;
    CancelToken copy = token;
    EXPECT_FALSE(copy.cancel_requested());
    token.request_cancel();
    EXPECT_TRUE(copy.cancel_requested());
}

TEST(BudgetTest, CancellationTripsBudget) {
    CancelToken token;
    Budget budget;
    budget.set_cancel_token(token);
    EXPECT_FALSE(budget.check().has_value());
    token.request_cancel();
    auto exceeded = budget.check();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Cancelled);
}

TEST(BudgetTest, ReasonStringsAreDistinct) {
    EXPECT_NE(to_string(BudgetReason::Deadline), to_string(BudgetReason::DecisionLimit));
    EXPECT_NE(to_string(BudgetReason::StepLimit), to_string(BudgetReason::Cancelled));
}

TEST(BudgetTest, ExceededToStringCarriesStats) {
    Budget budget;
    budget.set_max_decisions(2);
    budget.charge_decisions(3);
    ASSERT_TRUE(budget.tripped().has_value());
    const std::string text = budget.tripped()->to_string();
    EXPECT_NE(text.find("decision"), std::string::npos);
    EXPECT_NE(text.find("decisions=3"), std::string::npos);
}

}  // namespace
}  // namespace cprisk
