// Resource-governance primitives: quotas, deadlines, cancellation, sticky
// trips (common/budget.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/budget.hpp"

namespace cprisk {
namespace {

TEST(BudgetTest, UnlimitedBudgetNeverTrips) {
    Budget budget;
    EXPECT_FALSE(budget.limited());
    for (int i = 0; i < 10000; ++i) {
        EXPECT_FALSE(budget.charge_steps().has_value());
        EXPECT_FALSE(budget.charge_decisions().has_value());
    }
    EXPECT_FALSE(budget.check().has_value());
    EXPECT_FALSE(budget.tripped().has_value());
    EXPECT_EQ(budget.stats().steps, 10000u);
    EXPECT_EQ(budget.stats().decisions, 10000u);
}

TEST(BudgetTest, DecisionQuotaTripsAtLimit) {
    Budget budget;
    budget.set_max_decisions(5);
    EXPECT_TRUE(budget.limited());
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(budget.charge_decisions().has_value()) << "charge " << i;
    }
    auto exceeded = budget.charge_decisions();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::DecisionLimit);
    EXPECT_EQ(exceeded->stats.decisions, 6u);
}

TEST(BudgetTest, StepQuotaTripsAndSupportsBulkCharges) {
    Budget budget;
    budget.set_max_steps(100);
    EXPECT_FALSE(budget.charge_steps(100).has_value());
    auto exceeded = budget.charge_steps(50);
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::StepLimit);
    EXPECT_EQ(exceeded->stats.steps, 150u);
}

TEST(BudgetTest, TripIsSticky) {
    Budget budget;
    budget.set_max_decisions(1);
    budget.charge_decisions();
    ASSERT_TRUE(budget.charge_decisions().has_value());
    // Every later charge of any kind reports the same first trip.
    auto later = budget.charge_steps();
    ASSERT_TRUE(later.has_value());
    EXPECT_EQ(later->reason, BudgetReason::DecisionLimit);
    ASSERT_TRUE(budget.tripped().has_value());
    EXPECT_EQ(budget.tripped()->reason, BudgetReason::DecisionLimit);
}

TEST(BudgetTest, ExpiredDeadlineTripsOnCheck) {
    Budget budget;
    budget.set_deadline_after(std::chrono::milliseconds(0));
    auto exceeded = budget.check();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Deadline);
}

TEST(BudgetTest, DeadlineIsSampledOnStridedCharges) {
    Budget budget;
    budget.set_deadline_after(std::chrono::milliseconds(0));
    // Individual charges sample the clock only every kClockStride hits, but
    // a long enough run must observe the expired deadline.
    std::optional<BudgetExceeded> exceeded;
    for (int i = 0; i < 256 && !exceeded; ++i) exceeded = budget.charge_steps();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Deadline);
}

TEST(BudgetTest, CancelTokenSharedAcrossCopies) {
    CancelToken token;
    CancelToken copy = token;
    EXPECT_FALSE(copy.cancel_requested());
    token.request_cancel();
    EXPECT_TRUE(copy.cancel_requested());
}

TEST(BudgetTest, CancellationTripsBudget) {
    CancelToken token;
    Budget budget;
    budget.set_cancel_token(token);
    EXPECT_FALSE(budget.check().has_value());
    token.request_cancel();
    auto exceeded = budget.check();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::Cancelled);
}

TEST(BudgetTest, ReasonStringsAreDistinct) {
    EXPECT_NE(to_string(BudgetReason::Deadline), to_string(BudgetReason::DecisionLimit));
    EXPECT_NE(to_string(BudgetReason::StepLimit), to_string(BudgetReason::Cancelled));
}

TEST(BudgetTest, ConcurrentChargesAreCounted) {
    // The solver charges a shared budget from every worker lane of the
    // scenario sweep; counters must not lose increments.
    Budget budget;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&budget] {
            for (int i = 0; i < kPerThread; ++i) {
                budget.charge_steps();
                budget.charge_decisions();
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(budget.stats().steps, static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_EQ(budget.stats().decisions, static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_FALSE(budget.tripped().has_value());
}

TEST(BudgetTest, ConcurrentTripIsRecordedOnce) {
    // Many threads race past the quota; the first trip wins, stays sticky,
    // and every thread observes the same reason afterwards.
    Budget budget;
    budget.set_max_decisions(100);
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&budget] {
            for (int i = 0; i < 1000; ++i) budget.charge_decisions();
        });
    }
    for (std::thread& thread : threads) thread.join();
    const auto exceeded = budget.tripped();
    ASSERT_TRUE(exceeded.has_value());
    EXPECT_EQ(exceeded->reason, BudgetReason::DecisionLimit);
    // tripped() returns a snapshot by value, stable across calls.
    EXPECT_EQ(budget.tripped()->stats.decisions, exceeded->stats.decisions);
}

TEST(BudgetTest, ConcurrentCancellationObservedByAllThreads) {
    CancelToken token;
    Budget budget;
    budget.set_cancel_token(token);
    std::atomic<int> tripped_threads{0};
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (!budget.check().has_value()) std::this_thread::yield();
            tripped_threads.fetch_add(1);
        });
    }
    token.request_cancel();
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(tripped_threads.load(), kThreads);
    ASSERT_TRUE(budget.tripped().has_value());
    EXPECT_EQ(budget.tripped()->reason, BudgetReason::Cancelled);
}

TEST(BudgetTest, ExceededToStringCarriesStats) {
    Budget budget;
    budget.set_max_decisions(2);
    budget.charge_decisions(3);
    ASSERT_TRUE(budget.tripped().has_value());
    const std::string text = budget.tripped()->to_string();
    EXPECT_NE(text.find("decision"), std::string::npos);
    EXPECT_NE(text.find("decisions=3"), std::string::npos);
}

}  // namespace
}  // namespace cprisk
