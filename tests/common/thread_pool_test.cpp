// Work-stealing pool contract (common/thread_pool.hpp): every task of a
// batch runs exactly once, jobs == 1 stays on the caller thread, exceptions
// surface deterministically, and the pool is reusable across batches.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace cprisk {
namespace {

TEST(ThreadPoolTest, ResolveTreatsZeroAsHardwareConcurrency) {
    EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
    EXPECT_EQ(ThreadPool::resolve(0), ThreadPool::hardware_jobs());
    EXPECT_EQ(ThreadPool::resolve(3), 3u);
}

TEST(ThreadPoolTest, ZeroJobsNormalizedToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.jobs(), 1u);
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce) {
    for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        ThreadPool pool(jobs);
        constexpr std::size_t kCount = 500;
        std::vector<std::atomic<int>> hits(kCount);
        pool.run_batch(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "task " << i << " with " << jobs << " jobs";
        }
    }
}

TEST(ThreadPoolTest, SingleJobRunsInlineInOrder) {
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.run_batch(10, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // no synchronization needed: single thread
    });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, EmptyBatchIsANoop) {
    ThreadPool pool(4);
    bool ran = false;
    pool.run_batch(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 20; ++round) {
        pool.run_batch(25, [&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 20 * 25);
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsAndNoTaskIsSkipped) {
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(jobs);
        std::atomic<int> ran{0};
        try {
            pool.run_batch(64, [&](std::size_t i) {
                ran.fetch_add(1);
                if (i == 7 || i == 40) throw std::runtime_error("task " + std::to_string(i));
            });
            FAIL() << "expected run_batch to rethrow";
        } catch (const std::runtime_error& error) {
            EXPECT_STREQ(error.what(), "task 7");
        }
        // jobs == 1 runs inline and still visits every task before throwing.
        EXPECT_EQ(ran.load(), 64) << jobs << " jobs";
    }
}

TEST(ThreadPoolTest, LanesActuallyRunConcurrently) {
    ThreadPool pool(2);
    // Task 0 (caller lane) blocks until task 1 (worker lane) has run; the
    // batch can only finish if both lanes make progress at the same time.
    std::atomic<bool> peer_ran{false};
    pool.run_batch(2, [&](std::size_t i) {
        if (i == 1) {
            peer_ran.store(true);
        } else {
            while (!peer_ran.load()) std::this_thread::yield();
        }
    });
    EXPECT_TRUE(peer_ran.load());
}

TEST(ThreadPoolServiceTest, SubmittedTasksAllRun) {
    ThreadPool pool(4, ThreadPool::PoolMode::Service);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i) {
        auto submitted = pool.submit([&] { ran.fetch_add(1); });
        ASSERT_TRUE(submitted.ok()) << submitted.error();
    }
    pool.stop();  // drains every accepted task before joining
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolServiceTest, StopDrainsAcceptedTasksThenRejectsNewOnes) {
    ThreadPool pool(2, ThreadPool::PoolMode::Service);
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }).ok());
    }
    pool.stop();
    EXPECT_EQ(ran.load(), 50);

    // Post-stop submission is a structured rejection, not a silent drop.
    auto rejected = pool.submit([&] { ran.fetch_add(1); });
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.error().find("stopped"), std::string::npos) << rejected.error();
    EXPECT_EQ(ran.load(), 50);
    pool.stop();  // idempotent
}

TEST(ThreadPoolServiceTest, SubmitOnBatchPoolIsRejected) {
    ThreadPool pool(2);
    auto rejected = pool.submit([] {});
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.error().find("service"), std::string::npos) << rejected.error();
}

TEST(ThreadPoolServiceTest, RunBatchOnServicePoolThrows) {
    ThreadPool pool(2, ThreadPool::PoolMode::Service);
    EXPECT_THROW(pool.run_batch(4, [](std::size_t) {}), Error);
    pool.stop();
}

TEST(ThreadPoolServiceTest, TaskExceptionDoesNotKillTheWorker) {
    ThreadPool pool(1, ThreadPool::PoolMode::Service);
    std::atomic<int> ran{0};
    ASSERT_TRUE(pool.submit([] { throw std::runtime_error("task failure"); }).ok());
    ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }).ok());
    pool.stop();
    EXPECT_EQ(ran.load(), 1);  // the worker survived the throwing predecessor
}

TEST(ThreadPoolServiceTest, DestructorStopsAnActivePool) {
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3, ThreadPool::PoolMode::Service);
        for (int i = 0; i < 30; ++i) {
            ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }).ok());
        }
    }  // ~ThreadPool drains and joins
    EXPECT_EQ(ran.load(), 30);
}

TEST(ThreadPoolTest, SharedCounterSeesAllIncrements) {
    // Smoke for the memory-visibility story under TSAN: many tasks hammer
    // one atomic and a mutex-guarded vector.
    ThreadPool pool(8);
    std::atomic<std::size_t> sum{0};
    std::mutex mutex;
    std::vector<std::size_t> seen;
    constexpr std::size_t kCount = 300;
    pool.run_batch(kCount, [&](std::size_t i) {
        sum.fetch_add(i);
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(i);
    });
    EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
    EXPECT_EQ(seen.size(), kCount);
}

}  // namespace
}  // namespace cprisk
