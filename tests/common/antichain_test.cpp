// Antichain of ⊆-minimal sets (common/antichain.hpp): dominance, insert
// semantics, and the minimal_sets absorption helper shared by FTA cut-set
// minimization and the exhaustive hazard frontier.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/antichain.hpp"

namespace cprisk {
namespace {

TEST(Antichain, EmptyDominatesNothing) {
    Antichain<std::set<std::string>> chain;
    EXPECT_TRUE(chain.empty());
    EXPECT_FALSE(chain.dominates({"a"}));
    EXPECT_FALSE(chain.dominates({}));
}

TEST(Antichain, SupersetsAreDominatedAndRejected) {
    Antichain<std::set<std::string>> chain;
    EXPECT_TRUE(chain.insert({"a", "b"}));
    EXPECT_TRUE(chain.dominates({"a", "b"}));        // non-strict: equal set
    EXPECT_TRUE(chain.dominates({"a", "b", "c"}));   // strict superset
    EXPECT_FALSE(chain.dominates({"a"}));            // subset is NOT dominated
    EXPECT_FALSE(chain.dominates({"a", "c"}));       // incomparable
    EXPECT_FALSE(chain.insert({"a", "b", "c"}));     // absorbed
    EXPECT_FALSE(chain.insert({"a", "b"}));          // duplicate absorbed
    EXPECT_TRUE(chain.insert({"a", "c"}));
    EXPECT_EQ(chain.size(), 2u);
}

TEST(Antichain, EmptySetDominatesEverything) {
    Antichain<std::vector<int>> chain;
    EXPECT_TRUE(chain.insert({}));
    EXPECT_TRUE(chain.dominates({1, 2, 3}));
    EXPECT_TRUE(chain.dominates({}));
    EXPECT_FALSE(chain.insert({1}));
}

TEST(Antichain, WorksOnSortedVectors) {
    Antichain<std::vector<int>> chain;
    EXPECT_TRUE(chain.insert({1, 3}));
    EXPECT_TRUE(chain.dominates({1, 2, 3}));
    EXPECT_FALSE(chain.dominates({1, 2}));
}

TEST(MinimalSets, AbsorbsSupersetsAndDuplicates) {
    const std::vector<std::set<std::string>> raw = {
        {"a", "b", "c"}, {"a", "b"}, {"c"}, {"a", "b"}, {"b", "c"}};
    const std::vector<std::set<std::string>> minimal = minimal_sets(raw);
    // {c} absorbs {a,b,c} and {b,c}; {a,b} absorbs its duplicate.
    ASSERT_EQ(minimal.size(), 2u);
    EXPECT_EQ(minimal[0], (std::set<std::string>{"c"}));
    EXPECT_EQ(minimal[1], (std::set<std::string>{"a", "b"}));
}

TEST(MinimalSets, EmptySetAbsorbsAll) {
    const std::vector<std::vector<int>> raw = {{1, 2}, {}, {3}};
    const std::vector<std::vector<int>> minimal = minimal_sets(raw);
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_TRUE(minimal[0].empty());
}

TEST(MinimalSets, AntichainInputIsPreservedInSizeLexOrder) {
    const std::vector<std::vector<int>> raw = {{2, 3}, {1}, {4}};
    const std::vector<std::vector<int>> minimal = minimal_sets(raw);
    ASSERT_EQ(minimal.size(), 3u);
    EXPECT_EQ(minimal[0], (std::vector<int>{1}));
    EXPECT_EQ(minimal[1], (std::vector<int>{4}));
    EXPECT_EQ(minimal[2], (std::vector<int>{2, 3}));
}

}  // namespace
}  // namespace cprisk
