#include <gtest/gtest.h>

#include "common/result.hpp"

namespace cprisk {
namespace {

TEST(Result, Success) {
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.error().empty());
}

TEST(Result, Failure) {
    auto r = Result<int>::failure("nope");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error(), "nope");
    EXPECT_THROW((void)r.value(), Error);
}

TEST(Result, ValueOr) {
    EXPECT_EQ(Result<int>::failure("x").value_or(7), 7);
    EXPECT_EQ(Result<int>(3).value_or(7), 3);
}

TEST(Result, MoveOut) {
    Result<std::string> r(std::string("payload"));
    std::string s = std::move(r).value();
    EXPECT_EQ(s, "payload");
}

TEST(Result, VoidSpecialization) {
    Result<void> ok;
    EXPECT_TRUE(ok.ok());
    auto bad = Result<void>::failure("broken");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), "broken");
}

TEST(Require, ThrowsOnFalse) {
    EXPECT_NO_THROW(require(true, "fine"));
    EXPECT_THROW(require(false, "bad"), Error);
}

}  // namespace
}  // namespace cprisk
