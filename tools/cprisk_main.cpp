// cprisk — command-line front end for the preliminary risk assessment
// framework.
//
//   cprisk check  <bundle>                 parse + validate a model bundle
//   cprisk lint   <bundle-or-.lp>          run the static-analysis rule packs
//   cprisk assess <bundle> [options]       run the full 7-step pipeline
//   cprisk matrix                          print the O-RA and IEC 61508 matrices
//
// Lint options:
//   --json               machine-readable diagnostics
//   --werror             exit non-zero on warnings too
//
// Assess options:
//   --horizon N          temporal unrolling depth           (default 6)
//   --max-faults K       simultaneous-fault bound           (default 2)
//   --attack-scenarios   include actor-driven attack scenarios
//   --no-cegar           run the behavioural analysis directly
//   --budget N           mitigation budget constraint
//   --phase-budget N     enable multi-phase planning
//   --markdown FILE      write the analyst report as Markdown
//   --csv FILE           write the risk table as CSV
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "asp/parser.hpp"
#include "common/diagnostics.hpp"
#include "core/assessment.hpp"
#include "core/loader.hpp"
#include "core/report.hpp"
#include "lint/asp_lint.hpp"
#include "lint/model_lint.hpp"
#include "risk/iec61508.hpp"
#include "risk/ora.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: cprisk check <bundle>\n"
                 "       cprisk lint <bundle-or-.lp> [--json] [--werror]\n"
                 "       cprisk assess <bundle> [--horizon N] [--max-faults K]\n"
                 "                     [--attack-scenarios] [--no-cegar] [--budget N]\n"
                 "                     [--phase-budget N] [--markdown FILE] [--csv FILE]\n"
                 "       cprisk matrix\n");
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream file(path);
    if (!file) return false;
    std::ostringstream content;
    content << file.rdbuf();
    out = content.str();
    return true;
}

bool ends_with(const std::string& text, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

int cmd_check(const std::string& path) {
    std::string text;
    if (!read_file(path, text)) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 1;
    }
    cprisk::DiagnosticSink sink;
    sink.set_file(path);
    auto bundle = cprisk::core::load_bundle_lenient(text, sink);
    if (!sink.empty()) {
        sink.sort_by_location();
        std::fprintf(stderr, "%s", cprisk::render_text(sink.diagnostics()).c_str());
    }
    if (sink.has_errors()) return 1;
    std::printf("OK: %zu components, %zu relations, %zu behavioural + %zu topology "
                "requirements\n",
                bundle.model.component_count(), bundle.model.relation_count(),
                bundle.behavioral_requirements.size(), bundle.topology_requirements.size());
    return 0;
}

int cmd_lint(int argc, char** argv) {
    if (argc < 1) return usage();
    std::string path;
    bool json = false;
    bool werror = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown lint option '%s'\n", arg.c_str());
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "lint takes exactly one input file\n");
            return usage();
        }
    }
    if (path.empty()) return usage();

    std::string text;
    if (!read_file(path, text)) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 1;
    }

    cprisk::DiagnosticSink sink;
    sink.set_file(path);
    if (ends_with(path, ".lp")) {
        auto program = cprisk::asp::parse_program(text, sink);
        if (program.has_value()) {
            cprisk::lint::lint_program(*program, cprisk::lint::AspLintOptions{}, sink, path);
        }
    } else {
        cprisk::core::BundleSourceMap source_map;
        auto bundle = cprisk::core::load_bundle_lenient(text, sink, &source_map);
        const auto matrix = cprisk::security::AttackMatrix::standard_ics();
        cprisk::lint::lint_bundle(bundle, source_map, matrix, sink);
    }
    sink.sort_by_location();

    if (json) {
        std::printf("%s", cprisk::render_json(sink.diagnostics()).c_str());
    } else if (!sink.empty()) {
        std::printf("%s", cprisk::render_text(sink.diagnostics()).c_str());
    }
    if (sink.has_errors()) return 1;
    if (werror && sink.has_warnings()) return 1;
    return 0;
}

int cmd_matrix() {
    std::printf("O-RA risk matrix (Table I):\n%s\n",
                cprisk::risk::ora_risk_matrix().render().render().c_str());
    std::printf("IEC 61508 risk classes:\n%s",
                cprisk::risk::iec61508_matrix_table().render().c_str());
    return 0;
}

bool write_file(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    if (!file) return false;
    file << content;
    return static_cast<bool>(file);
}

int cmd_assess(int argc, char** argv) {
    if (argc < 1) return usage();
    const std::string path = argv[0];
    cprisk::core::AssessmentConfig config;
    config.include_attack_scenarios = false;  // opt-in via --attack-scenarios
    std::optional<std::string> markdown_path;
    std::optional<std::string> csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        bool bad_value = false;
        // Numeric flag values must parse fully and be non-negative; atoll's
        // silent 0 on garbage ("--horizon abc") hid typos.
        auto next_value = [&](long long& out) {
            if (i + 1 >= argc) return false;
            const char* text = argv[++i];
            char* end = nullptr;
            errno = 0;
            const long long parsed = std::strtoll(text, &end, 10);
            if (end == text || *end != '\0' || errno == ERANGE || parsed < 0) {
                std::fprintf(stderr, "invalid value '%s' for '%s': expected a non-negative integer\n",
                             text, flag.c_str());
                bad_value = true;
                return false;
            }
            out = parsed;
            return true;
        };
        long long value = 0;
        if (flag == "--horizon" && next_value(value)) {
            config.horizon = static_cast<int>(value);
        } else if (flag == "--max-faults" && next_value(value)) {
            config.max_simultaneous_faults = static_cast<std::size_t>(value);
        } else if (flag == "--attack-scenarios") {
            config.include_attack_scenarios = true;
        } else if (flag == "--no-cegar") {
            config.use_cegar = false;
        } else if (flag == "--budget" && next_value(value)) {
            config.budget = value;
        } else if (flag == "--phase-budget" && next_value(value)) {
            config.phase_budget = value;
        } else if (flag == "--markdown" && i + 1 < argc) {
            markdown_path = argv[++i];
        } else if (flag == "--csv" && i + 1 < argc) {
            csv_path = argv[++i];
        } else {
            if (!bad_value) {
                std::fprintf(stderr, "unknown or incomplete option '%s'\n", flag.c_str());
            }
            return usage();
        }
    }

    auto bundle = cprisk::core::load_bundle_file(path);
    if (!bundle.ok()) {
        std::fprintf(stderr, "error: %s\n", bundle.error().c_str());
        return 1;
    }
    const auto& b = bundle.value();
    const auto matrix = cprisk::security::AttackMatrix::standard_ics();
    const auto catalog = cprisk::security::SecurityCatalog::standard_ics();
    const auto mitigations =
        cprisk::epa::MitigationMap::from_attack_matrix(b.model, matrix);

    cprisk::core::RiskAssessment assessment(b.model, b.effective_behavioral(),
                                            b.effective_topology(), matrix, mitigations,
                                            &catalog);
    auto report = assessment.run(config);
    if (!report.ok()) {
        std::fprintf(stderr, "assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("components=%zu relations=%zu scenarios=%zu hazards=%zu spurious=%zu\n",
                r.component_count, r.relation_count, r.scenario_count, r.hazards.size(),
                r.spurious_eliminated);
    std::printf("%s", r.risk_table().render().c_str());
    std::printf("%s", r.mitigation_table().render().c_str());

    if (markdown_path) {
        if (!write_file(*markdown_path, cprisk::core::render_markdown(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", markdown_path->c_str());
            return 1;
        }
        std::printf("markdown report written to %s\n", markdown_path->c_str());
    }
    if (csv_path) {
        if (!write_file(*csv_path, cprisk::core::render_risk_csv(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", csv_path->c_str());
            return 1;
        }
        std::printf("risk CSV written to %s\n", csv_path->c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "check" && argc >= 3) return cmd_check(argv[2]);
    if (command == "lint") return cmd_lint(argc - 2, argv + 2);
    if (command == "matrix") return cmd_matrix();
    if (command == "assess") return cmd_assess(argc - 2, argv + 2);
    return usage();
}
