// cprisk — command-line front end for the preliminary risk assessment
// framework.
//
//   cprisk check  <bundle>                 parse + validate a model bundle
//   cprisk lint   <bundle-or-.lp>          run the static-analysis rule packs
//   cprisk graph  <bundle-or-.lp>          predicate dependency graph + taint summary
//   cprisk assess <bundle> [options]       run the full 7-step pipeline
//   cprisk mitigate <bundle> [options]     step-7 mitigation planning only
//   cprisk serve  --socket PATH [options]  multi-tenant assessment daemon
//   cprisk matrix                          print the O-RA and IEC 61508 matrices
//
// Lint options:
//   --json               machine-readable diagnostics
//   --werror             exit non-zero on warnings too
//
// Graph options:
//   --dot                Graphviz output
//   --json               machine-readable output
//
// Exit codes: 0 clean, 1 findings / invalid input, 2 usage or I/O error,
// 3 partial result (some scenarios undetermined under the resource budget).
//
// Assess options:
//   --horizon N          temporal unrolling depth           (default 6)
//   --max-faults K       simultaneous-fault bound           (default 2)
//   --attack-scenarios   include actor-driven attack scenarios
//   --no-cegar           run the behavioural analysis directly
//   --no-static-prefilter  disable the ternary verdict prefilter
//   --solver ENGINE      scenario-solve search engine: cdcl (default,
//                        clause-learning with warm solver reuse) or dpll
//                        (the escape hatch); verdicts are identical
//   --budget N           mitigation budget constraint
//   --phase-budget N     enable multi-phase planning
//   --markdown FILE      write the analyst report as Markdown
//   --csv FILE           write the risk table as CSV
//   --json FILE          write the full report as JSON
//   --deadline-ms N      wall-clock budget for hazard identification
//   --max-decisions N    per-solve decision budget
//   --jobs N             worker threads for the scenario sweep (0 = auto);
//                        reports and journals are identical for every N
//   --journal FILE       append one JSONL verdict per scenario
//   --journal-sync       fsync the journal after every record (requires --journal)
//   --resume             replay the journal, skipping finished scenarios
//   --retry N            retry transient solver errors up to N times with
//                        jittered exponential backoff (default 0 = off)
//   --trace FILE         write a Chrome trace-event JSON of the run
//   --metrics FILE       write the pipeline metrics registry as JSON
//   --exhaustive         sweep the fault-subset lattice for the antichain of
//                        minimal hazardous scenarios (docs/exhaustive-search.md);
//                        superset pruning when the monotonicity certificate holds
//   --max-card K         cardinality bound for --exhaustive (0 = full lattice)
//   --attack-reachable-only  drop faults on components the attack taint pass
//                        proves unreachable (--exhaustive only)
//   --priority POLICY    sweep order: expected-risk (default; descending
//                        Bayesian expected-risk score, so a deadline
//                        interruption covers the highest-risk scenarios
//                        first) or enumeration (generation order)
//   --prior-seed N       seed for the posterior coverage bound in the
//                        Completeness section (render-only, default 1)
//
// Mitigate options (docs/quantitative-risk.md): --horizon, --max-faults,
// --attack-scenarios, --budget, --phase-budget, --jobs as for assess, plus
//   --pareto             compute the full (cost, residual risk, coverage)
//                        Pareto front instead of just the cost-optimal plan
//   --markdown FILE      write the analyst report as Markdown
//   --csv FILE           write the Pareto front as CSV (requires --pareto)
//   --json FILE          write the full report as JSON
//
// Serve options (docs/serve.md):
//   --socket PATH        Unix-domain socket to listen on (required)
//   --executors N        assessment worker threads            (default 2)
//   --max-inflight N     admission high-water mark            (default 8)
//   --request-jobs N     worker lanes per request             (default 1)
//   --hot-models N       resident model cap, 0 = unbounded    (default 4)
//   --cache-mb N         approximate memory cap in MiB        (default 64)
//   --drain-ms N         graceful-drain deadline              (default 5000)
//   --retry N            per-request transient-error retries  (default 0)
//   --chaos              enable the fault-injection op (testing only)
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/dependency_graph.hpp"
#include "analysis/taint.hpp"
#include "asp/parser.hpp"
#include "common/diagnostics.hpp"
#include "common/schema.hpp"
#include "core/assessment.hpp"
#include "core/loader.hpp"
#include "core/report.hpp"
#include "lint/asp_lint.hpp"
#include "lint/model_lint.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "risk/iec61508.hpp"
#include "risk/ora.hpp"
#include "risk/prior.hpp"
#include "serve/server.hpp"
#include "flag_parser.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: cprisk check <bundle>\n"
                 "       cprisk lint <bundle-or-.lp> [--json] [--werror]\n"
                 "       cprisk graph <bundle-or-.lp> [--dot|--json]\n"
                 "       cprisk assess <bundle> [--horizon N] [--max-faults K]\n"
                 "                     [--attack-scenarios] [--no-cegar] [--budget N]\n"
                 "                     [--phase-budget N] [--markdown FILE] [--csv FILE]\n"
                 "                     [--json FILE] [--deadline-ms N] [--max-decisions N]\n"
                 "                     [--jobs N] [--journal FILE] [--journal-sync] [--resume]\n"
                 "                     [--no-static-prefilter] [--solver cdcl|dpll] [--retry N]\n"
                 "                     [--exhaustive] [--max-card K] [--attack-reachable-only]\n"
                 "                     [--priority expected-risk|enumeration] [--prior-seed N]\n"
                 "                     [--trace FILE] [--metrics FILE]\n"
                 "       cprisk mitigate <bundle> [--pareto] [--horizon N] [--max-faults K]\n"
                 "                     [--attack-scenarios] [--budget N] [--phase-budget N]\n"
                 "                     [--jobs N] [--markdown FILE] [--csv FILE] [--json FILE]\n"
                 "       cprisk serve --socket PATH [--executors N] [--max-inflight N]\n"
                 "                     [--request-jobs N] [--hot-models N] [--cache-mb N]\n"
                 "                     [--drain-ms N] [--retry N] [--chaos]\n"
                 "       cprisk matrix\n");
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream file(path);
    if (!file) return false;
    std::ostringstream content;
    content << file.rdbuf();
    out = content.str();
    return true;
}

bool ends_with(const std::string& text, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

/// Unreadable input is an I/O problem (exit 2), not a lint failure (exit 1):
/// scripted callers can tell "findings" from "wrong path" apart.
int report_unreadable(const std::string& path) {
    cprisk::Diagnostic diagnostic;
    diagnostic.severity = cprisk::Severity::Error;
    diagnostic.rule = "cli-unreadable-input";
    diagnostic.message = "cannot open '" + path + "'";
    diagnostic.hint = "check that the path exists and is readable";
    std::fprintf(stderr, "%s", cprisk::render_text({diagnostic}).c_str());
    return 2;
}

int cmd_check(const std::string& path) {
    std::string text;
    if (!read_file(path, text)) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 1;
    }
    cprisk::DiagnosticSink sink;
    sink.set_file(path);
    auto bundle = cprisk::core::load_bundle_lenient(text, sink);
    if (!sink.empty()) {
        sink.sort_by_location();
        std::fprintf(stderr, "%s", cprisk::render_text(sink.diagnostics()).c_str());
    }
    if (sink.has_errors()) return 1;
    std::printf("OK: %zu components, %zu relations, %zu behavioural + %zu topology "
                "requirements\n",
                bundle.model.component_count(), bundle.model.relation_count(),
                bundle.behavioral_requirements.size(), bundle.topology_requirements.size());
    return 0;
}

int cmd_lint(int argc, char** argv) {
    if (argc < 1) return usage();
    std::string path;
    bool json = false;
    bool werror = false;
    cprisk::cli::FlagParser parser("lint", argc, argv, {"--json", "--werror"});
    while (parser.next()) {
        if (parser.is("--json")) {
            json = true;
        } else if (parser.is("--werror")) {
            werror = true;
        } else if (parser.looks_like_flag()) {
            parser.reject();
        } else if (path.empty()) {
            path = parser.flag();
        } else {
            std::fprintf(stderr, "lint takes exactly one input file\n");
            parser.fail();
        }
    }
    if (parser.failed()) return usage();
    if (path.empty()) return usage();

    std::string text;
    if (!read_file(path, text)) return report_unreadable(path);

    cprisk::DiagnosticSink sink;
    sink.set_file(path);
    if (ends_with(path, ".lp")) {
        auto program = cprisk::asp::parse_program(text, sink);
        if (program.has_value()) {
            cprisk::lint::lint_program(*program, cprisk::lint::AspLintOptions{}, sink, path);
        }
    } else {
        cprisk::core::BundleSourceMap source_map;
        auto bundle = cprisk::core::load_bundle_lenient(text, sink, &source_map);
        const auto matrix = cprisk::security::AttackMatrix::standard_ics();
        cprisk::lint::lint_bundle(bundle, source_map, matrix, sink);
    }
    sink.sort_by_location();

    if (json) {
        std::printf("%s", cprisk::render_json(sink.diagnostics()).c_str());
    } else if (!sink.empty()) {
        std::printf("%s", cprisk::render_text(sink.diagnostics()).c_str());
    }
    if (sink.has_errors()) return 1;
    if (werror && sink.has_warnings()) return 1;
    return 0;
}

// --- cprisk graph ----------------------------------------------------------

void collect_requirement_atoms(const cprisk::asp::ltl::Formula& formula,
                               std::vector<cprisk::asp::Atom>& out) {
    using Op = cprisk::asp::ltl::Formula::Op;
    switch (formula.op()) {
        case Op::Atom: out.push_back(formula.atom_value()); return;
        case Op::True:
        case Op::False: return;
        case Op::Not:
        case Op::Next:
        case Op::WeakNext:
        case Op::Always:
        case Op::Eventually: collect_requirement_atoms(formula.left(), out); return;
        case Op::And:
        case Op::Or:
        case Op::Implies:
        case Op::Until:
        case Op::Release:
            collect_requirement_atoms(formula.left(), out);
            collect_requirement_atoms(formula.right(), out);
            return;
    }
}

/// Everything `cprisk graph` renders: the predicate dependency graph of the
/// program(s), plus (for bundles) the attack-reachability taint summary.
struct GraphReport {
    cprisk::analysis::DependencyGraph graph;
    bool has_taint = false;
    cprisk::analysis::TaintResult taint;
    std::vector<std::string> requirements_off_attack_path;
};

std::string signature_list(const std::vector<cprisk::asp::Signature>& signatures) {
    std::string list;
    for (const auto& sig : signatures) {
        if (!list.empty()) list += ", ";
        list += sig.to_string();
    }
    return list;
}

void print_graph_text(const GraphReport& report) {
    const auto& graph = report.graph;
    std::printf("dependency graph: %zu predicates, %zu dependencies, %zu components, %d strata\n",
                graph.node_count(), graph.edges().size(), graph.component_count(),
                graph.stratum_count());
    const std::set<std::size_t> unstratified(graph.unstratified_components().begin(),
                                             graph.unstratified_components().end());
    const std::set<std::size_t> loops(graph.positive_loop_components().begin(),
                                      graph.positive_loop_components().end());
    for (std::size_t c = 0; c < graph.component_count(); ++c) {
        const auto members = graph.component_signatures(c);
        std::printf("  [%zu] stratum %d: %s%s%s\n", c,
                    graph.stratum_of(graph.components()[c].front()),
                    signature_list(members).c_str(),
                    unstratified.count(c) > 0 ? "  (recursion through negation)" : "",
                    unstratified.count(c) == 0 && loops.count(c) > 0 ? "  (positive recursion)"
                                                                     : "");
    }
    if (!report.has_taint) return;
    const auto& taint = report.taint;
    std::printf("attack taint: %zu entry point(s)\n", taint.entry_points.size());
    for (const auto& entry : taint.entry_points) {
        std::printf("  entry %s (depth %d): %zu applicable technique(s), e.g. %s%s%s\n",
                    entry.component.c_str(), entry.depth, entry.technique_count,
                    entry.technique_id.c_str(),
                    entry.activated_fault.empty() ? "" : ", activates fault ",
                    entry.activated_fault.c_str());
    }
    for (const auto& [component, depth] : taint.compromise_depth) {
        std::printf("  reached %s at depth %d\n", component.c_str(), depth);
    }
    for (const auto& component : taint.unreached) {
        std::printf("  unreached: %s\n", component.c_str());
    }
    for (const auto& id : report.requirements_off_attack_path) {
        std::printf("  requirement off every attack path: %s\n", id.c_str());
    }
}

void print_graph_dot(const GraphReport& report) {
    const auto& graph = report.graph;
    std::printf("digraph dependencies {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
        std::printf("  \"%s\" [label=\"%s\\nstratum %d\"];\n",
                    graph.node(n).to_string().c_str(), graph.node(n).to_string().c_str(),
                    graph.stratum_of(n));
    }
    for (const auto& edge : graph.edges()) {
        std::string attrs;
        if (edge.negative) attrs += "color=red, label=\"not\"";
        if (edge.temporal) attrs += std::string(attrs.empty() ? "" : ", ") + "style=dotted";
        std::printf("  \"%s\" -> \"%s\"%s%s%s;\n", graph.node(edge.from).to_string().c_str(),
                    graph.node(edge.to).to_string().c_str(), attrs.empty() ? "" : " [",
                    attrs.c_str(), attrs.empty() ? "" : "]");
    }
    std::printf("}\n");
}

void print_graph_json(const GraphReport& report) {
    const auto& graph = report.graph;
    std::string out =
        "{\n  \"schema_version\": " + std::to_string(cprisk::kSchemaVersion) + ",\n  \"nodes\": [";
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
        out += n == 0 ? "\n" : ",\n";
        out += "    {\"signature\": \"" + graph.node(n).to_string() + "\", \"component\": " +
               std::to_string(graph.component_of(n)) + ", \"stratum\": " +
               std::to_string(graph.stratum_of(n)) + "}";
    }
    out += graph.node_count() > 0 ? "\n  ],\n" : "],\n";
    out += "  \"edges\": [";
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const auto& edge = graph.edges()[e];
        out += e == 0 ? "\n" : ",\n";
        out += "    {\"from\": \"" + graph.node(edge.from).to_string() + "\", \"to\": \"" +
               graph.node(edge.to).to_string() + "\", \"negative\": " +
               (edge.negative ? "true" : "false") + ", \"temporal\": " +
               (edge.temporal ? "true" : "false") + "}";
    }
    out += graph.edges().empty() ? "],\n" : "\n  ],\n";
    out += "  \"stratified\": " + std::string(graph.is_stratified() ? "true" : "false");
    if (report.has_taint) {
        const auto& taint = report.taint;
        out += ",\n  \"taint\": {\n    \"entry_points\": [";
        for (std::size_t i = 0; i < taint.entry_points.size(); ++i) {
            const auto& entry = taint.entry_points[i];
            out += i == 0 ? "\n" : ",\n";
            out += "      {\"component\": \"" + entry.component + "\", \"depth\": " +
                   std::to_string(entry.depth) + ", \"techniques\": " +
                   std::to_string(entry.technique_count) + ", \"technique\": \"" +
                   entry.technique_id + "\"";
            if (!entry.activated_fault.empty()) {
                out += ", \"activates_fault\": \"" + entry.activated_fault + "\"";
            }
            out += "}";
        }
        out += taint.entry_points.empty() ? "],\n" : "\n    ],\n";
        out += "    \"compromise_depth\": {";
        bool first = true;
        for (const auto& [component, depth] : taint.compromise_depth) {
            out += first ? "" : ", ";
            out += "\"" + component + "\": " + std::to_string(depth);
            first = false;
        }
        out += "},\n    \"unreached\": [";
        for (std::size_t i = 0; i < taint.unreached.size(); ++i) {
            out += (i == 0 ? "\"" : ", \"") + taint.unreached[i] + "\"";
        }
        out += "],\n    \"requirements_off_attack_path\": [";
        for (std::size_t i = 0; i < report.requirements_off_attack_path.size(); ++i) {
            out += (i == 0 ? "\"" : ", \"") + report.requirements_off_attack_path[i] + "\"";
        }
        out += "]\n  }";
    }
    out += "\n}\n";
    std::printf("%s", out.c_str());
}

int cmd_graph(int argc, char** argv) {
    if (argc < 1) return usage();
    std::string path;
    enum class Format { Text, Dot, Json } format = Format::Text;
    cprisk::cli::FlagParser parser("graph", argc, argv, {"--dot", "--json"});
    while (parser.next()) {
        if (parser.is("--dot")) {
            format = Format::Dot;
        } else if (parser.is("--json")) {
            format = Format::Json;
        } else if (parser.looks_like_flag()) {
            parser.reject();
        } else if (path.empty()) {
            path = parser.flag();
        } else {
            std::fprintf(stderr, "graph takes exactly one input file\n");
            parser.fail();
        }
    }
    if (parser.failed()) return usage();
    if (path.empty()) return usage();

    std::string text;
    if (!read_file(path, text)) return report_unreadable(path);

    cprisk::DiagnosticSink sink;
    sink.set_file(path);
    GraphReport report;
    if (ends_with(path, ".lp")) {
        auto program = cprisk::asp::parse_program(text, sink);
        if (!program.has_value()) {
            std::fprintf(stderr, "%s", cprisk::render_text(sink.diagnostics()).c_str());
            return 1;
        }
        report.graph = cprisk::analysis::DependencyGraph::build(*program);
    } else {
        auto bundle = cprisk::core::load_bundle_lenient(text, sink);
        std::vector<cprisk::asp::Program> programs;
        for (const auto& component : bundle.model.components()) {
            for (const std::string& fragment : bundle.model.behaviors(component.id)) {
                auto program = cprisk::asp::parse_program(fragment, sink);
                if (program.has_value()) programs.push_back(std::move(*program));
            }
        }
        if (sink.has_errors()) {
            sink.sort_by_location();
            std::fprintf(stderr, "%s", cprisk::render_text(sink.diagnostics()).c_str());
            return 1;
        }
        std::vector<const cprisk::asp::Program*> pointers;
        pointers.reserve(programs.size());
        for (const auto& program : programs) pointers.push_back(&program);
        report.graph = cprisk::analysis::DependencyGraph::build(pointers);

        report.has_taint = true;
        const auto matrix = cprisk::security::AttackMatrix::standard_ics();
        report.taint = cprisk::analysis::analyze_attack_reachability(bundle.model, matrix);
        for (const auto* requirements :
             {&bundle.behavioral_requirements, &bundle.topology_requirements}) {
            for (const cprisk::epa::Requirement& requirement : *requirements) {
                std::vector<cprisk::asp::Atom> atoms;
                collect_requirement_atoms(requirement.formula, atoms);
                bool on_path = false;
                for (const auto& atom : atoms) {
                    for (const auto& arg : atom.args) {
                        if (arg.is_symbol() && report.taint.reached(arg.name())) on_path = true;
                    }
                }
                if (!on_path) {
                    report.requirements_off_attack_path.push_back(requirement.id);
                }
            }
        }
    }

    switch (format) {
        case Format::Text: print_graph_text(report); break;
        case Format::Dot: print_graph_dot(report); break;
        case Format::Json: print_graph_json(report); break;
    }
    return 0;
}

int cmd_matrix() {
    std::printf("O-RA risk matrix (Table I):\n%s\n",
                cprisk::risk::ora_risk_matrix().render().render().c_str());
    std::printf("IEC 61508 risk classes:\n%s",
                cprisk::risk::iec61508_matrix_table().render().c_str());
    return 0;
}

bool write_file(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    if (!file) return false;
    file << content;
    return static_cast<bool>(file);
}

int cmd_assess(int argc, char** argv) {
    if (argc < 1) return usage();
    const std::string path = argv[0];
    cprisk::core::AssessmentConfig config;
    config.include_attack_scenarios = false;  // opt-in via --attack-scenarios
    std::optional<std::string> markdown_path;
    std::optional<std::string> csv_path;
    std::optional<std::string> json_path;
    std::optional<std::string> trace_path;
    std::optional<std::string> metrics_path;
    const std::vector<std::string> assess_flags = {
        "--horizon",   "--max-faults",    "--attack-scenarios", "--no-cegar",
        "--budget",    "--phase-budget",  "--deadline-ms",      "--max-decisions",
        "--jobs",      "--journal",       "--journal-sync",     "--resume",
        "--retry",     "--markdown",      "--csv",              "--json",
        "--trace",     "--metrics",       "--no-static-prefilter",
        "--solver",    "--exhaustive",    "--max-card",         "--attack-reachable-only",
        "--priority",  "--prior-seed"};

    cprisk::cli::FlagParser parser("assess", argc - 1, argv + 1, assess_flags);
    while (parser.next()) {
        long long value = 0;
        std::string text;
        if (parser.is("--horizon")) {
            if (parser.value(value)) config.horizon = static_cast<int>(value);
        } else if (parser.is("--max-faults")) {
            if (parser.value(value)) config.max_simultaneous_faults = static_cast<std::size_t>(value);
        } else if (parser.is("--attack-scenarios")) {
            config.include_attack_scenarios = true;
        } else if (parser.is("--no-cegar")) {
            config.use_cegar = false;
        } else if (parser.is("--no-static-prefilter")) {
            config.static_prefilter = false;
        } else if (parser.is("--solver")) {
            if (!parser.value(text)) continue;
            if (text == "cdcl") {
                config.solver = cprisk::asp::SolverEngine::Cdcl;
            } else if (text == "dpll") {
                config.solver = cprisk::asp::SolverEngine::Dpll;
            } else {
                std::fprintf(stderr,
                             "invalid value '%s' for '--solver': expected 'cdcl' or 'dpll'\n",
                             text.c_str());
                parser.fail();
            }
        } else if (parser.is("--priority")) {
            if (!parser.value(text)) continue;
            const auto policy = cprisk::risk::parse_priority_policy(text);
            if (policy.has_value()) {
                config.priority_policy = *policy;
            } else {
                std::fprintf(stderr,
                             "invalid value '%s' for '--priority': expected 'expected-risk' or "
                             "'enumeration'\n",
                             text.c_str());
                parser.fail();
            }
        } else if (parser.is("--prior-seed")) {
            if (parser.value(value)) config.prior_seed = static_cast<unsigned long long>(value);
        } else if (parser.is("--budget")) {
            if (parser.value(value)) config.budget = value;
        } else if (parser.is("--phase-budget")) {
            if (parser.value(value)) config.phase_budget = value;
        } else if (parser.is("--deadline-ms")) {
            if (parser.value(value)) config.deadline_ms = value;
        } else if (parser.is("--max-decisions")) {
            if (parser.value(value)) config.max_decisions = static_cast<std::size_t>(value);
        } else if (parser.is("--jobs")) {
            // 0 = hardware concurrency
            if (parser.value(value)) config.jobs = static_cast<std::size_t>(value);
        } else if (parser.is("--exhaustive")) {
            config.exhaustive = true;
        } else if (parser.is("--max-card")) {
            // 0 = full lattice
            if (parser.value(value)) config.max_card = static_cast<std::size_t>(value);
        } else if (parser.is("--attack-reachable-only")) {
            config.attack_reachable_only = true;
        } else if (parser.is("--journal")) {
            parser.value(config.journal_path);
        } else if (parser.is("--journal-sync")) {
            config.journal_sync = true;
        } else if (parser.is("--resume")) {
            config.resume = true;
        } else if (parser.is("--retry")) {
            if (parser.value(value)) config.retries = static_cast<std::size_t>(value);
        } else if (parser.is("--markdown")) {
            if (parser.value(text)) markdown_path = text;
        } else if (parser.is("--csv")) {
            if (parser.value(text)) csv_path = text;
        } else if (parser.is("--json")) {
            if (parser.value(text)) json_path = text;
        } else if (parser.is("--trace")) {
            if (parser.value(text)) trace_path = text;
        } else if (parser.is("--metrics")) {
            if (parser.value(text)) metrics_path = text;
        } else {
            parser.reject();
        }
    }
    if (parser.failed()) return usage();

    if (config.resume && config.journal_path.empty()) {
        std::fprintf(stderr, "--resume requires --journal FILE\n");
        return usage();
    }
    if (config.journal_sync && config.journal_path.empty()) {
        std::fprintf(stderr, "--journal-sync requires --journal FILE\n");
        return usage();
    }
    if (!config.exhaustive && (config.max_card != 0 || config.attack_reachable_only)) {
        std::fprintf(stderr, "%s requires --exhaustive\n",
                     config.max_card != 0 ? "--max-card" : "--attack-reachable-only");
        return usage();
    }

    std::string bundle_text;
    if (!read_file(path, bundle_text)) return report_unreadable(path);
    auto bundle = cprisk::core::load_bundle_file(path);
    if (!bundle.ok()) {
        std::fprintf(stderr, "error: %s\n", bundle.error().c_str());
        return 1;
    }
    const auto& b = bundle.value();
    const auto matrix = cprisk::security::AttackMatrix::standard_ics();
    const auto catalog = cprisk::security::SecurityCatalog::standard_ics();
    const auto mitigations =
        cprisk::epa::MitigationMap::from_attack_matrix(b.model, matrix);

    cprisk::core::RiskAssessment assessment(b.model, b.effective_behavioral(),
                                            b.effective_topology(), matrix, mitigations,
                                            &catalog);

    // Observability is opt-in: without --trace/--metrics the context carries
    // null sinks and every instrumentation site costs one branch.
    const bool observing = trace_path.has_value() || metrics_path.has_value();
    cprisk::obs::ChromeTraceSink trace_sink;
    cprisk::obs::MetricsRegistry metrics_registry;
    cprisk::core::RunContext ctx;
    ctx.jobs = config.jobs;
    if (trace_path) ctx.trace = &trace_sink;
    if (metrics_path) ctx.metrics = &metrics_registry;

    auto report = assessment.run(config, ctx);
    if (!report.ok()) {
        std::fprintf(stderr, "assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("components=%zu relations=%zu scenarios=%zu hazards=%zu spurious=%zu\n",
                r.component_count, r.relation_count, r.scenario_count, r.hazards.size(),
                r.spurious_eliminated);
    if (r.exhaustive.enabled) {
        std::printf("exhaustive: certificate=%s candidates=%zu evaluated=%zu pruned=%zu "
                    "minimal=%zu\n",
                    r.exhaustive.certificate.c_str(), r.exhaustive.candidates,
                    r.exhaustive.evaluated, r.exhaustive.pruned, r.exhaustive.minimal_hazards);
    }
    std::printf("%s", r.risk_table().render().c_str());
    std::printf("%s", r.mitigation_table().render().c_str());
    if (observing) {
        // Timings are machine-dependent; keep the default output (and the
        // written reports) byte-stable and show them only on request.
        std::printf("%s", r.timing_table().render().c_str());
    }

    if (trace_path) {
        auto written = trace_sink.write_file(*trace_path);
        if (!written.ok()) {
            std::fprintf(stderr, "%s\n", written.error().c_str());
            return 2;
        }
        std::printf("trace written to %s (%zu events)\n", trace_path->c_str(),
                    trace_sink.event_count());
    }
    if (metrics_path) {
        auto written = metrics_registry.write_file(*metrics_path);
        if (!written.ok()) {
            std::fprintf(stderr, "%s\n", written.error().c_str());
            return 2;
        }
        std::printf("metrics written to %s\n", metrics_path->c_str());
    }

    if (markdown_path) {
        if (!write_file(*markdown_path, cprisk::core::render_markdown(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", markdown_path->c_str());
            return 1;
        }
        std::printf("markdown report written to %s\n", markdown_path->c_str());
    }
    if (csv_path) {
        if (!write_file(*csv_path, cprisk::core::render_risk_csv(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", csv_path->c_str());
            return 1;
        }
        std::printf("risk CSV written to %s\n", csv_path->c_str());
    }
    if (json_path) {
        if (!write_file(*json_path, cprisk::core::render_report_json(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", json_path->c_str());
            return 1;
        }
        std::printf("JSON report written to %s\n", json_path->c_str());
    }
    // Exit 3 distinguishes "finished but not exhaustive" from both a clean
    // run (0) and a hard failure (1): callers scripting the assessment can
    // retry with a larger budget or --resume instead of discarding output.
    if (!r.complete()) {
        std::fprintf(stderr,
                     "partial result: %zu of %zu scenarios undetermined "
                     "(see the Completeness section of the report)\n",
                     r.undetermined.size(), r.scenario_count);
        return 3;
    }
    return 0;
}

// --- cprisk mitigate -------------------------------------------------------

/// Step-7-focused front end (docs/quantitative-risk.md): runs the same
/// pipeline as `assess` but reports the mitigation strategy — and, with
/// --pareto, the full (cost, residual risk, coverage) nondominated front
/// instead of just the single cost-optimal plan.
int cmd_mitigate(int argc, char** argv) {
    if (argc < 1) return usage();
    const std::string path = argv[0];
    cprisk::core::AssessmentConfig config;
    config.include_attack_scenarios = false;  // opt-in via --attack-scenarios
    std::optional<std::string> markdown_path;
    std::optional<std::string> csv_path;
    std::optional<std::string> json_path;
    const std::vector<std::string> mitigate_flags = {
        "--pareto",       "--horizon", "--max-faults", "--attack-scenarios", "--budget",
        "--phase-budget", "--jobs",    "--markdown",   "--csv",              "--json"};
    cprisk::cli::FlagParser parser("mitigate", argc - 1, argv + 1, mitigate_flags);
    while (parser.next()) {
        long long value = 0;
        std::string text;
        if (parser.is("--pareto")) {
            config.pareto = true;
        } else if (parser.is("--horizon")) {
            if (parser.value(value)) config.horizon = static_cast<int>(value);
        } else if (parser.is("--max-faults")) {
            if (parser.value(value)) {
                config.max_simultaneous_faults = static_cast<std::size_t>(value);
            }
        } else if (parser.is("--attack-scenarios")) {
            config.include_attack_scenarios = true;
        } else if (parser.is("--budget")) {
            if (parser.value(value)) config.budget = value;
        } else if (parser.is("--phase-budget")) {
            if (parser.value(value)) config.phase_budget = value;
        } else if (parser.is("--jobs")) {
            if (parser.value(value)) config.jobs = static_cast<std::size_t>(value);
        } else if (parser.is("--markdown")) {
            if (parser.value(text)) markdown_path = text;
        } else if (parser.is("--csv")) {
            if (parser.value(text)) csv_path = text;
        } else if (parser.is("--json")) {
            if (parser.value(text)) json_path = text;
        } else {
            parser.reject();
        }
    }
    if (parser.failed()) return usage();
    if (csv_path && !config.pareto) {
        std::fprintf(stderr, "--csv requires --pareto (the Pareto front is the CSV payload)\n");
        return usage();
    }

    std::string bundle_text;
    if (!read_file(path, bundle_text)) return report_unreadable(path);
    auto bundle = cprisk::core::load_bundle_file(path);
    if (!bundle.ok()) {
        std::fprintf(stderr, "error: %s\n", bundle.error().c_str());
        return 1;
    }
    const auto& b = bundle.value();
    const auto matrix = cprisk::security::AttackMatrix::standard_ics();
    const auto catalog = cprisk::security::SecurityCatalog::standard_ics();
    const auto mitigations = cprisk::epa::MitigationMap::from_attack_matrix(b.model, matrix);
    cprisk::core::RiskAssessment assessment(b.model, b.effective_behavioral(),
                                            b.effective_topology(), matrix, mitigations,
                                            &catalog);
    auto report = assessment.run(config);
    if (!report.ok()) {
        std::fprintf(stderr, "assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("%s", r.mitigation_table().render().c_str());
    if (config.pareto) std::printf("%s", r.pareto_table().render().c_str());

    if (markdown_path) {
        if (!write_file(*markdown_path, cprisk::core::render_markdown(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", markdown_path->c_str());
            return 1;
        }
        std::printf("markdown report written to %s\n", markdown_path->c_str());
    }
    if (csv_path) {
        if (!write_file(*csv_path, cprisk::core::render_pareto_csv(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", csv_path->c_str());
            return 1;
        }
        std::printf("Pareto CSV written to %s\n", csv_path->c_str());
    }
    if (json_path) {
        if (!write_file(*json_path, cprisk::core::render_report_json(r))) {
            std::fprintf(stderr, "cannot write '%s'\n", json_path->c_str());
            return 1;
        }
        std::printf("JSON report written to %s\n", json_path->c_str());
    }
    if (!r.complete()) {
        std::fprintf(stderr,
                     "partial result: %zu of %zu scenarios undetermined "
                     "(see the Completeness section of the report)\n",
                     r.undetermined.size(), r.scenario_count);
        return 3;
    }
    return 0;
}

// --- cprisk serve ----------------------------------------------------------

/// Written by the SIGTERM/SIGINT handler; the watcher thread polls it. A
/// self-pipe keeps the handler async-signal-safe (write() only).
int g_signal_pipe_write = -1;

extern "C" void on_shutdown_signal(int) {
    const char byte = 1;
    // The pipe is never full (one byte per signal); the cast mutes
    // warn_unused_result, and there is no recovery in a handler anyway.
    (void)!::write(g_signal_pipe_write, &byte, 1);
}

int cmd_serve(int argc, char** argv) {
    cprisk::serve::ServeOptions options;
    const std::vector<std::string> serve_flags = {
        "--socket",    "--executors", "--max-inflight", "--request-jobs", "--hot-models",
        "--cache-mb",  "--drain-ms",  "--retry",        "--chaos"};
    cprisk::cli::FlagParser parser("serve", argc, argv, serve_flags);
    while (parser.next()) {
        long long value = 0;
        if (parser.is("--socket")) {
            parser.value(options.socket_path);
        } else if (parser.is("--executors")) {
            if (parser.value(value)) options.executors = static_cast<std::size_t>(value);
        } else if (parser.is("--max-inflight")) {
            if (parser.value(value)) options.max_inflight = static_cast<std::size_t>(value);
        } else if (parser.is("--request-jobs")) {
            if (parser.value(value)) options.request_jobs = static_cast<std::size_t>(value);
        } else if (parser.is("--hot-models")) {
            if (parser.value(value)) options.hot_models = static_cast<std::size_t>(value);
        } else if (parser.is("--cache-mb")) {
            if (parser.value(value)) {
                options.cache_bytes = static_cast<std::size_t>(value) * 1024 * 1024;
            }
        } else if (parser.is("--drain-ms")) {
            if (parser.value(value)) options.drain_ms = value;
        } else if (parser.is("--retry")) {
            if (parser.value(value)) options.retries = static_cast<std::size_t>(value);
        } else if (parser.is("--chaos")) {
            options.allow_fault_injection = true;
        } else {
            parser.reject();
        }
    }
    if (parser.failed()) return usage();
    if (options.socket_path.empty()) {
        std::fprintf(stderr, "serve requires --socket PATH\n");
        return usage();
    }

    // Clients that vanish mid-reply must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    int signal_pipe[2] = {-1, -1};
    int stop_pipe[2] = {-1, -1};
    if (::pipe2(signal_pipe, O_CLOEXEC) != 0 || ::pipe2(stop_pipe, O_CLOEXEC) != 0) {
        std::fprintf(stderr, "error: cannot create signal pipe: %s\n", std::strerror(errno));
        return 1;
    }
    g_signal_pipe_write = signal_pipe[1];

    auto started = cprisk::serve::Server::start(std::move(options));
    if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.error().c_str());
        return 1;
    }
    cprisk::serve::Server& server = *started.value();

    struct sigaction action {};
    action.sa_handler = on_shutdown_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    // First signal: graceful drain. Second: hard cancel of in-flight work.
    std::thread watcher([&server, &signal_pipe, &stop_pipe] {
        int signals_seen = 0;
        for (;;) {
            pollfd fds[2] = {{signal_pipe[0], POLLIN, 0}, {stop_pipe[0], POLLIN, 0}};
            if (::poll(fds, 2, -1) < 0) {
                if (errno == EINTR) continue;
                break;
            }
            if ((fds[1].revents & POLLIN) != 0) break;
            if ((fds[0].revents & POLLIN) != 0) {
                char byte = 0;
                if (::read(signal_pipe[0], &byte, 1) <= 0) continue;
                ++signals_seen;
                server.begin_drain(signals_seen >= 2);
            }
        }
    });

    std::printf("listening on %s\n", server.socket_path().c_str());
    std::fflush(stdout);  // scripted callers wait for this line before connecting

    server.wait();

    const char stop = 1;
    (void)!::write(stop_pipe[1], &stop, 1);
    watcher.join();
    for (const int fd : {signal_pipe[0], signal_pipe[1], stop_pipe[0], stop_pipe[1]}) ::close(fd);
    std::printf("drained\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "check" && argc >= 3) return cmd_check(argv[2]);
    if (command == "lint") return cmd_lint(argc - 2, argv + 2);
    if (command == "graph") return cmd_graph(argc - 2, argv + 2);
    if (command == "matrix") return cmd_matrix();
    if (command == "assess") return cmd_assess(argc - 2, argv + 2);
    if (command == "mitigate") return cmd_mitigate(argc - 2, argv + 2);
    if (command == "serve") return cmd_serve(argc - 2, argv + 2);
    return usage();
}
