// cprisk — shared command-line flag parsing for the cprisk front end.
//
// Every subcommand used to hand-roll the same three pieces: a strict
// strtoll-based numeric value parse (atoll's silent 0 on garbage hid
// typos), the "incomplete option" diagnostic for a flag at the end of the
// argument list, and the Levenshtein nearest-flag hint on unknown options.
// FlagParser centralizes them with byte-identical diagnostics, so the
// exact-exit-code and exact-message CLI tests keep passing unchanged.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace cprisk::cli {

/// Plain Levenshtein distance — small strings, small flag lists, so the
/// quadratic DP is fine.
inline std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t previous = row[j];
            const std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
            diagonal = previous;
        }
    }
    return row[b.size()];
}

/// The valid flag closest to `flag` — every unrecognized-flag diagnostic
/// names it, so a typo ("--jbos") points straight at the fix ("--jobs").
inline std::string nearest_flag(const std::string& flag, const std::vector<std::string>& known) {
    std::string best;
    std::size_t best_distance = std::numeric_limits<std::size_t>::max();
    for (const std::string& candidate : known) {
        const std::size_t distance = edit_distance(flag, candidate);
        if (distance < best_distance) {
            best_distance = distance;
            best = candidate;
        }
    }
    return best;
}

/// Iterates one subcommand's arguments. The caller dispatches on `is()` and
/// pulls values with `value()`; any diagnostic (missing value, malformed
/// number, unknown flag) is printed here, the parse is marked failed, and
/// iteration stops — the caller just checks `failed()` once at the end.
class FlagParser {
public:
    /// `command` names the subcommand in diagnostics; `known` is the full
    /// flag list the nearest-flag hint searches.
    FlagParser(const char* command, int argc, char** argv, std::vector<std::string> known)
        : command_(command), argc_(argc), argv_(argv), known_(std::move(known)) {}

    /// Advances to the next argument; false at the end or after a failure.
    bool next() {
        if (failed_ || index_ >= argc_) return false;
        flag_ = argv_[index_++];
        return true;
    }

    const std::string& flag() const { return flag_; }
    bool is(const char* name) const { return flag_ == name; }
    /// True when the current argument looks like an option (leading '-'),
    /// as opposed to a positional input path.
    bool looks_like_flag() const { return !flag_.empty() && flag_[0] == '-'; }

    /// Consumes the next argument as the current flag's string value.
    bool value(std::string& out) {
        if (index_ >= argc_) return missing_value();
        out = argv_[index_++];
        return true;
    }

    /// Consumes the next argument as a non-negative integer. The parse must
    /// consume the whole token and stay in range.
    bool value(long long& out) {
        if (index_ >= argc_) return missing_value();
        const char* text = argv_[index_++];
        char* end = nullptr;
        errno = 0;
        const long long parsed = std::strtoll(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE || parsed < 0) {
            std::fprintf(stderr, "invalid value '%s' for '%s': expected a non-negative integer\n",
                         text, flag_.c_str());
            failed_ = true;
            return false;
        }
        out = parsed;
        return true;
    }

    /// The current argument matched no flag: emits the nearest-flag hint.
    void reject() {
        std::fprintf(stderr, "unknown %s option '%s' (nearest valid flag: '%s')\n", command_,
                     flag_.c_str(), nearest_flag(flag_, known_).c_str());
        failed_ = true;
    }

    /// Fails the parse after a caller-printed diagnostic (e.g. an enum flag
    /// with an unrecognized value).
    void fail() { failed_ = true; }

    bool failed() const { return failed_; }

private:
    bool missing_value() {
        std::fprintf(stderr, "incomplete option '%s': missing value\n", flag_.c_str());
        failed_ = true;
        return false;
    }

    const char* command_;
    int argc_;
    char** argv_;
    std::vector<std::string> known_;
    int index_ = 0;
    std::string flag_;
    bool failed_ = false;
};

}  // namespace cprisk::cli
