// The paper's full workflow on its own case study: run the seven-step
// preliminary risk assessment of the water-tank system (Fig. 1 pipeline) and
// print the analyst-facing report — hazards, O-RA/IEC 61508 risk ratings,
// and the budget-constrained multi-phase mitigation plan.
#include <cstdio>

#include "cprisk.hpp"

using namespace cprisk;

int main() {
    auto built = core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("case study failed: %s\n", built.error().c_str());
        return 1;
    }
    const auto& cs = built.value();

    core::RiskAssessment assessment(cs.system, cs.requirements, cs.topology_requirements,
                                    cs.matrix, cs.mitigations);

    core::AssessmentConfig config;
    config.horizon = cs.horizon;
    config.max_simultaneous_faults = 2;
    config.include_attack_scenarios = false;  // fault-combination view
    config.phase_budget = 6;                  // yearly security budget units

    auto report = assessment.run(config);
    if (!report.ok()) {
        std::printf("assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("=== Preliminary risk assessment: water-tank IT/OT system ===\n\n");
    std::printf("model: %zu components, %zu relations; scenario space: %zu\n",
                r.component_count, r.relation_count, r.scenario_count);
    std::printf("hazards confirmed: %zu (after eliminating %zu spurious candidates)\n\n",
                r.hazards.size(), r.spurious_eliminated);

    std::printf("-- confirmed hazards --\n%s\n", r.hazard_table().render().c_str());
    std::printf("-- qualitative risk ratings (O-RA Table I + IEC 61508) --\n%s\n",
                r.risk_table().render().c_str());
    std::printf("-- multi-phase mitigation plan (budget %lld/phase) --\n%s\n",
                static_cast<long long>(config.phase_budget),
                r.mitigation_table().render().c_str());

    std::printf("single-shot optimum: cost=%lld residual=%lld chosen={",
                static_cast<long long>(r.selection.mitigation_cost),
                static_cast<long long>(r.selection.residual_loss));
    for (std::size_t i = 0; i < r.selection.chosen.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", r.selection.chosen[i].c_str());
    }
    std::printf("}\n");
    return 0;
}
