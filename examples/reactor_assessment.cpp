// Full assessment of the batch-reactor case study (second physical domain):
// demonstrates defence-in-depth verdicts, the silent-sabotage SCADA
// compromise, and the RST-extended uncertain analysis on a fault whose
// existence the analyst is unsure about.
#include <cstdio>

#include "cprisk.hpp"

using namespace cprisk;

int main() {
    auto built = core::ReactorCaseStudy::build();
    if (!built.ok()) {
        std::printf("case study failed: %s\n", built.error().c_str());
        return 1;
    }
    const auto& cs = built.value();

    core::RiskAssessment assessment(cs.system, cs.requirements, cs.topology_requirements,
                                    cs.matrix, cs.mitigations);
    core::AssessmentConfig config;
    config.horizon = cs.horizon;
    config.max_simultaneous_faults = 3;  // the rupture needs three actuator faults
    config.include_attack_scenarios = false;
    config.budget = 10;

    auto report = assessment.run(config);
    if (!report.ok()) {
        std::printf("assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("=== Batch reactor: preliminary risk assessment ===\n\n");
    std::printf("scenarios: %zu   confirmed hazards: %zu   spurious eliminated: %zu\n\n",
                r.scenario_count, r.hazards.size(), r.spurious_eliminated);
    std::printf("%s\n", r.risk_table().render().c_str());
    std::printf("mitigation (budget 10): cost=%lld residual=%lld chosen={",
                static_cast<long long>(r.selection.mitigation_cost),
                static_cast<long long>(r.selection.residual_loss));
    for (std::size_t i = 0; i < r.selection.chosen.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", r.selection.chosen[i].c_str());
    }
    std::printf("}\n\n");

    // Uncertain analysis: the maintenance log is ambiguous about whether the
    // relief valve was left in a blocked state after service. Combined with
    // a frozen temperature sensor, does the plant rupture?
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements,
                                                          cs.mitigations, options);
    require(analysis.ok(), analysis.error());

    epa::UncertainScenario uncertain;
    uncertain.id = "post_maintenance";
    uncertain.certain = {{core::reactor_ids::kTempSensor, "frozen_reading"}};
    uncertain.uncertain = {{core::reactor_ids::kReliefValve, "stuck_closed"}};
    auto verdict = epa::evaluate_uncertain(analysis.value(), uncertain, {});
    require(verdict.ok(), verdict.error());

    std::printf("=== RST-extended analysis: ambiguous maintenance state ===\n");
    std::printf("worlds evaluated: %zu\n", verdict.value().worlds_evaluated);
    for (const auto& [requirement, region] : verdict.value().regions) {
        std::printf("  %-4s -> %s region (%zu/%zu worlds violate)\n", requirement.c_str(),
                    std::string(epa::to_string(region)).c_str(),
                    verdict.value().violating_worlds.at(requirement),
                    verdict.value().worlds_evaluated);
    }
    std::printf(
        "\nThe rupture requirement lands in the boundary region: the analyst must\n"
        "verify the relief valve's state before restart (the paper's escalation rule).\n");
    return 0;
}
