// Attack-surface exploration: match the CWE/CVE/CAPEC-style catalogs against
// a refined model (version-specific vulnerability matching, §VI), generate
// per-actor attack graphs, and check which factors the risk verdict is
// actually sensitive to (rough-set view of the scenario table).
#include <algorithm>
#include <cstdio>

#include "cprisk.hpp"

using namespace cprisk;

int main() {
    auto built = core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("case study failed: %s\n", built.error().c_str());
        return 1;
    }
    auto model = built.value().system;
    require(model.refine(core::WaterTankCaseStudy::workstation_refinement()).ok(),
            "refinement failed");

    // 1. Catalog matching per component (version-specific where known).
    const auto catalog = security::SecurityCatalog::standard_ics();
    std::printf("=== vulnerability matching over the refined model ===\n");
    for (const auto& component : model.components()) {
        const auto vulnerabilities = catalog.vulnerabilities_for(component);
        if (vulnerabilities.empty()) continue;
        std::printf("%-18s (version '%s')\n", component.id.c_str(),
                    component.version.empty() ? "-" : component.version.c_str());
        for (const auto* v : vulnerabilities) {
            std::printf("  %-12s cvss=%.1f (%s) -> activates '%s'\n", v->id.c_str(), v->cvss,
                        std::string(qual::to_short_string(v->severity_level())).c_str(),
                        v->caused_fault.c_str());
        }
    }

    // 2. Attack graphs per actor.
    const auto matrix = security::AttackMatrix::standard_ics();
    std::printf("\n=== attack paths to the tank controller, per actor ===\n");
    for (const auto& actor : security::standard_threat_actors()) {
        auto graph = security::AttackGraph::build(model, matrix, actor);
        auto paths = graph.paths_to(core::watertank_ids::kOutValveCtrl, 4);
        std::printf("%-10s entries=%zu paths=%zu\n", actor.id.c_str(),
                    graph.entry_points().size(), paths.size());
        for (const auto& path : paths) std::printf("  %s\n", path.to_string().c_str());
    }

    // 3. Rough-set view: can (exposure, layer) alone explain which
    //    components are on some attack path? Boundary cases need refinement.
    std::printf("\n=== rough-set approximation: 'reachable by the cybercriminal' ===\n");
    security::ThreatActor crime;
    for (const auto& actor : security::standard_threat_actors()) {
        if (actor.id == "A-CRIME") crime = actor;
    }
    auto graph = security::AttackGraph::build(model, matrix, crime);
    const auto compromisable = graph.compromisable();

    uncertainty::InformationSystem table;
    std::vector<std::string> names;
    for (const auto& component : model.components()) {
        const bool reached =
            std::find(compromisable.begin(), compromisable.end(), component.id) !=
            compromisable.end();
        auto added = table.add_object(
            {{"exposure", std::string(to_string(component.exposure))},
             {"layer", std::string(to_string(layer_of(component.type)))}},
            reached ? "reachable" : "safe");
        require(added.ok(), added.error());
        names.push_back(component.id);
    }
    const auto regions = table.regions("reachable", {"exposure", "layer"});
    auto print_region = [&](const char* label, const std::set<std::size_t>& region) {
        std::printf("%-10s:", label);
        for (std::size_t object : region) std::printf(" %s", names[object].c_str());
        std::printf("\n");
    };
    print_region("positive", regions.positive);
    print_region("boundary", regions.boundary);
    print_region("negative", regions.negative);
    std::printf(
        "dependency degree of (exposure, layer) on reachability: %.2f\n"
        "boundary components cannot be classified from coarse attributes alone —\n"
        "exactly the cases the paper routes to model refinement.\n",
        table.dependency_degree({"exposure", "layer"}));
    return 0;
}
