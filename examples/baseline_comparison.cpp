// Baseline comparison (paper §III-A): the same hazard — water-tank overflow
// — analyzed three ways:
//
//   1. qualitative EPA (the paper's approach): one declarative model, the
//      engine finds violating scenarios and propagation paths;
//   2. classic FTA: the fault tree is *synthesized from* the EPA verdicts
//      (the incorporation the paper suggests), then minimal cut sets and the
//      qualitative top likelihood are computed;
//   3. a discrete-time Markov chain: the dominant cut sets calibrated to
//      per-step probabilities give bounded overflow probabilities.
//
// The point the paper makes becomes visible: the EPA model is component-
// local and reusable, while the FTA/DTMC artifacts are hazard-specific and
// must be rebuilt per top event.
#include <cstdio>

#include "cprisk.hpp"
#include "fta/fault_tree.hpp"
#include "markov/chain.hpp"

using namespace cprisk;

int main() {
    auto built = core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("case study failed: %s\n", built.error().c_str());
        return 1;
    }
    const auto& cs = built.value();

    // --- view 1: qualitative EPA -------------------------------------------
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    auto epa = epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements, cs.mitigations,
                                                     options);
    require(epa.ok(), epa.error());

    security::ScenarioSpaceOptions space_options;
    space_options.max_simultaneous_faults = 2;
    space_options.include_attack_scenarios = false;
    const auto space = security::ScenarioSpace::build(
        cs.system, cs.matrix, security::standard_threat_actors(), space_options);
    auto verdicts = epa.value().evaluate_all(space, {});
    require(verdicts.ok(), verdicts.error());

    std::size_t violating = 0;
    for (const auto& verdict : verdicts.value()) {
        if (verdict.violates("r1")) ++violating;
    }
    std::printf("=== view 1: qualitative EPA ===\n");
    std::printf("scenarios evaluated: %zu; violating R1 (overflow): %zu\n\n", space.size(),
                violating);

    // --- view 2: FTA synthesized from the EPA ------------------------------
    auto tree = fta::from_verdicts("r1", verdicts.value(), cs.system);
    require(tree.ok(), tree.error());
    std::printf("=== view 2: fault tree (synthesized from EPA verdicts) ===\n");
    std::printf("%s\n", tree.value().to_string().c_str());
    auto cut_sets = tree.value().minimal_cut_sets();
    require(cut_sets.ok(), cut_sets.error());
    std::printf("minimal cut sets:\n");
    for (const auto& cut : cut_sets.value()) {
        std::printf("  {");
        bool first = true;
        for (const auto& event : cut) {
            std::printf("%s%s", first ? "" : ", ", event.c_str());
            first = false;
        }
        std::printf("}\n");
    }
    auto top = tree.value().top_likelihood();
    require(top.ok(), top.error());
    std::printf("qualitative top-event likelihood: %s\n\n",
                std::string(qual::to_short_string(top.value())).c_str());

    // --- view 3: DTMC over the dominant causes ------------------------------
    std::printf("=== view 3: Markov chain over the first-order causes ===\n");
    markov::MarkovChain chain;
    require(chain.add_state("nominal").ok(), "state");
    require(chain.add_state("overflow").ok(), "state");
    double p_any = 0.0;
    for (const auto& cut : cut_sets.value()) {
        if (cut.size() != 1) continue;  // first-order causes only
        // Extract the likelihood of the single basic event from the model.
        const std::string& event = *cut.begin();
        const auto dot = event.find('.');
        const std::string component = event.substr(0, dot);
        const std::string fault = event.substr(dot + 1);
        const auto* mode = cs.system.component(component).find_fault_mode(fault);
        const double p = markov::level_to_probability(
            mode != nullptr ? mode->likelihood : qual::Level::Medium);
        std::printf("  cause %-32s per-step p=%.4f\n", event.c_str(), p);
        p_any = 1.0 - (1.0 - p_any) * (1.0 - p);  // independent causes
    }
    require(chain.set_transition("nominal", "overflow", p_any).ok(), "t");
    require(chain.set_transition("nominal", "nominal", 1.0 - p_any).ok(), "t");
    require(chain.make_absorbing("overflow").ok(), "t");
    for (std::size_t horizon : {10u, 100u, 1000u}) {
        auto p = chain.reach_probability("nominal", {"overflow"}, horizon);
        require(p.ok(), p.error());
        std::printf("  P(overflow within %4zu steps) = %.4f\n", horizon, p.value());
    }

    std::printf(
        "\nTakeaway: all three views agree on *what* causes the overflow; the\n"
        "qualitative EPA needed only the reusable component models, while the\n"
        "FTA/DTMC artifacts above are per-hazard constructions (the expertise\n"
        "asymmetry the paper argues motivates qualitative EPA for SMEs).\n");
    return 0;
}
