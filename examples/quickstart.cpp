// Quickstart: model a three-component control chain, inject a fault, and ask
// the qualitative EPA whether a safety requirement can be violated.
//
//   sensor --> controller --> pump     (signal flows)
//
// Requirement: no error may ever reach the pump.
#include <cstdio>

#include "cprisk.hpp"

using namespace cprisk;

int main() {
    // 1. Build the system model.
    model::SystemModel system;
    auto add = [&](const char* id, model::ElementType type) {
        model::Component c;
        c.id = id;
        c.name = id;
        c.type = type;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        require(system.add_component(std::move(c)).ok(), "add_component failed");
    };
    add("sensor", model::ElementType::Sensor);
    add("controller", model::ElementType::Controller);
    add("pump", model::ElementType::Actuator);
    require(system.add_relation({"sensor", "controller",
                                 model::RelationType::SignalFlow, "reading"}).ok(),
            "relation failed");
    require(system.add_relation({"controller", "pump",
                                 model::RelationType::SignalFlow, "command"}).ok(),
            "relation failed");

    // 2. State the requirement and set up the analysis.
    auto epa = epa::ErrorPropagationAnalysis::create(
        system, {epa::Requirement::no_error_reaches("pump")}, epa::MitigationMap{});
    if (!epa.ok()) {
        std::printf("setup failed: %s\n", epa.error().c_str());
        return 1;
    }

    // 3. Evaluate a scenario: the sensor fails.
    security::AttackScenario scenario;
    scenario.id = "sensor_failure";
    scenario.mutations = {{"sensor", "fail"}};
    scenario.likelihood = qual::Level::Low;

    auto verdict = epa.value().evaluate(scenario, /*active_mitigations=*/{});
    if (!verdict.ok()) {
        std::printf("evaluation failed: %s\n", verdict.error().c_str());
        return 1;
    }

    // 4. Inspect the result.
    std::printf("scenario '%s': %s\n", scenario.id.c_str(),
                verdict.value().any_violation() ? "VIOLATES requirements" : "safe");
    for (const auto& requirement : verdict.value().violated_requirements) {
        std::printf("  violated: %s\n", requirement.c_str());
    }
    std::printf("  propagation path:");
    for (const auto& step : verdict.value().propagation) {
        std::printf(" t%d:%s", step.time, step.component.c_str());
    }
    std::printf("\n  impact severity: %s\n",
                std::string(qual::to_short_string(verdict.value().severity)).c_str());
    return 0;
}
