// A second IT/OT scenario of the kind the paper's introduction motivates: a
// small bottling SME whose office IT (public-facing) bridges into the OT
// bottling line through an engineering workstation. The example builds the
// model from the standard component library, derives the attack scenario
// space from the ATT&CK-style matrix per threat actor, and produces a
// budget-constrained, multi-phase security consolidation plan — the gradual
// hardening roadmap an SME would actually execute.
#include <cstdio>

#include "cprisk.hpp"

using namespace cprisk;

namespace {

Result<model::SystemModel> build_plant() {
    model::SystemModel system;
    const auto library = model::ComponentLibrary::standard_cps();

    struct Spec {
        const char* type;
        const char* id;
        const char* name;
    };
    const Spec specs[] = {
        {"office_network", "office_net", "Office Network"},
        {"engineering_workstation", "eng_ws", "Engineering Workstation"},
        {"email_client", "mail", "E-mail Client"},
        {"web_browser", "browser", "Web Browser"},
        {"control_network", "control_net", "Control Network"},
        {"plc", "line_plc", "Bottling Line PLC"},
        {"valve_actuator", "filler_valve", "Filler Valve"},
        {"level_sensor", "fill_sensor", "Fill Level Sensor"},
        {"hmi", "line_hmi", "Line HMI"},
        {"water_tank", "buffer_tank", "Buffer Tank"},
    };
    for (const Spec& spec : specs) {
        auto added = library.instantiate(spec.type, spec.id, spec.name, system);
        if (!added.ok()) return Result<model::SystemModel>::failure(added.error());
    }

    using RT = model::RelationType;
    const model::Relation relations[] = {
        {"mail", "eng_ws", RT::SignalFlow, "attachments"},
        {"browser", "eng_ws", RT::SignalFlow, "downloads"},
        {"office_net", "eng_ws", RT::SignalFlow, "lan"},
        {"eng_ws", "control_net", RT::SignalFlow, "engineering"},
        {"control_net", "line_plc", RT::SignalFlow, "fieldbus"},
        {"line_plc", "filler_valve", RT::Triggering, "actuate"},
        {"fill_sensor", "line_plc", RT::SignalFlow, "measurement"},
        {"line_plc", "line_hmi", RT::SignalFlow, "status"},
        {"filler_valve", "buffer_tank", RT::QuantityFlow, "liquid"},
        {"buffer_tank", "fill_sensor", RT::SignalFlow, "level"},
    };
    for (const auto& relation : relations) {
        auto added = system.add_relation(relation);
        if (!added.ok()) return Result<model::SystemModel>::failure(added.error());
    }
    return system;
}

}  // namespace

int main() {
    auto system = build_plant();
    if (!system.ok()) {
        std::printf("model failed: %s\n", system.error().c_str());
        return 1;
    }

    const auto matrix = security::AttackMatrix::standard_ics();
    const auto mitigations =
        epa::MitigationMap::from_attack_matrix(system.value(), matrix);

    // Protect the production-critical OT assets (topology-level goals —
    // appropriate for a preliminary SME assessment without behaviour models).
    std::vector<epa::Requirement> requirements = {
        epa::Requirement::no_error_reaches("line_plc"),
        epa::Requirement::no_error_reaches("buffer_tank"),
    };

    core::RiskAssessment assessment(system.value(), requirements, requirements, matrix,
                                    mitigations);
    core::AssessmentConfig config;
    config.horizon = 8;
    config.max_simultaneous_faults = 1;
    config.include_attack_scenarios = true;  // actor-driven scenario space
    config.use_cegar = false;                // single-level topology analysis
    config.phase_budget = 5;

    auto report = assessment.run(config);
    if (!report.ok()) {
        std::printf("assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();

    std::printf("=== SME bottling plant: preliminary security consolidation plan ===\n\n");
    std::printf("threat actors considered:\n");
    for (const auto& actor : security::standard_threat_actors()) {
        std::printf("  %-10s %-24s capability=%s\n", actor.id.c_str(), actor.name.c_str(),
                    std::string(qual::to_short_string(actor.capability)).c_str());
    }
    std::printf("\nscenarios: %zu   hazards: %zu\n\n", r.scenario_count, r.hazards.size());
    std::printf("-- top risks --\n%s\n", r.risk_table().render().c_str());
    std::printf("-- phased hardening roadmap (budget 5 per phase) --\n%s\n",
                r.mitigation_table().render().c_str());
    return 0;
}
